"""Workloads: the paper's ten keyword queries and a random generator."""

from repro.workloads.queries import TABLE2_QUERIES, WorkloadQuery, table2_workload
from repro.workloads.generator import RandomWorkload

__all__ = ["TABLE2_QUERIES", "WorkloadQuery", "table2_workload", "RandomWorkload"]
