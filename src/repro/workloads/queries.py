"""The Table-2 workload: the ten keyword queries of the evaluation.

The texts are the paper's own.  On the synthetic DBLife snapshot they keep
their qualitative character (documented per query below and pinned down by
integration tests): person-name queries fan out through the star schema,
``Washington`` is ambiguous across three tables, and Q4/Q6 die at low join
depths but find relationships at higher ones.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadQuery:
    """One evaluation query: its paper id, text, and expected character."""

    qid: str
    text: str
    note: str

    def __str__(self) -> str:
        return f"{self.qid}: {self.text}"


TABLE2_QUERIES: tuple[WorkloadQuery, ...] = (
    WorkloadQuery("Q1", "Widom Trio", "person + topic; alive at level 3"),
    WorkloadQuery("Q2", "Hristidis Keyword Search",
                  "person + two topic terms; answers concentrate high"),
    WorkloadQuery("Q3", "Agrawal Chaudhuri Das",
                  "three person names; many MTNs through the Person star"),
    WorkloadQuery("Q4", "DeRose VLDB",
                  "dead at the lowest join level, alive via more hops"),
    WorkloadQuery("Q5", "Gray SIGMOD", "person + conference; alive low"),
    WorkloadQuery("Q6", "DeWitt tutorial",
                  "dead at low levels; a coauthor wrote the tutorial"),
    WorkloadQuery("Q7", "Probabilistic Data", "no person names; topic terms"),
    WorkloadQuery("Q8", "Probabilistic Data Washington",
                  "'Washington' occurs in Person, Publication, Organization"),
    WorkloadQuery("Q9", "SIGMOD XML", "conference + topic term"),
    WorkloadQuery("Q10", "Stream data histograms", "three topic terms"),
)


def table2_workload() -> tuple[WorkloadQuery, ...]:
    """The workload in paper order."""
    return TABLE2_QUERIES


def query_by_id(qid: str) -> WorkloadQuery:
    for query in TABLE2_QUERIES:
        if query.qid.lower() == qid.lower():
            return query
    raise KeyError(f"unknown workload query {qid!r}")
