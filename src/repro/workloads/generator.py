"""Random keyword workloads drawn from a database's own vocabulary.

Used by property-style integration tests and the scaling benches: sampling
keywords that actually occur in the data guarantees complete mappings, while
mixing in out-of-vocabulary tokens exercises the "and"-semantics abort path.
"""

from __future__ import annotations

import random

from repro.index.base import IndexBackend


class RandomWorkload:
    """Draws random keyword queries from an inverted index's vocabulary."""

    def __init__(
        self,
        index: IndexBackend,
        seed: int = 7,
        min_keywords: int = 2,
        max_keywords: int = 3,
        missing_probability: float = 0.0,
    ):
        if min_keywords < 1 or max_keywords < min_keywords:
            raise ValueError("need 1 <= min_keywords <= max_keywords")
        self.index = index
        self.rng = random.Random(seed)
        self.min_keywords = min_keywords
        self.max_keywords = max_keywords
        self.missing_probability = missing_probability
        self._vocabulary = sorted(index.tokens())
        if not self._vocabulary:
            raise ValueError("index has an empty vocabulary")

    def next_query(self) -> str:
        """One random keyword query (space-separated tokens)."""
        count = self.rng.randint(self.min_keywords, self.max_keywords)
        keywords = self.rng.sample(
            self._vocabulary, min(count, len(self._vocabulary))
        )
        if self.missing_probability and self.rng.random() < self.missing_probability:
            keywords[self.rng.randrange(len(keywords))] = "zzzmissingzzz"
        return " ".join(keywords)

    def batch(self, size: int) -> list[str]:
        return [self.next_query() for _ in range(size)]
