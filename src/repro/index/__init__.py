"""Full-text indexing substrate (the paper used Lucene here).

Provides the inverted index over a :class:`~repro.relational.database.Database`
used in Phase 1 to map keywords to the relations that contain them, and the
tuple-set provider that lets the execution engine resolve keyword predicates
without scanning tables.
"""

from repro.index.inverted import InvertedIndex, Posting
from repro.index.mapper import KeywordMapper, KeywordMapping

__all__ = ["InvertedIndex", "Posting", "KeywordMapper", "KeywordMapping"]
