"""Full-text indexing substrate (the paper used Lucene here).

Provides the inverted index over a :class:`~repro.relational.database.Database`
used in Phase 1 to map keywords to the relations that contain them, and the
tuple-set provider that lets the execution engine resolve keyword predicates
without scanning tables.

The index is a pluggable tier (:mod:`repro.index.base`): ``memory`` is the
original dict-of-sets :class:`InvertedIndex`, ``sqlite`` is the disk-backed
:class:`SqliteInvertedIndex` whose RAM footprint stays flat at million-tuple
scale and which persists (and repairs per relation) next to the L2 probe
cache.  Select one with ``--index-backend`` or :func:`create_index`.
"""

from repro.index.base import (
    IndexBackend,
    IndexCapabilities,
    IndexRegistryError,
    IndexSpec,
    create_index,
    get_index_spec,
    index_backend_names,
    register_index_backend,
)
from repro.index.inverted import InvertedIndex, Posting
from repro.index.mapper import KeywordMapper, KeywordMapping
from repro.index.sqlite_index import IndexBuildStats, SqliteInvertedIndex

__all__ = [
    "IndexBackend",
    "IndexBuildStats",
    "IndexCapabilities",
    "IndexRegistryError",
    "IndexSpec",
    "InvertedIndex",
    "KeywordMapper",
    "KeywordMapping",
    "Posting",
    "SqliteInvertedIndex",
    "create_index",
    "get_index_spec",
    "index_backend_names",
    "register_index_backend",
]
