"""A pure-Python inverted index over the text attributes of a database.

The index is built once per database snapshot (the paper's Lucene indexes
play the same role) and supports the two match modes of
:class:`~repro.relational.predicates.MatchMode`:

* ``TOKEN`` -- direct postings lookup;
* ``SUBSTRING`` -- the paper's ``LIKE '%kw%'``: resolved by scanning the
  vocabulary for tokens containing the keyword and unioning their postings.
  This is exact as long as keywords are single tokens (multi-word input is
  split into separate keywords upstream).

This is the ``memory`` implementation of the
:class:`~repro.index.base.IndexBackend` protocol: every structure is a
Python dict, so lookups cost microseconds but RAM grows linearly with the
dataset (the ``sqlite`` backend is the flat-memory alternative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.relational.database import Database
from repro.relational.predicates import MatchMode, tokenize


@dataclass(frozen=True)
class Posting:
    """One keyword occurrence: relation, attribute, and row id."""

    relation: str
    attribute: str
    row_id: int


class InvertedIndex:
    """Token -> postings over every searchable attribute of every table."""

    def __init__(self, database: Database):
        self.database = database
        # token -> relation -> set of row ids
        self._postings: dict[str, dict[str, set[int]]] = {}
        # token -> full postings (with attribute), built on first use: only
        # the display paths ask for attribute-level detail, and at scale the
        # Posting objects would dominate the index footprint.
        self._detailed: dict[str, list[Posting]] = {}
        self._detailed_built = False
        self._vocabulary_by_relation: dict[str, set[str]] = {}
        self._build()

    def _build(self) -> None:
        for table in self.database.iter_tables():
            relation = table.relation.name
            vocabulary = self._vocabulary_by_relation.setdefault(relation, set())
            for row_id in range(len(table)):
                for _attribute, text in table.text_cells(row_id):
                    for token in tokenize(text):
                        vocabulary.add(token)
                        by_relation = self._postings.setdefault(token, {})
                        by_relation.setdefault(relation, set()).add(row_id)

    def _build_detailed(self) -> None:
        """Second pass adding attribute-level postings (display paths only)."""
        if self._detailed_built:
            return
        for table in self.database.iter_tables():
            relation = table.relation.name
            for row_id in range(len(table)):
                for attribute, text in table.text_cells(row_id):
                    for token in tokenize(text):
                        self._detailed.setdefault(token, []).append(
                            Posting(relation, attribute, row_id)
                        )
        self._detailed_built = True

    # --------------------------------------------------------------- lookup
    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def tokens(self) -> Iterator[str]:
        return iter(self._postings)

    def _matching_tokens(self, keyword: str, mode: MatchMode) -> list[str]:
        # casefold, not lower: the index tokens are casefolded by
        # tokenize(), so a lookup normalized any other way ("STRASSE" vs
        # an indexed "straße" -> "strasse") would silently miss.
        needle = keyword.casefold()
        if mode is MatchMode.TOKEN:
            return [needle] if needle in self._postings else []
        return [token for token in self._postings if needle in token]

    def relations_containing(self, keyword: str, mode: MatchMode = MatchMode.TOKEN) -> tuple[str, ...]:
        """Relations with at least one row matching ``keyword`` (sorted)."""
        relations: set[str] = set()
        for token in self._matching_tokens(keyword, mode):
            relations.update(self._postings[token])
        return tuple(sorted(relations))

    def tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> frozenset[int]:
        """Row ids of ``relation`` matching ``keyword`` under ``mode``."""
        ids: set[int] = set()
        for token in self._matching_tokens(keyword, mode):
            ids.update(self._postings[token].get(relation, ()))
        return frozenset(ids)

    def tuple_set_size(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> int:
        """``len(tuple_set(...))`` without the frozenset copy."""
        tokens = self._matching_tokens(keyword, mode)
        if len(tokens) == 1:
            return len(self._postings[tokens[0]].get(relation, ()))
        return len(self.tuple_set(relation, keyword, mode))

    def iter_tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> Iterator[int]:
        """Stream the tuple set (already in RAM here; sorted for determinism)."""
        return iter(sorted(self.tuple_set(relation, keyword, mode)))

    def postings(self, keyword: str, mode: MatchMode = MatchMode.TOKEN) -> list[Posting]:
        """Detailed postings (with attribute names) for a keyword."""
        self._build_detailed()
        found: list[Posting] = []
        for token in self._matching_tokens(keyword, mode):
            found.extend(self._detailed.get(token, ()))
        return found

    def provider(self, relation: str, keyword: str, mode: MatchMode) -> set[int]:
        """Adapter matching the engine's ``TupleSetProvider`` signature."""
        return set(self.tuple_set(relation, keyword, mode))

    def document_frequency(self, keyword: str, mode: MatchMode = MatchMode.TOKEN) -> int:
        """Total number of matching rows across all relations."""
        return sum(
            len(self.tuple_set(relation, keyword, mode))
            for relation in self.relations_containing(keyword, mode)
        )

    def close(self) -> None:
        """Nothing to release; present for :class:`IndexBackend` symmetry."""
