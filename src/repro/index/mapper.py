"""Phase-1 keyword-to-relation mapping.

Given a keyword query, decide for each keyword which relations contain it
(via the inverted index), report keywords that occur nowhere ("and"
semantics: such a query is investigated no further, §2.3), and enumerate
*interpretations* -- one choice of relation per keyword -- which the system
processes one at a time (§2.3).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.index.base import IndexBackend
from repro.relational.predicates import MatchMode, tokenize


@dataclass(frozen=True)
class Interpretation:
    """One relation choice per keyword: ``(('widom', 'Person'), ...)``.

    Ordered by keyword position in the original query so the downstream
    keyword -> copy assignment is deterministic.
    """

    assignments: tuple[tuple[str, str], ...]

    def relation_of(self, keyword: str) -> str:
        for assigned_keyword, relation in self.assignments:
            if assigned_keyword == keyword:
                return relation
        raise KeyError(keyword)

    def describe(self) -> str:
        return ", ".join(f"{kw}->{rel}" for kw, rel in self.assignments)

    def __str__(self) -> str:
        return self.describe()


@dataclass
class KeywordMapping:
    """Result of mapping one keyword query onto the schema."""

    keywords: tuple[str, ...]
    relations_by_keyword: dict[str, tuple[str, ...]]
    missing_keywords: tuple[str, ...]
    mapping_time: float
    mode: MatchMode = MatchMode.TOKEN
    interpretations: tuple[Interpretation, ...] = field(default=())

    @property
    def complete(self) -> bool:
        """True iff every keyword occurs somewhere in the database."""
        return not self.missing_keywords

    def describe(self) -> str:
        lines = [f"keywords: {' '.join(self.keywords)}"]
        for keyword in self.keywords:
            relations = self.relations_by_keyword.get(keyword, ())
            shown = ", ".join(relations) if relations else "(nowhere)"
            lines.append(f"  {keyword:<16} -> {shown}")
        if self.missing_keywords:
            lines.append(f"  missing: {', '.join(self.missing_keywords)}")
        lines.append(f"  interpretations: {len(self.interpretations)}")
        return "\n".join(lines)


class KeywordMapper:
    """Maps keyword queries to relations and enumerates interpretations."""

    def __init__(
        self,
        index: IndexBackend,
        mode: MatchMode = MatchMode.TOKEN,
        max_interpretations: int = 256,
    ):
        self.index = index
        self.mode = mode
        self.max_interpretations = max_interpretations

    def parse(self, query: str) -> tuple[str, ...]:
        """Split a raw keyword query into keywords (single, unique tokens).

        Duplicate keywords are collapsed ("and" semantics makes a repeated
        keyword redundant), preserving first-occurrence order.
        """
        seen: set[str] = set()
        keywords: list[str] = []
        for token in tokenize(query):
            if token not in seen:
                seen.add(token)
                keywords.append(token)
        return tuple(keywords)

    def map_query(self, query: str) -> KeywordMapping:
        """Map every keyword of ``query`` to the relations containing it."""
        started = time.perf_counter()
        keywords = self.parse(query)
        relations_by_keyword: dict[str, tuple[str, ...]] = {}
        missing: list[str] = []
        for keyword in keywords:
            relations = self.index.relations_containing(keyword, self.mode)
            relations_by_keyword[keyword] = relations
            if not relations:
                missing.append(keyword)
        mapping = KeywordMapping(
            keywords=keywords,
            relations_by_keyword=relations_by_keyword,
            missing_keywords=tuple(missing),
            mapping_time=time.perf_counter() - started,
            mode=self.mode,
        )
        if mapping.complete and keywords:
            mapping.interpretations = self._interpretations(mapping)
        return mapping

    def _interpretations(self, mapping: KeywordMapping) -> tuple[Interpretation, ...]:
        """Cartesian product of per-keyword relation choices, capped.

        The cap guards against adversarial queries whose every keyword occurs
        in every table; the paper's workload stays far below it.
        """
        choice_lists = [
            [(keyword, relation) for relation in mapping.relations_by_keyword[keyword]]
            for keyword in mapping.keywords
        ]
        interpretations = []
        for combination in itertools.product(*choice_lists):
            interpretations.append(Interpretation(tuple(combination)))
            if len(interpretations) >= self.max_interpretations:
                break
        return tuple(interpretations)
