"""Index-backend protocol and registry: one place that knows how to index.

The paper builds its keyword -> tuple-set structures in Lucene once per
snapshot; this reproduction started with a dict-of-sets
(:class:`~repro.index.inverted.InvertedIndex`) that must fit in RAM.  At
million-tuple scale that dict *is* the memory ceiling, so the index is now
a pluggable tier mirroring :mod:`repro.backends.registry`: named
:class:`IndexSpec` entries carrying a factory and declared
:class:`IndexCapabilities`.  Two index backends ship built in:

* ``memory`` -- the original dict index (fastest lookups, linear RAM);
* ``sqlite`` -- an on-disk postings store
  (:class:`~repro.index.sqlite_index.SqliteInvertedIndex`): flat RAM,
  persistent next to the L2 probe cache, repaired per relation from the
  PR-8 content fingerprints instead of rebuilt.

Factories import their implementation lazily, and third-party indexes can
:func:`register_index_backend` themselves without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Protocol, runtime_checkable

from repro.relational.predicates import MatchMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.inverted import Posting
    from repro.relational.database import Database


@dataclass(frozen=True)
class IndexCapabilities:
    """What an index backend can do, declared not probed.

    ``persistent``
        survives the process inside a ``cache_dir`` (next to the L2 probe
        cache) and is reopened, not rebuilt, by the next session.
    ``out_of_core``
        postings live outside the Python heap, so the index footprint
        stays flat as the dataset grows.  Implies the index holds an OS
        resource that must be released via ``close()`` and must not be
        shared across forked worker processes.
    ``streaming``
        ``iter_tuple_set`` yields row ids without materializing the set;
        the engine may stream semi-join probes against it instead of
        building per-keyword hash sets.
    ``mutation_repair``
        reattaching after a dataset mutation rebuilds only the relations
        whose content fingerprint changed.
    """

    persistent: bool = False
    out_of_core: bool = False
    streaming: bool = False
    mutation_repair: bool = False


@runtime_checkable
class IndexBackend(Protocol):
    """The inverted-index surface every phase of the pipeline consumes.

    Phase 1 (keyword mapping) uses :meth:`relations_containing`; tuple-set
    construction and the engines use :meth:`tuple_set` /
    :meth:`iter_tuple_set` / :meth:`provider`; benches and cost models use
    the size accessors.  ``tuple_set`` must return exactly the rows whose
    text attributes match under the shared
    :func:`~repro.relational.predicates.tokenize` casefolding, whatever
    the storage -- the conformance suite holds every backend to the
    ``memory`` implementation's answers.
    """

    database: "Database"

    @property
    def vocabulary_size(self) -> int: ...

    def tokens(self) -> Iterator[str]: ...

    def relations_containing(
        self, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> tuple[str, ...]: ...

    def tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> frozenset[int]: ...

    def tuple_set_size(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> int: ...

    def iter_tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> Iterator[int]: ...

    def postings(
        self, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> "list[Posting]": ...

    def provider(self, relation: str, keyword: str, mode: MatchMode) -> set[int]: ...

    def document_frequency(
        self, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> int: ...

    def close(self) -> None: ...


IndexFactory = Callable[..., IndexBackend]


class IndexRegistryError(ValueError):
    """Unknown index-backend name or conflicting registration."""


@dataclass(frozen=True)
class IndexSpec:
    """One registered index backend: name, factory, and capabilities."""

    name: str
    factory: IndexFactory
    capabilities: IndexCapabilities
    description: str = ""


_REGISTRY: dict[str, IndexSpec] = {}


def register_index_backend(
    name: str,
    factory: IndexFactory,
    capabilities: IndexCapabilities,
    description: str = "",
    replace: bool = False,
) -> IndexSpec:
    """Register ``factory`` under ``name``; refuses silent overwrites."""
    if not replace and name in _REGISTRY:
        raise IndexRegistryError(f"index backend {name!r} is already registered")
    spec = IndexSpec(name, factory, capabilities, description)
    _REGISTRY[name] = spec
    return spec


def index_backend_names() -> tuple[str, ...]:
    """All registered index-backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_index_spec(name: str) -> IndexSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(known_name) for known_name in index_backend_names())
        raise IndexRegistryError(
            f"unknown index backend {name!r}; registered index backends: {known}"
        ) from None


def create_index(name: str, database: "Database", **options: Any) -> IndexBackend:
    """Build the named index over ``database``.

    ``options`` are passed to the factory; every built-in factory accepts
    (and ignores what it does not need from) ``cache_dir``.
    """
    return get_index_spec(name).factory(database, **options)


# ------------------------------------------------------ built-in factories
def _memory_factory(database: "Database", **options: Any) -> IndexBackend:
    from repro.index.inverted import InvertedIndex

    return InvertedIndex(database)


def _sqlite_factory(database: "Database", **options: Any) -> IndexBackend:
    from repro.index.sqlite_index import SqliteInvertedIndex

    cache_dir = options.get("cache_dir")
    if cache_dir is not None:
        return SqliteInvertedIndex.open_dir(cache_dir, database)
    return SqliteInvertedIndex(database)


register_index_backend(
    "memory",
    _memory_factory,
    IndexCapabilities(),
    "dict-of-sets inverted index (default; fastest lookups, linear RAM)",
)
register_index_backend(
    "sqlite",
    _sqlite_factory,
    IndexCapabilities(
        persistent=True, out_of_core=True, streaming=True, mutation_repair=True
    ),
    "on-disk sqlite postings store (flat RAM, fingerprint-keyed repair)",
)
