"""A disk-backed inverted index: the ``sqlite`` index backend.

The EMBANKS observation (PAPERS.md) is that keyword search over structured
data scales past RAM by spilling the keyword -> tuple-set structures to
disk; this module does exactly that with the stdlib ``sqlite3``:

* ``postings(token, relation, row_id, attribute)`` with that column order
  as its WITHOUT-ROWID primary key -- the PK *is* the covering index, so a
  TOKEN lookup is one b-tree range scan and never touches a heap page;
* ``vocabulary(token, relation)`` -- a small distinct-token table that
  serves SUBSTRING mode with a ``LIKE``-driven scan (the paper's
  ``LIKE '%kw%'`` read against the vocabulary instead of every cell) and
  answers ``relations_containing`` without touching postings;
* ``relation_state(relation, fingerprint)`` -- the PR-8 per-relation
  content fingerprints.  On (re)open the index compares them against the
  live database and rebuilds **only the relations whose fingerprint
  changed**: the mutation-repair story of the L2 probe cache extended to
  the index tier.

The build streams each table through batched ``executemany`` inserts, so
the Python-side high-water stays flat (one batch) no matter the dataset
size.  The file lives next to the L2 probe cache inside a ``cache_dir``
(:data:`INDEX_FILENAME`), or in an owned temporary file removed on
``close()`` when no directory is given.  Durability pragmas are relaxed
(``journal_mode=MEMORY``, ``synchronous=OFF``): the index is a derived
artifact -- a torn file costs a rebuild, never correctness.

All methods are thread-safe (one internal lock around one connection):
the engine's tuple-set provider is called from parallel probe workers.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.index.inverted import Posting
from repro.relational.database import Database
from repro.relational.predicates import MatchMode, tokenize

#: File name used inside a ``--cache-dir`` directory (next to the L2
#: probe cache and the status cache).
INDEX_FILENAME = "index.sqlite"

#: Bumped whenever the on-disk layout changes; mismatched files are
#: rebuilt from scratch (the index is only ever a derived artifact).
INDEX_SCHEMA_VERSION = 1

#: Posting rows buffered per ``executemany`` flush during a build.  Kept
#: small enough that even a 10^4-tuple snapshot fills at least one batch:
#: the build's Python high-water is then one batch regardless of dataset
#: size, which is what the scale bench's memory-ceiling gate asserts.
BUILD_BATCH_ROWS = 4096

#: SQLite bind-parameter budget per ``IN (...)`` clause.
_IN_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT NOT NULL PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS relation_state (
    relation    TEXT NOT NULL PRIMARY KEY,
    fingerprint TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS postings (
    token     TEXT NOT NULL,
    relation  TEXT NOT NULL,
    row_id    INTEGER NOT NULL,
    attribute TEXT NOT NULL,
    PRIMARY KEY (token, relation, row_id, attribute)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS vocabulary (
    token    TEXT NOT NULL,
    relation TEXT NOT NULL,
    PRIMARY KEY (token, relation)
) WITHOUT ROWID
"""


class SqliteIndexError(RuntimeError):
    """Raised on operations against a closed index."""


@dataclass(frozen=True)
class IndexBuildStats:
    """Outcome of one attach/repair pass."""

    relations_built: int
    relations_reused: int
    relations_dropped: int
    postings_written: int
    build_seconds: float


def _like_pattern(needle: str) -> str:
    """``%needle%`` with LIKE metacharacters escaped (ESCAPE ``\\``)."""
    escaped = (
        needle.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
    )
    return f"%{escaped}%"


def _chunks(items: Sequence[str], size: int) -> Iterator[Sequence[str]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class SqliteInvertedIndex:
    """Token -> postings in a sqlite file instead of the Python heap."""

    def __init__(self, database: Database, path: str | Path | None = None):
        self.database = database
        self._owns_file = path is None
        if path is None:
            handle, temp_name = tempfile.mkstemp(
                prefix="repro-index-", suffix=".sqlite"
            )
            os.close(handle)
            self.path = Path(temp_name)
        else:
            self.path = Path(path)
        self._lock = threading.Lock()
        # guarded-by: _lock
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        self._closed = False
        self.build_stats = IndexBuildStats(0, 0, 0, 0, 0.0)
        with self._lock:
            self._configure_locked()
            self._migrate_locked()
            self._repair_locked()

    @classmethod
    def open_dir(
        cls, directory: str | Path, database: Database
    ) -> "SqliteInvertedIndex":
        """Open (or create) the index file inside a cache directory."""
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        return cls(database, base / INDEX_FILENAME)

    # -------------------------------------------------------------- attach
    def _configure_locked(self) -> None:
        self._connection.execute("PRAGMA journal_mode=MEMORY")
        self._connection.execute("PRAGMA synchronous=OFF")

    def _migrate_locked(self) -> None:
        self._connection.executescript(_SCHEMA)
        cursor = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        )
        row = cursor.fetchone()
        if row is not None and row[0] == str(INDEX_SCHEMA_VERSION):
            return
        if row is not None:
            for table in ("postings", "vocabulary", "relation_state", "meta"):
                self._connection.execute(f"DELETE FROM {table}")
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(INDEX_SCHEMA_VERSION),),
        )
        self._connection.commit()

    def _repair_locked(self) -> None:
        """Rebuild exactly the relations whose content fingerprint changed."""
        started = time.perf_counter()
        current = self.database.relation_fingerprints()
        persisted = dict(
            self._connection.execute(
                "SELECT relation, fingerprint FROM relation_state"
            ).fetchall()
        )
        stale = sorted(
            name
            for name, fingerprint in current.items()
            if persisted.get(name) != fingerprint
        )
        dropped = sorted(name for name in persisted if name not in current)
        for name in (*stale, *dropped):
            self._connection.execute(
                "DELETE FROM postings WHERE relation = ?", (name,)
            )
            self._connection.execute(
                "DELETE FROM vocabulary WHERE relation = ?", (name,)
            )
            self._connection.execute(
                "DELETE FROM relation_state WHERE relation = ?", (name,)
            )
        written = 0
        for name in stale:
            written += self._build_relation_locked(name)
            self._connection.execute(
                "INSERT INTO relation_state (relation, fingerprint) VALUES (?, ?)",
                (name, current[name]),
            )
        self._connection.commit()
        self.build_stats = IndexBuildStats(
            relations_built=len(stale),
            relations_reused=len(current) - len(stale),
            relations_dropped=len(dropped),
            postings_written=written,
            build_seconds=time.perf_counter() - started,
        )

    def _build_relation_locked(self, relation: str) -> int:
        """Stream one table into the postings/vocabulary tables, batched."""
        table = self.database.table(relation)
        batch: list[tuple[str, str, int, str]] = []
        vocabulary: set[str] = set()
        written = 0

        def flush() -> None:
            nonlocal written
            if not batch:
                return
            self._connection.executemany(
                "INSERT OR IGNORE INTO postings "
                "(token, relation, row_id, attribute) VALUES (?, ?, ?, ?)",
                batch,
            )
            written += len(batch)
            batch.clear()

        for row_id in range(len(table)):
            for attribute, text in table.text_cells(row_id):
                for token in tokenize(text):
                    vocabulary.add(token)
                    batch.append((token, relation, row_id, attribute))
                    if len(batch) >= BUILD_BATCH_ROWS:
                        flush()
        flush()
        self._connection.executemany(
            "INSERT OR IGNORE INTO vocabulary (token, relation) VALUES (?, ?)",
            [(token, relation) for token in sorted(vocabulary)],
        )
        return written

    # -------------------------------------------------------------- lookup
    def _guard_locked(self) -> None:
        if self._closed:
            raise SqliteIndexError(f"index {self.path} is closed")

    def _matching_tokens(self, keyword: str, mode: MatchMode) -> list[str]:
        needle = keyword.casefold()
        with self._lock:
            self._guard_locked()
            if mode is MatchMode.TOKEN:
                row = self._connection.execute(
                    "SELECT 1 FROM vocabulary WHERE token = ? LIMIT 1", (needle,)
                ).fetchone()
                return [needle] if row is not None else []
            rows = self._connection.execute(
                "SELECT DISTINCT token FROM vocabulary "
                "WHERE token LIKE ? ESCAPE '\\' ORDER BY token",
                (_like_pattern(needle),),
            ).fetchall()
        return [token for (token,) in rows]

    @property
    def vocabulary_size(self) -> int:
        with self._lock:
            self._guard_locked()
            row = self._connection.execute(
                "SELECT COUNT(DISTINCT token) FROM vocabulary"
            ).fetchone()
        return int(row[0])

    def tokens(self) -> Iterator[str]:
        # Keyset pagination keeps each page inside a connection.execute()
        # (which scopes its own cursor) so no handle outlives the lock.
        last = ""
        while True:
            with self._lock:
                self._guard_locked()
                rows = self._connection.execute(
                    "SELECT DISTINCT token FROM vocabulary "
                    "WHERE token > ? ORDER BY token LIMIT 1024",
                    (last,),
                ).fetchall()
            if not rows:
                return
            for (token,) in rows:
                yield token
            last = rows[-1][0]

    def relations_containing(
        self, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> tuple[str, ...]:
        """Relations with at least one row matching ``keyword`` (sorted)."""
        needle = keyword.casefold()
        if mode is MatchMode.TOKEN:
            sql = "SELECT DISTINCT relation FROM vocabulary WHERE token = ?"
            params: tuple[str, ...] = (needle,)
        else:
            sql = (
                "SELECT DISTINCT relation FROM vocabulary "
                "WHERE token LIKE ? ESCAPE '\\'"
            )
            params = (_like_pattern(needle),)
        with self._lock:
            self._guard_locked()
            rows = self._connection.execute(sql, params).fetchall()
        return tuple(sorted(relation for (relation,) in rows))

    def tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> frozenset[int]:
        """Row ids of ``relation`` matching ``keyword`` under ``mode``."""
        ids: set[int] = set()
        for tokens in _chunks(self._matching_tokens(keyword, mode), _IN_CHUNK):
            marks = ", ".join("?" for _ in tokens)
            with self._lock:
                self._guard_locked()
                rows = self._connection.execute(
                    f"SELECT DISTINCT row_id FROM postings "
                    f"WHERE token IN ({marks}) AND relation = ?",
                    (*tokens, relation),
                ).fetchall()
            ids.update(row_id for (row_id,) in rows)
        return frozenset(ids)

    def tuple_set_size(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> int:
        """Tuple-set cardinality without materializing a Python set."""
        tokens = self._matching_tokens(keyword, mode)
        if not tokens:
            return 0
        if len(tokens) <= _IN_CHUNK:
            marks = ", ".join("?" for _ in tokens)
            with self._lock:
                self._guard_locked()
                row = self._connection.execute(
                    f"SELECT COUNT(DISTINCT row_id) FROM postings "
                    f"WHERE token IN ({marks}) AND relation = ?",
                    (*tokens, relation),
                ).fetchone()
            return int(row[0])
        return len(self.tuple_set(relation, keyword, mode))

    def iter_tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> Iterator[int]:
        """Stream row ids in ascending order without materializing the set."""
        tokens = self._matching_tokens(keyword, mode)
        if not tokens or len(tokens) > _IN_CHUNK:
            # Pathologically broad SUBSTRING needles fall back to the
            # materialized union; TOKEN mode always has <= 1 token.
            yield from sorted(self.tuple_set(relation, keyword, mode))
            return
        marks = ", ".join("?" for _ in tokens)
        # Keyset pagination on row_id: each page is one connection.execute()
        # (self-scoped cursor), so a paused generator holds no sqlite handle.
        last = -1
        while True:
            with self._lock:
                self._guard_locked()
                rows = self._connection.execute(
                    f"SELECT DISTINCT row_id FROM postings "
                    f"WHERE token IN ({marks}) AND relation = ? AND row_id > ? "
                    f"ORDER BY row_id LIMIT 1024",
                    (*tokens, relation, last),
                ).fetchall()
            if not rows:
                return
            for (row_id,) in rows:
                yield row_id
            last = rows[-1][0]

    def postings(
        self, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> list[Posting]:
        """Detailed postings (with attribute names) for a keyword."""
        found: list[Posting] = []
        for tokens in _chunks(self._matching_tokens(keyword, mode), _IN_CHUNK):
            marks = ", ".join("?" for _ in tokens)
            with self._lock:
                self._guard_locked()
                rows = self._connection.execute(
                    f"SELECT relation, attribute, row_id FROM postings "
                    f"WHERE token IN ({marks}) "
                    f"ORDER BY relation, row_id, attribute",
                    tuple(tokens),
                ).fetchall()
            found.extend(
                Posting(relation, attribute, row_id)
                for relation, attribute, row_id in rows
            )
        return found

    def provider(self, relation: str, keyword: str, mode: MatchMode) -> set[int]:
        """Adapter matching the engine's ``TupleSetProvider`` signature."""
        return set(self.tuple_set(relation, keyword, mode))

    def document_frequency(
        self, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> int:
        """Total number of matching rows across all relations."""
        tokens = self._matching_tokens(keyword, mode)
        if not tokens:
            return 0
        if len(tokens) > _IN_CHUNK:
            # Chunked COUNT(DISTINCT) would double-count rows whose tokens
            # straddle chunks; take the exact per-relation union instead.
            return sum(
                len(self.tuple_set(relation, keyword, mode))
                for relation in self.relations_containing(keyword, mode)
            )
        marks = ", ".join("?" for _ in tokens)
        with self._lock:
            self._guard_locked()
            rows = self._connection.execute(
                f"SELECT relation, COUNT(DISTINCT row_id) FROM postings "
                f"WHERE token IN ({marks}) GROUP BY relation",
                tuple(tokens),
            ).fetchall()
        return sum(count for _, count in rows)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the connection (and the file, when it is a temp file)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.close()
        if self._owns_file:
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SqliteInvertedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
