"""A wall-clock analogue of the simulated cost model.

The in-memory engine answers probes in microseconds, so thread-level
parallelism cannot show up in wall time against it -- the paper's wins
come from overlapping *DBMS round-trips*, each of which costs real
milliseconds.  :class:`SimulatedLatencyBackend` reintroduces that cost
deterministically: every probe sleeps a fixed floor plus (optionally) a
multiple of the cost model's per-query estimate, then delegates to the
wrapped backend.  Sleeping releases the GIL, so N workers overlap N
sleeps -- the same concurrency profile as N in-flight network queries --
while answers, counts, and classifications stay exactly those of the
wrapped backend.
"""

from __future__ import annotations

import time

from repro.relational.evaluator import AlivenessBackend, QueryCostModel
from repro.relational.jointree import BoundQuery

#: Default per-probe latency floor, seconds.  Chosen so a full DBLife
#: bench workload stays CI-friendly while still dwarfing the in-memory
#: engine's own evaluation time.
DEFAULT_LATENCY = 0.002


class SimulatedLatencyBackend:
    """Delegating aliveness backend that charges wall time per probe."""

    def __init__(
        self,
        inner: AlivenessBackend,
        latency: float = DEFAULT_LATENCY,
        cost_model: QueryCostModel | None = None,
        cost_scale: float = 0.0,
    ):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if cost_scale < 0:
            raise ValueError("cost_scale must be >= 0")
        if cost_scale and cost_model is None:
            raise ValueError("cost_scale needs a cost_model")
        self.inner = inner
        self.latency = latency
        self.cost_model = cost_model
        self.cost_scale = cost_scale

    def delay_for(self, query: BoundQuery) -> float:
        """Deterministic sleep the probe will pay, in seconds."""
        delay = self.latency
        if self.cost_scale and self.cost_model is not None:
            delay += self.cost_scale * self.cost_model.cost(query)
        return delay

    def is_alive(self, query: BoundQuery) -> bool:
        delay = self.delay_for(query)
        if delay > 0:
            time.sleep(delay)
        return self.inner.is_alive(query)
