"""The coordinator <-> shard-worker message protocol.

Everything that crosses a process boundary is one of the frozen
dataclasses below, and every field is restricted to *transport-safe*
types: primitives (``int``/``float``/``str``/``bool``/``bytes``/
``None``), tuples of those, or other protocol messages.  No live
objects -- stores, evaluators, locks, connections -- ever travel; a
shard's entire learning compresses into three arbitrary-precision mask
integers (:class:`~repro.core.status.StatusDelta`) plus flat counters
and JSON-encoded span strings.  That restriction is what lets the same
messages flow over a :mod:`multiprocessing` queue today and a socket to
another host tomorrow, and it is enforced twice:

* statically by the ``CONC006`` lint (:mod:`repro.analysis.concurrency`),
  which checks every ``Message`` subclass is a frozen dataclass whose
  annotations stay inside the allowlisted grammar, and
* at runtime by :func:`validate_payload` plus the pickle round-trip test.

The socket framing variant is length-prefixed pickle: a 4-byte
big-endian length followed by the payload, decoded through a restricted
unpickler that only resolves names in this module (a frame from an
untrusted peer cannot instantiate arbitrary classes).
"""

from __future__ import annotations

import io
import pickle
import struct
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, BinaryIO

#: Hard ceiling on one frame's payload; a corrupt or hostile length
#: prefix fails fast instead of allocating gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

_SCALARS = (bool, int, float, str, bytes, type(None))


class ProtocolError(RuntimeError):
    """A frame or message violated the shard protocol."""


class Message:
    """Marker base class for every shard protocol message."""

    __slots__ = ()


@dataclass(frozen=True)
class ShardTask(Message):
    """Coordinator -> worker: sweep one shard.

    The shard's members travel as MTN indexes (the worker re-derives the
    domain from its inherited graph snapshot); the three ``max_*`` fields
    are this shard's slice of the parent :class:`~repro.obs.budget.
    ProbeBudget`, carved deterministically by the coordinator so budget
    exhaustion does not depend on process scheduling.
    """

    shard_id: int
    strategy: str
    mtn_indexes: tuple[int, ...]
    max_queries: int | None = None
    max_simulated_seconds: float | None = None
    max_wall_seconds: float | None = None

    @property
    def budgeted(self) -> bool:
        return (
            self.max_queries is not None
            or self.max_simulated_seconds is not None
            or self.max_wall_seconds is not None
        )


@dataclass(frozen=True)
class ShardClaim(Message):
    """Worker -> coordinator: I picked shard ``shard_id`` off the queue.

    Sent before any probe runs, so a later crash or stall can be
    attributed to the exact shard that died with it.
    """

    shard_id: int
    process_id: int


@dataclass(frozen=True)
class Heartbeat(Message):
    """Worker -> coordinator: still alive (``shard_id`` = current work)."""

    process_id: int
    shard_id: int | None


@dataclass(frozen=True)
class ShardResult(Message):
    """Worker -> coordinator: one shard's complete (or exhausted) sweep.

    The three masks are the shard store's
    :class:`~repro.core.status.StatusDelta`; ``spans`` carries the
    worker-side probe spans as JSON strings (dicts are not
    transport-safe) for the coordinator to re-record with
    ``process_id``/``shard_id`` stamped.
    """

    shard_id: int
    process_id: int
    alive_mask: int
    dead_mask: int
    evaluated_mask: int
    exhausted: bool
    queries_executed: int
    cache_hits: int
    cache_misses: int
    l1_hits: int
    l2_hits: int
    cache_evictions: int
    wall_time: float
    simulated_time: float
    executed_by_level: tuple[tuple[int, int], ...]
    spans: tuple[str, ...]


@dataclass(frozen=True)
class ShardError(Message):
    """Worker -> coordinator: the shard's sweep raised instead of finishing."""

    shard_id: int
    process_id: int
    error_type: str
    message: str
    traceback_text: str


@dataclass(frozen=True)
class WorkerExit(Message):
    """Worker -> coordinator: clean shutdown after the queue drained."""

    process_id: int
    shards_completed: int


#: Every concrete message type, in definition order; the restricted
#: unpickler resolves exactly these names (plus nothing else).
MESSAGE_TYPES: tuple[type[Message], ...] = (
    ShardTask,
    ShardClaim,
    Heartbeat,
    ShardResult,
    ShardError,
    WorkerExit,
)

_MESSAGE_NAMES = {cls.__name__: cls for cls in MESSAGE_TYPES}


# ---------------------------------------------------------------- payloads
def validate_payload(value: Any, _path: str = "message") -> None:
    """Raise :class:`ProtocolError` unless ``value`` is transport-safe.

    Transport-safe means: a scalar primitive, a tuple of transport-safe
    values, or a protocol message (a frozen dataclass subclassing
    :class:`Message`) whose field values are transport-safe.  This is
    the runtime twin of the static ``CONC006`` lint; the round-trip test
    runs both against every message type.
    """
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, tuple):
        for position, item in enumerate(value):
            validate_payload(item, f"{_path}[{position}]")
        return
    if isinstance(value, Message):
        if not (is_dataclass(value) and type(value).__dataclass_params__.frozen):
            raise ProtocolError(
                f"{_path}: {type(value).__name__} must be a frozen dataclass"
            )
        for spec in fields(value):
            validate_payload(
                getattr(value, spec.name), f"{_path}.{spec.name}"
            )
        return
    raise ProtocolError(
        f"{_path}: {type(value).__name__} is not transport-safe "
        "(allowed: primitives, tuples, frozen Message dataclasses)"
    )


# ----------------------------------------------------------------- framing
class _MessageUnpickler(pickle.Unpickler):
    """Unpickler that resolves only protocol message classes."""

    def find_class(self, module: str, name: str) -> Any:
        if module == __name__ and name in _MESSAGE_NAMES:
            return _MESSAGE_NAMES[name]
        raise ProtocolError(f"frame references forbidden global {module}.{name}")


def encode_message(message: Message) -> bytes:
    """Serialize one validated message (no framing)."""
    validate_payload(message)
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_message(payload: bytes) -> Message:
    """Inverse of :func:`encode_message`, through the restricted unpickler."""
    decoded = _MessageUnpickler(io.BytesIO(payload)).load()
    if not isinstance(decoded, Message):
        raise ProtocolError(
            f"frame decoded to non-message {type(decoded).__name__}"
        )
    validate_payload(decoded)
    return decoded


def frame_message(message: Message) -> bytes:
    """Length-prefixed wire form: 4-byte big-endian size + pickle payload."""
    payload = encode_message(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds frame cap {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def write_frame(stream: BinaryIO, message: Message) -> int:
    """Write one framed message; returns the bytes written."""
    data = frame_message(message)
    stream.write(data)
    return len(data)


def _read_exact(stream: BinaryIO, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"stream truncated mid-frame ({count - remaining}/{count} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Message | None:
    """Read one framed message; ``None`` on clean end-of-stream."""
    header = _read_exact(stream, _LENGTH.size)
    if header is None:
        return None
    (size,) = _LENGTH.unpack(header)
    if size > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame announces {size} bytes, above cap {MAX_FRAME_BYTES}"
        )
    payload = _read_exact(stream, size)
    if payload is None:
        raise ProtocolError("stream ended after frame header")
    return decode_message(payload)
