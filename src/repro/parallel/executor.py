"""The worker pool that evaluates a frontier batch of aliveness probes.

Equivalence to the serial path is the design invariant, enforced in
three places:

1. **Admission order.**  The coordinating thread walks the batch in
   submission order: cache lookups first (free, always served), then one
   ``budget.admit()`` per miss *before* the probe is handed to a worker.
   ``admit`` reserves a query-axis slot, so ``max_queries=K`` can never
   let more than K probes reach the backend even with K admissions in
   flight at once; the first refusal truncates the batch exactly where a
   serial ``is_alive`` loop would have raised.

2. **Barrier application.**  Workers only run the timed backend call
   (:meth:`~repro.relational.evaluator.InstrumentedEvaluator.execute_probe`);
   stats, cache inserts, and trace spans are applied by the coordinator
   in submission order once the batch settles.  Callers then apply the
   results to their :class:`~repro.core.status.StatusStore` in that same
   order, so R1/R2 propagation never races and a parallel sweep's store
   is bit-identical to a serial sweep's.

3. **Duplicate collapsing.**  If one batch contains the same bound query
   twice and the evaluator caches, the second occurrence aliases the
   first probe's future and is counted as a cache hit -- the numbers a
   serial loop would report.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.obs.budget import ProbeBudgetExhausted
from repro.relational.evaluator import (
    InstrumentedEvaluator,
    ProbeBatch,
    ProbeOutcome,
)
from repro.relational.jointree import BoundQuery

DEFAULT_WORKERS = 4


@dataclass
class _BatchEntry:
    """One submitted probe: a cache hit, a pool future, or an alias."""

    query: BoundQuery
    hit: bool | None = None
    future: "Future[ProbeOutcome] | None" = None
    alias: bool = False


class ParallelProbeExecutor:
    """Evaluates batches of implication-independent probes on N workers.

    One executor owns one ``ThreadPoolExecutor`` and may serve many
    evaluators and traversal runs over its lifetime; close it (or use it
    as a context manager) to release the threads.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-probe"
        )
        self._worker_ids = itertools.count()
        self._local = threading.local()
        self._closed = False

    # ------------------------------------------------------------ identity
    def _worker_id(self) -> int:
        """Stable small integer per pool thread (for trace spans)."""
        worker_id = getattr(self._local, "worker_id", None)
        if worker_id is None:
            worker_id = next(self._worker_ids)
            self._local.worker_id = worker_id
        return int(worker_id)

    def _worker_probe(
        self,
        evaluator: InstrumentedEvaluator,
        query: BoundQuery,
        submitted_at: float,
    ) -> ProbeOutcome:
        queue_wait = time.perf_counter() - submitted_at
        return evaluator.execute_probe(
            query, worker_id=self._worker_id(), queue_wait_s=queue_wait
        )

    # ------------------------------------------------------------- batches
    def run_batch(
        self, evaluator: InstrumentedEvaluator, queries: Sequence[BoundQuery]
    ) -> ProbeBatch:
        """Evaluate ``queries`` concurrently; results in submission order.

        Returns a :class:`ProbeBatch` whose ``results`` answer a prefix of
        ``queries``; ``exhausted`` marks a mid-batch budget refusal (the
        suffix after the refusal is untouched, exactly like the serial
        path).  Backend exceptions propagate after every in-flight probe
        settled, so the budget never leaks reservations.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        # Phase 1 -- submission, in deterministic order.
        entries: list[_BatchEntry] = []
        in_batch: set[BoundQuery] = set()
        exhausted = False
        for query in queries:
            cached = evaluator.lookup_cached(query)
            if cached is not None:
                entries.append(_BatchEntry(query, hit=cached))
                continue
            if evaluator.use_cache and query in in_batch:
                # A serial loop would answer the duplicate from the cache
                # once the first occurrence executed; resolve at barrier.
                entries.append(_BatchEntry(query, alias=True))
                continue
            try:
                evaluator.admit_probe()
            except ProbeBudgetExhausted:
                exhausted = True
                break
            future = self._pool.submit(
                self._worker_probe, evaluator, query, time.perf_counter()
            )
            in_batch.add(query)
            entries.append(_BatchEntry(query, future=future))
        # Phase 2 -- barrier: apply outcomes in submission order.
        batch = ProbeBatch(exhausted=exhausted)
        error: BaseException | None = None
        for entry in entries:
            if entry.hit is not None:
                batch.results.append(entry.hit)
            elif entry.future is not None:
                try:
                    outcome = entry.future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if error is None:
                        error = exc
                    continue
                batch.results.append(evaluator.apply_probe(entry.query, outcome))
            else:  # alias: the original resolved above and filled the cache
                cached = evaluator.lookup_cached(entry.query)
                if cached is None:  # pragma: no cover - original probe failed
                    continue
                batch.results.append(cached)
        if error is not None:
            raise error
        return batch

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelProbeExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ParallelProbeExecutor(workers={self.workers}, {state})"
