"""Parallel probe execution: batched frontier evaluation over a worker pool.

The paper's cost model counts DBMS round-trips, and every traversal
strategy's frontier contains probes whose R1/R2 implication cones are
disjoint (same lattice level), so those round-trips can overlap in time
without changing a single classification.  This package provides:

* :class:`ParallelProbeExecutor` -- a ``ThreadPoolExecutor``-backed batch
  evaluator that admits probes against the shared
  :class:`~repro.obs.budget.ProbeBudget` in deterministic submission
  order (a budget of ``max_queries=K`` never executes more than K probes
  across all workers) and applies results at a barrier, so parallel runs
  are byte-identical to serial ones in executed-query count and
  classification signature;
* :class:`SimulatedLatencyBackend` -- a wall-clock analogue of the
  deterministic cost model (it sleeps per probe), so the speedup is
  measurable without a real networked DBMS;
* :class:`ShardedLatticeExecutor` (:mod:`repro.parallel.sharded`) -- the
  multiprocessing tier: per-MTN subtree shards swept in forked worker
  processes against a read-only snapshot, status deltas merged through
  R1/R2 on the coordinator in deterministic shard order.  Threads
  overlap I/O; processes escape the GIL for CPU-bound in-memory
  evaluation.  The shard protocol (:mod:`repro.parallel.protocol`) is
  picklable-message-only so workers could live on other hosts.

See DESIGN.md ("Concurrency model") for why frontier independence makes
this safe and README.md ("Parallel probing" / "Sharded exploration")
for usage.
"""

from repro.parallel.executor import ParallelProbeExecutor
from repro.parallel.latency import SimulatedLatencyBackend
from repro.parallel.sharded import ShardedLatticeExecutor, carve_budget_caps

__all__ = [
    "ParallelProbeExecutor",
    "SimulatedLatencyBackend",
    "ShardedLatticeExecutor",
    "carve_budget_caps",
]
