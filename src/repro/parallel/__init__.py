"""Parallel probe execution: batched frontier evaluation over a worker pool.

The paper's cost model counts DBMS round-trips, and every traversal
strategy's frontier contains probes whose R1/R2 implication cones are
disjoint (same lattice level), so those round-trips can overlap in time
without changing a single classification.  This package provides:

* :class:`ParallelProbeExecutor` -- a ``ThreadPoolExecutor``-backed batch
  evaluator that admits probes against the shared
  :class:`~repro.obs.budget.ProbeBudget` in deterministic submission
  order (a budget of ``max_queries=K`` never executes more than K probes
  across all workers) and applies results at a barrier, so parallel runs
  are byte-identical to serial ones in executed-query count and
  classification signature;
* :class:`SimulatedLatencyBackend` -- a wall-clock analogue of the
  deterministic cost model (it sleeps per probe), so the speedup is
  measurable without a real networked DBMS.

See DESIGN.md ("Concurrency model") for why frontier independence makes
this safe and README.md ("Parallel probing") for usage.
"""

from repro.parallel.executor import ParallelProbeExecutor
from repro.parallel.latency import SimulatedLatencyBackend

__all__ = ["ParallelProbeExecutor", "SimulatedLatencyBackend"]
