"""Sharded lattice exploration: a multiprocessing coordinator/worker pair.

:class:`~repro.parallel.ParallelProbeExecutor` (PR 4) overlaps backend
round-trips with threads -- great for I/O, useless for the CPU-bound
``memory`` backend, whose probe evaluation serializes on the GIL.  This
module escapes the GIL: the coordinator partitions the exploration graph
into per-MTN subtree shards (:func:`repro.core.traversal.extract_shards`),
forks worker processes that each sweep their shards against the inherited
read-only database/graph snapshot, and merges the returned
:class:`~repro.core.status.StatusDelta` masks through rules R1/R2 in
deterministic shard order.

**Determinism contract.**  Everything that could depend on process
scheduling is pinned down before any worker starts:

* shard membership -- deterministic LPT assignment;
* per-shard budgets -- the parent :class:`~repro.obs.budget.ProbeBudget`
  is carved by :func:`carve_budget_caps` (floor division, remainder to
  the lowest shard ids), so *which* probe a budget refuses is a function
  of the shard plan, never of which worker ran first;
* merge order -- deltas, stats, and re-recorded spans are folded in
  ascending ``shard_id`` order at the end, whatever order results arrive.

Hence a sharded run is byte-identical to the same shard plan executed
serially in-process (``use_processes=False``), and -- because
classifications are ground truth under R1/R2 -- identical in
classifications and MPANs to the plain serial strategies when the budget
does not bind.

**Failure contract.**  A worker crash or shard timeout is never silently
dropped: the failed shard is retried once, serially, on the coordinator,
and the outcome is recorded as a structured
:class:`~repro.core.traversal.ShardFailure` on the result.

Workers are started with the ``fork`` method on purpose: the child
inherits the database, graph, and tuple-set provider by memory snapshot,
so nothing but protocol messages (see :mod:`repro.parallel.protocol`) is
ever pickled.  Platforms without ``fork`` fall back to the in-process
serial path, which preserves results exactly (just without the speedup).
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import traceback
from typing import Any, Mapping

from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusDelta, StatusStore
from repro.core.traversal import (
    SHARDABLE_STRATEGIES,
    Shard,
    ShardFailure,
    TraversalResult,
    extract_shards,
    get_strategy,
    run_shard_traversal,
    seed_base_levels,
)
from repro.obs.budget import ProbeBudget
from repro.obs.trace import ProbeTracer
from repro.parallel.protocol import (
    Heartbeat,
    Message,
    ShardClaim,
    ShardError,
    ShardResult,
    ShardTask,
    WorkerExit,
)
from repro.relational.database import Database
from repro.relational.evaluator import (
    EvaluationStats,
    InstrumentedEvaluator,
    QueryCostModel,
)

DEFAULT_PROCESSES = 4
DEFAULT_HEARTBEAT_INTERVAL = 0.2

#: Test hooks, inherited by forked workers: set to a shard id to make the
#: worker that claims it die (``os._exit``) or stall (sleep) mid-shard.
#: They exist so the crash/timeout recovery path stays regression-tested.
CRASH_ENV = "REPRO_SHARD_CRASH"
STALL_ENV = "REPRO_SHARD_STALL"
STALL_SECONDS_ENV = "REPRO_SHARD_STALL_SECONDS"


def carve_budget_caps(
    budget: ProbeBudget | None, shard_count: int
) -> list[tuple[int | None, float | None, float | None]]:
    """Split a parent budget into deterministic per-shard caps.

    The query axis is carved by floor division with the remainder going
    to the lowest shard ids; the time axes split evenly.  The caps sum
    to at most the parent's limits (``repro trace check`` verifies this
    from the ``shard_plan`` event), so the combined shards can never
    out-spend the budget the caller set -- at the price that one shard
    cannot borrow another's unused slice, which is exactly what makes
    exhaustion independent of process scheduling.
    """
    if shard_count <= 0:
        raise ValueError("shard_count must be positive")
    if budget is None or budget.unlimited:
        return [(None, None, None)] * shard_count
    queries: list[int | None]
    if budget.max_queries is None:
        queries = [None] * shard_count
    else:
        base, remainder = divmod(budget.max_queries, shard_count)
        queries = [
            base + (1 if shard < remainder else 0) for shard in range(shard_count)
        ]
    simulated = (
        None
        if budget.max_simulated_seconds is None
        else budget.max_simulated_seconds / shard_count
    )
    wall = (
        None
        if budget.max_wall_seconds is None
        else budget.max_wall_seconds / shard_count
    )
    return [(queries[shard], simulated, wall) for shard in range(shard_count)]


def _execute_shard(
    graph: ExplorationGraph,
    database: Database,
    strategy_name: str,
    shard: Shard,
    task: ShardTask,
    backend: Any,
    cost_model: QueryCostModel | None,
    process_id: int,
) -> ShardResult:
    """Sweep one shard and package everything learned as a message.

    Runs identically in a worker process and on the coordinator (the
    serial fallback and the crash-retry path call it directly), which is
    what makes the two modes byte-identical: same shard, same carved
    budget, same fresh evaluator, same sweep.
    """
    budget = None
    if task.budgeted:
        budget = ProbeBudget(
            max_queries=task.max_queries,
            max_simulated_seconds=task.max_simulated_seconds,
            max_wall_seconds=task.max_wall_seconds,
        )
    tracer = ProbeTracer()
    evaluator = InstrumentedEvaluator(
        backend,
        cost_model=cost_model,
        use_cache=strategy_name in ("buwr", "tdwr"),
        budget=budget,
        tracer=tracer,
    )
    outcome = run_shard_traversal(graph, database, strategy_name, shard, evaluator)
    delta = outcome.store.export_delta()
    stats = evaluator.stats
    return ShardResult(
        shard_id=shard.shard_id,
        process_id=process_id,
        alive_mask=delta.alive_mask,
        dead_mask=delta.dead_mask,
        evaluated_mask=delta.evaluated_mask,
        exhausted=outcome.exhausted,
        queries_executed=stats.queries_executed,
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        cache_evictions=stats.cache_evictions,
        wall_time=stats.wall_time,
        simulated_time=stats.simulated_time,
        executed_by_level=tuple(sorted(stats.executed_by_level.items())),
        spans=tuple(
            json.dumps(span.to_dict(), sort_keys=True) for span in tracer.spans
        ),
    )


def _shard_worker(
    worker_index: int,
    graph: ExplorationGraph,
    database: Database,
    strategy_name: str,
    shards: list[Shard],
    backend_name: str,
    backend_options: dict[str, Any],
    cost_model: QueryCostModel | None,
    task_queue: Any,
    result_queue: Any,
    heartbeat_interval: float,
) -> None:
    """Worker process main: drain shard tasks until the ``None`` sentinel.

    The graph/database/options arrive by fork inheritance (never
    pickled); the worker builds its *own* backend -- inherited sqlite
    connections must not be reused across a fork -- and ships only
    protocol messages back.
    """
    process_id = os.getpid()
    from repro.backends import create_backend

    backend = create_backend(backend_name, database, **backend_options)
    current_shard: list[int | None] = [None]
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            result_queue.put(
                Heartbeat(process_id=process_id, shard_id=current_shard[0])
            )

    heartbeat = threading.Thread(target=_beat, daemon=True)
    heartbeat.start()
    completed = 0
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            current_shard[0] = task.shard_id
            result_queue.put(
                ShardClaim(shard_id=task.shard_id, process_id=process_id)
            )
            if os.environ.get(CRASH_ENV) == str(task.shard_id):
                time.sleep(0.05)  # let the claim drain the queue feeder
                os._exit(17)
            if os.environ.get(STALL_ENV) == str(task.shard_id):
                time.sleep(float(os.environ.get(STALL_SECONDS_ENV, "3600")))
            try:
                result_queue.put(
                    _execute_shard(
                        graph,
                        database,
                        strategy_name,
                        shards[task.shard_id],
                        task,
                        backend,
                        cost_model,
                        process_id,
                    )
                )
                completed += 1
            except BaseException as error:  # noqa: BLE001 - shipped, not hidden
                result_queue.put(
                    ShardError(
                        shard_id=task.shard_id,
                        process_id=process_id,
                        error_type=type(error).__name__,
                        message=str(error),
                        traceback_text=traceback.format_exc(),
                    )
                )
            current_shard[0] = None
    finally:
        stop_beating.set()
        closer = getattr(backend, "close", None)
        if closer is not None:
            closer()
        result_queue.put(
            WorkerExit(process_id=process_id, shards_completed=completed)
        )


class ShardedLatticeExecutor:
    """Coordinates shard workers and merges their deltas deterministically.

    One executor is cheap and stateless between runs (the process pool is
    per-run: workers fork a snapshot of *this* graph/database, so they
    cannot outlive the call).  ``shards`` defaults to ``processes``;
    more shards than processes gives the task queue room to load-balance
    uneven subtree sizes.
    """

    def __init__(
        self,
        processes: int = DEFAULT_PROCESSES,
        shards: int | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        shard_timeout: float | None = None,
    ):
        if processes <= 0:
            raise ValueError("processes must be positive")
        if shards is not None and shards <= 0:
            raise ValueError("shards must be positive")
        self.processes = processes
        self.shards = shards
        self.heartbeat_interval = heartbeat_interval
        self.shard_timeout = shard_timeout

    # ----------------------------------------------------------------- run
    def run(
        self,
        graph: ExplorationGraph,
        database: Database,
        strategy_name: str,
        *,
        backend: str = "memory",
        backend_options: Mapping[str, Any] | None = None,
        cost_model: QueryCostModel | None = None,
        budget: ProbeBudget | None = None,
        tracer: ProbeTracer | None = None,
        coordinator_backend: Any = None,
        use_processes: bool = True,
    ) -> TraversalResult:
        """Classify every MTN of ``graph`` by sharded traversal.

        ``use_processes=False`` (or an unavailable ``fork``) executes the
        identical shard plan serially in-process -- same results, no
        parallelism -- which is also how failed shards are retried.
        ``coordinator_backend`` is the already-built backend used for
        those coordinator-side sweeps; when omitted one is created from
        ``backend``/``backend_options`` and closed afterwards.
        """
        strategy_name = strategy_name.lower()
        if strategy_name not in SHARDABLE_STRATEGIES:
            raise ValueError(
                f"strategy {strategy_name!r} is not shardable; "
                f"choose from {SHARDABLE_STRATEGIES} (sbh's greedy frontier "
                "is global by design and runs coordinator-side)"
            )
        started = time.perf_counter()
        options = dict(backend_options or {})
        shards = extract_shards(graph, self.shards or self.processes)
        # A graph with no MTNs (an aborted or answer-only query) has an
        # empty shard plan; the merge below still produces a well-formed
        # empty result.
        caps = carve_budget_caps(budget, len(shards)) if shards else []
        tasks = [
            ShardTask(
                shard_id=shard.shard_id,
                strategy=strategy_name,
                mtn_indexes=shard.mtn_indexes,
                max_queries=caps[shard.shard_id][0],
                max_simulated_seconds=caps[shard.shard_id][1],
                max_wall_seconds=caps[shard.shard_id][2],
            )
            for shard in shards
        ]
        if tracer is not None:
            tracer.set_context(strategy=strategy_name)
            tracer.record_event(
                "traversal_start",
                strategy=strategy_name,
                nodes=len(graph),
                mtns=len(graph.mtn_indexes),
                sharded=True,
                shards=len(shards),
                processes=self.processes,
            )
            tracer.record_event(
                "shard_plan",
                shards=len(shards),
                processes=self.processes,
                parent_max_queries=(
                    budget.max_queries if budget is not None else None
                ),
                parent_max_simulated_seconds=(
                    budget.max_simulated_seconds if budget is not None else None
                ),
                parent_max_wall_seconds=(
                    budget.max_wall_seconds if budget is not None else None
                ),
                shard_max_queries=[cap[0] for cap in caps],
                shard_max_simulated_seconds=[cap[1] for cap in caps],
                shard_max_wall_seconds=[cap[2] for cap in caps],
                shard_nodes=[shard.node_count for shard in shards],
                shard_mtns=[shard.mtn_count for shard in shards],
            )
        failures: list[ShardFailure] = []
        try:
            if use_processes and self.processes > 1 and len(shards) > 1:
                results, failures = self._run_parallel(
                    graph, database, strategy_name, shards, tasks,
                    backend, options, cost_model,
                )
                # A shard whose result arrived despite a death/timeout
                # verdict (queue latency) did not actually fail.
                failures = [
                    failure
                    for failure in failures
                    if failure.shard_id not in results
                ]
            else:
                results = {}
            # Coordinator-side execution: the serial fallback (nothing ran
            # in parallel) and the one-retry recovery of failed shards.
            owned_backend = None
            pending = [
                shard
                for shard in shards
                if shard.shard_id not in results
            ]
            if pending:
                local_backend = coordinator_backend
                if local_backend is None:
                    from repro.backends import create_backend

                    local_backend = owned_backend = create_backend(
                        backend, database, **options
                    )
                by_shard = {failure.shard_id: failure for failure in failures}
                try:
                    for shard in pending:
                        prior = by_shard.get(shard.shard_id)
                        if prior is not None:
                            prior.retried = True
                        try:
                            results[shard.shard_id] = _execute_shard(
                                graph, database, strategy_name, shard,
                                tasks[shard.shard_id], local_backend,
                                cost_model, os.getpid(),
                            )
                        except Exception as error:
                            if prior is None:
                                by_shard[shard.shard_id] = ShardFailure(
                                    shard_id=shard.shard_id,
                                    kind="error",
                                    message=f"{type(error).__name__}: {error}",
                                    traceback_text=traceback.format_exc(),
                                )
                                failures.append(by_shard[shard.shard_id])
                            continue
                        if prior is not None:
                            prior.recovered = True
                finally:
                    if owned_backend is not None:
                        closer = getattr(owned_backend, "close", None)
                        if closer is not None:
                            closer()
            return self._merge(
                graph, database, strategy_name, shards, results, failures,
                budget, tracer, started,
            )
        finally:
            if tracer is not None:
                tracer.set_context(strategy=None)

    # ------------------------------------------------------------ parallel
    def _run_parallel(
        self,
        graph: ExplorationGraph,
        database: Database,
        strategy_name: str,
        shards: list[Shard],
        tasks: list[ShardTask],
        backend_name: str,
        backend_options: dict[str, Any],
        cost_model: QueryCostModel | None,
    ) -> tuple[dict[int, ShardResult], list[ShardFailure]]:
        """Fan shards out over forked workers; never raises on worker death.

        Returns the per-shard results that arrived plus structured
        failures for every shard that did not (crash, stall past
        ``shard_timeout``, or in-shard exception); the caller retries
        those serially.
        """
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            # No fork on this platform: the caller's serial path takes over.
            return {}, []
        task_queue = context.Queue()
        result_queue = context.Queue()
        worker_count = min(self.processes, len(shards))
        for task in tasks:
            task_queue.put(task)
        for _ in range(worker_count):
            task_queue.put(None)
        workers = [
            context.Process(
                target=_shard_worker,
                args=(
                    index, graph, database, strategy_name, shards,
                    backend_name, backend_options, cost_model,
                    task_queue, result_queue, self.heartbeat_interval,
                ),
                daemon=True,
            )
            for index in range(worker_count)
        ]
        for worker in workers:
            worker.start()
        by_pid = {worker.pid: worker for worker in workers}
        results: dict[int, ShardResult] = {}
        failures: list[ShardFailure] = []
        pending = {shard.shard_id for shard in shards}
        claims: dict[int, tuple[int, float]] = {}
        last_heartbeat: dict[int, float] = {}

        def _fail(shard_id: int, kind: str, message: str) -> None:
            pending.discard(shard_id)
            failures.append(
                ShardFailure(shard_id=shard_id, kind=kind, message=message)
            )

        dead_seen: dict[int, float] = {}
        #: Seconds a dead worker's already-queued messages get to drain
        #: before its claimed shard is declared crashed; without the
        #: grace, a worker's final result racing its own exit would be
        #: misread as a crash.
        death_grace = max(0.5, 2 * self.heartbeat_interval)
        try:
            while pending:
                # Drain every queued message first; liveness verdicts are
                # only rendered on an empty queue so a finished shard's
                # result always beats its worker's death notice.
                drained = False
                while True:
                    message: Message | None
                    try:
                        message = result_queue.get(
                            timeout=0.0 if drained else 0.05
                        )
                    except queue.Empty:
                        break
                    drained = True
                    now = time.perf_counter()
                    if isinstance(message, ShardClaim):
                        claims[message.shard_id] = (message.process_id, now)
                    elif isinstance(message, Heartbeat):
                        last_heartbeat[message.process_id] = now
                    elif isinstance(message, ShardResult):
                        results[message.shard_id] = message
                        pending.discard(message.shard_id)
                    elif isinstance(message, ShardError):
                        if message.shard_id in pending:
                            _fail(
                                message.shard_id,
                                "error",
                                f"{message.error_type}: {message.message}",
                            )
                            failures[-1].traceback_text = message.traceback_text
                    # WorkerExit falls through to the liveness checks.
                now = time.perf_counter()
                for worker in workers:
                    if worker.pid is not None and not worker.is_alive():
                        dead_seen.setdefault(worker.pid, now)
                if self.shard_timeout is not None:
                    for shard_id, (process_id, claimed_at) in list(claims.items()):
                        if (
                            shard_id in pending
                            and now - claimed_at > self.shard_timeout
                        ):
                            beat = last_heartbeat.get(process_id)
                            detail = (
                                f"last heartbeat {now - beat:.2f}s ago"
                                if beat is not None
                                else "no heartbeat received"
                            )
                            _fail(
                                shard_id,
                                "timeout",
                                f"shard exceeded {self.shard_timeout:.2f}s "
                                f"in worker pid {process_id} ({detail})",
                            )
                            worker = by_pid.get(process_id)
                            if worker is not None and worker.is_alive():
                                worker.terminate()
                for shard_id, (process_id, _) in list(claims.items()):
                    worker = by_pid.get(process_id)
                    if (
                        shard_id in pending
                        and worker is not None
                        and not worker.is_alive()
                        and now - dead_seen.get(process_id, now) > death_grace
                    ):
                        _fail(
                            shard_id,
                            "crash",
                            f"worker pid {process_id} exited with code "
                            f"{worker.exitcode} mid-shard",
                        )
                if (
                    pending
                    and all(not worker.is_alive() for worker in workers)
                    and dead_seen
                    and now - max(dead_seen.values()) > death_grace
                ):
                    # Whole pool died before the remaining shards were even
                    # claimed; fail them all so the serial retry picks them up.
                    for shard_id in sorted(pending):
                        _fail(
                            shard_id,
                            "crash",
                            "worker pool exited before the shard ran",
                        )
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=5.0)
            for q in (task_queue, result_queue):
                q.cancel_join_thread()
                q.close()
        return results, failures

    # --------------------------------------------------------------- merge
    def _merge(
        self,
        graph: ExplorationGraph,
        database: Database,
        strategy_name: str,
        shards: list[Shard],
        results: dict[int, ShardResult],
        failures: list[ShardFailure],
        budget: ProbeBudget | None,
        tracer: ProbeTracer | None,
        started: float,
    ) -> TraversalResult:
        """Fold shard results into one TraversalResult, in shard-id order."""
        store = StatusStore(graph)
        seed_base_levels(graph, store, database)
        stats = EvaluationStats()
        exhausted = False
        for shard in shards:
            shard_result = results.get(shard.shard_id)
            if shard_result is None:
                continue
            store.apply_delta(
                StatusDelta(
                    alive_mask=shard_result.alive_mask,
                    dead_mask=shard_result.dead_mask,
                    evaluated_mask=shard_result.evaluated_mask,
                )
            )
            exhausted = exhausted or shard_result.exhausted
            stats.queries_executed += shard_result.queries_executed
            stats.cache_hits += shard_result.cache_hits
            stats.cache_misses += shard_result.cache_misses
            stats.l1_hits += shard_result.l1_hits
            stats.l2_hits += shard_result.l2_hits
            stats.cache_evictions += shard_result.cache_evictions
            stats.wall_time += shard_result.wall_time
            stats.simulated_time += shard_result.simulated_time
            for level, count in shard_result.executed_by_level:
                stats.executed_by_level[level] = (
                    stats.executed_by_level.get(level, 0) + count
                )
            if tracer is not None:
                self._replay_spans(tracer, strategy_name, shard_result)
        unrecovered = [f for f in failures if not f.recovered]
        result = TraversalResult(strategy_name, graph)
        result.shard_failures = failures
        result.exhausted = exhausted
        partial = exhausted or bool(unrecovered)
        collector = get_strategy(strategy_name)
        for mtn_index in graph.mtn_indexes:
            collector._collect(store, result, mtn_index, partial=partial)
        result.alive_mtns.sort()
        result.dead_mtns.sort()
        result.stats = stats
        result.elapsed = time.perf_counter() - started
        if budget is not None:
            # Reflect the shards' combined spend into the parent budget so
            # follow-up probing on the same budget sees an honest balance.
            budget.charge(
                queries=stats.queries_executed,
                wall_seconds=stats.wall_time,
                simulated_seconds=stats.simulated_time,
            )
        if tracer is not None:
            tracer.record_event(
                "traversal_end",
                strategy=strategy_name,
                queries_executed=stats.queries_executed,
                cache_hits=stats.cache_hits,
                classified=result.classified_mtn_count,
                exhausted=result.exhausted,
                sharded=True,
                shard_failures=len(failures),
            )
        return result

    @staticmethod
    def _replay_spans(
        tracer: ProbeTracer, strategy_name: str, shard_result: ShardResult
    ) -> None:
        """Re-record a shard's spans with process/shard stamped.

        ``budget_remaining`` is deliberately dropped: it counted against
        the shard's carved budget, and interleaving several shards'
        countdowns would break the per-segment monotonicity that
        ``repro trace check`` verifies.
        """
        for encoded in shard_result.spans:
            span = json.loads(encoded)
            tracer.record_probe(
                level=span["level"],
                keywords=span["keywords"],
                backend=span["backend"],
                alive=span["alive"],
                cache_hit=span["cache_hit"],
                wall_seconds=span["wall_seconds"],
                simulated_seconds=span["simulated_seconds"],
                worker_id=span.get("worker_id"),
                queue_wait_s=span.get("queue_wait_s"),
                cache_tier=span.get("cache_tier"),
                process_id=shard_result.process_id,
                shard_id=shard_result.shard_id,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedLatticeExecutor(processes={self.processes}, "
            f"shards={self.shards or self.processes})"
        )
