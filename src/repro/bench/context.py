"""Shared state for the experiment runners.

Building the DBLife snapshot, its inverted index, and one lattice per lattice
level is expensive relative to a single traversal, so a :class:`BenchContext`
builds each lazily and caches it for the duration of a benchmark session.
Phases 1-2 of each (level, query) pair are likewise prepared once and shared
by every strategy that measures Phase 3 on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.cost_model import SimpleCostModel
from repro.core.binding import PrunedLattice
from repro.core.debugger import NonAnswerDebugger
from repro.core.lattice import Lattice, generate_lattice
from repro.core.mtn import ExplorationGraph
from repro.core.traversal import TraversalResult, get_strategy
from repro.datasets.dblife import DBLifeConfig, dblife_database
from repro.index.mapper import KeywordMapping
from repro.obs.trace import ProbeTracer
from repro.relational.database import Database
from repro.relational.predicates import MatchMode
from repro.workloads.queries import TABLE2_QUERIES, WorkloadQuery

# The workload has at most 3 keywords, so 3 keyword slots make the lattice
# lossless for it (see repro.core.lattice docstring).
WORKLOAD_MAX_KEYWORDS = 3

# Levels up to this bound materialize Phase 0; higher levels generate each
# query's retained sub-lattice directly (identical results; see
# KeywordBinder.prune_direct).
MAX_MATERIALIZED_LEVEL = 5


@dataclass
class PreparedQuery:
    """Phases 1-2 of one (level, workload query) pair, ready for Phase 3."""

    level: int
    query: WorkloadQuery
    mapping: KeywordMapping
    pruned: list[PrunedLattice]
    graph: ExplorationGraph

    @property
    def mtn_count(self) -> int:
        return len(self.graph.mtn_indexes)

    def retained_union(self) -> int:
        trees = set()
        for pruned in self.pruned:
            trees.update(pruned.retained)
        return len(trees)

    def mtns_by_level(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for node in self.graph.mtns():
            counts[node.level] = counts.get(node.level, 0) + 1
        return counts


@dataclass
class BenchContext:
    """Lazily-built snapshot + per-level debuggers for the experiments."""

    config: DBLifeConfig = field(default_factory=DBLifeConfig)
    mode: MatchMode = MatchMode.TOKEN
    max_keywords: int = WORKLOAD_MAX_KEYWORDS
    #: Optional span recorder; when set, every Phase-3 probe run through
    #: this context emits one trace span (see ``repro bench --trace``).
    tracer: ProbeTracer | None = None
    _database: Database | None = None
    _lattices: dict[int, Lattice] = field(default_factory=dict)
    _debuggers: dict[int, NonAnswerDebugger] = field(default_factory=dict)
    _cost_model: SimpleCostModel | None = None
    _prepared: dict[tuple[int, str], PreparedQuery] = field(default_factory=dict)
    _results: dict[tuple[int, str, str], TraversalResult] = field(
        default_factory=dict
    )

    @classmethod
    def create(
        cls, scale: int = 1, seed: int = 42, mode: MatchMode = MatchMode.TOKEN
    ) -> "BenchContext":
        return cls(config=DBLifeConfig(seed=seed, scale=scale), mode=mode)

    # ------------------------------------------------------------ components
    @property
    def database(self) -> Database:
        if self._database is None:
            self._database = dblife_database(self.config)
        return self._database

    def lattice(self, level: int) -> Lattice:
        """The offline lattice with ``level`` levels (= ``level - 1`` joins)."""
        if level not in self._lattices:
            self._lattices[level] = generate_lattice(
                self.database.schema, level - 1, max_keywords=self.max_keywords
            )
        return self._lattices[level]

    def debugger(self, level: int) -> NonAnswerDebugger:
        if level not in self._debuggers:
            materialize = level <= MAX_MATERIALIZED_LEVEL
            debugger = NonAnswerDebugger(
                self.database,
                max_joins=level - 1,
                mode=self.mode,
                lattice=self.lattice(level) if materialize else None,
                use_lattice=materialize,
                max_keywords=self.max_keywords,
                cost_model=self.cost_model,
            )
            self._debuggers[level] = debugger
        return self._debuggers[level]

    @property
    def cost_model(self) -> SimpleCostModel:
        if self._cost_model is None:
            from repro.index.inverted import InvertedIndex

            index = None
            for debugger in self._debuggers.values():
                index = debugger.index
                break
            if index is None:
                index = InvertedIndex(self.database)
            self._cost_model = SimpleCostModel(self.database, index)
        return self._cost_model

    @property
    def workload(self) -> tuple[WorkloadQuery, ...]:
        return TABLE2_QUERIES

    # ------------------------------------------------------------- pipeline
    def prepare(self, level: int, query: WorkloadQuery) -> PreparedQuery:
        """Phases 1-2 for one query at one level, cached."""
        key = (level, query.qid)
        if key not in self._prepared:
            debugger = self.debugger(level)
            mapping = debugger.map_keywords(query.text)
            pruned = debugger.prune(mapping) if mapping.complete else []
            graph = debugger.build_graph(pruned)
            self._prepared[key] = PreparedQuery(level, query, mapping, pruned, graph)
        return self._prepared[key]

    def run_strategy(
        self, level: int, query: WorkloadQuery, strategy_name: str, **kwargs
    ) -> TraversalResult:
        """Phase 3 with one strategy over the prepared graph, cached."""
        key = (level, query.qid, strategy_name + repr(sorted(kwargs.items())))
        if key not in self._results:
            prepared = self.prepare(level, query)
            strategy = get_strategy(strategy_name, **kwargs)
            evaluator = self.debugger(level).make_evaluator(
                use_cache=strategy.uses_reuse, tracer=self.tracer
            )
            self._results[key] = strategy.run(
                prepared.graph, evaluator, self.database
            )
        return self._results[key]
