"""Cold-vs-warm-after-mutation benchmark for monotone cache repair.

The cache bench (:mod:`repro.bench.cache`) measures the best case: a
second session over an *unchanged* database.  This bench measures the
case the repair machinery exists for -- a second session after the
database was **mutated**:

1. **cold (pristine)** -- per strategy, an empty L2 store is populated
   by a full workload pass over the pristine DBLife snapshot;
2. **mutate** -- one row is inserted into a single relation of the
   *live* database (same :class:`~repro.relational.database.Database`
   object, so the lineage-gated delta classifies it ``insert_only``);
3. **warm (repaired)** -- per strategy, the store is re-attached with
   the mutated database.  Attach runs the monotone repair: probes whose
   join path avoids the mutated relation are re-keyed and stay warm,
   cached ``alive`` probes touching it survive (insert-only can only
   flip dead->alive), and only cached ``dead`` probes touching it are
   evicted.  A fresh-evaluator pass then replays the workload;
4. **cold (mutated)** -- the reference recompute: the same workload
   against the mutated database through a separate empty store.

Two invariants gate CI via ``BENCH_mutate.json``:

* repaired-warm and cold-mutated classification signatures are
  byte-identical for every (strategy, query) pair -- repair never
  changes an answer, only avoids recomputing it; and
* the repaired-warm passes execute fewer than
  :data:`WARM_FRACTION_GATE` (25%) of the cold-mutated passes' backend
  queries in total -- i.e. a single-relation insert must *not* nuke the
  world.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bench.cache import (
    DEFAULT_BENCH_LATENCY,
    DEFAULT_STRATEGIES,
    _timed_pass,
)
from repro.bench.context import BenchContext
from repro.bench.tables import TextTable
from repro.cache import ProbeCache

DEFAULT_BENCH_LEVEL = 4
#: CI gate: after a single-relation insert, the repaired-warm passes
#: must execute fewer than this fraction of the cold-mutated passes'
#: backend queries.  Full eviction would re-execute ~100%.
WARM_FRACTION_GATE = 0.25
#: Relation receiving the single insert.  Publication sits on many join
#: paths, so this exercises both survival (alive probes through it) and
#: eviction (dead probes through it) rather than only re-keying.
DEFAULT_MUTATED_RELATION = "Publication"
#: Inserted title; deliberately matches no workload keyword so the
#: cold-mutated reference stays comparable to the pristine cold pass.
_MUTATED_TITLE = "benchmark mutation probe row"


def _mutated_context(context: BenchContext) -> BenchContext:
    """A fresh pipeline (index, mapper, debuggers) over the *same live*
    database object.

    Sharing the object keeps the lineage token, so the probe cache can
    classify the delta as insert-only; rebuilding the pipeline mirrors
    what a real second session does after the data changed.
    """
    return BenchContext(
        config=context.config,
        mode=context.mode,
        max_keywords=context.max_keywords,
        tracer=context.tracer,
        _database=context.database,
    )


def run_mutate_bench(
    context: BenchContext | None = None,
    level: int = DEFAULT_BENCH_LEVEL,
    cache_dir: str | Path | None = None,
    latency: float = DEFAULT_BENCH_LATENCY,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    mutated_relation: str = DEFAULT_MUTATED_RELATION,
) -> tuple[TextTable, dict]:
    """Warm-after-repair vs cold recompute across a single-row insert.

    Returns the rendered table and a JSON-able payload with per-strategy
    query counts, repair statistics, the signature comparison, and the
    warm/cold executed-query fraction CI gates on.
    """
    context = context or BenchContext()
    root = Path(cache_dir) if cache_dir is not None else Path(tempfile.mkdtemp())
    table = TextTable(
        f"Cache repair after a single {mutated_relation} insert "
        f"(level {level}, {latency * 1000:.1f}ms/probe)",
        [
            "strategy", "cold qrys", "warm qrys", "repaired", "evicted",
            "identical",
        ],
    )
    payload: dict = {
        "level": level,
        "latency_s": latency,
        "cache_dir": str(root),
        "mutated_relation": mutated_relation,
        "strategies": {},
    }

    # Pristine cold passes populate one store per strategy.
    pristine_queries: dict[str, int] = {}
    for name in strategies:
        with ProbeCache.open_dir(root / name, context.database) as cache:
            cache.clear()  # a reused --cache-dir must still start cold
            _, executed, _, _ = _timed_pass(context, level, name, latency, cache)
        pristine_queries[name] = executed

    # One insert into one relation of the live database.
    table_rows = len(context.database.table(mutated_relation))
    context.database.insert(mutated_relation, (table_rows + 1, _MUTATED_TITLE))
    payload["mutation"] = {
        "relation": mutated_relation,
        "kind": "insert",
        "rows": 1,
    }

    mutated = _mutated_context(context)
    warm_wall_total = 0.0
    cold_wall_total = 0.0
    warm_queries_total = 0
    cold_queries_total = 0
    repaired_total = 0
    evicted_total = 0
    all_identical = True
    all_insert_only = True
    for name in strategies:
        # Re-attach repairs the store against the mutated database.
        with ProbeCache.open_dir(root / name, mutated.database) as cache:
            report = cache.last_repair
            warm_wall, warm_queries, warm_l2, warm_results = _timed_pass(
                mutated, level, name, latency, cache
            )
        # Reference: full recompute on the mutated database, empty store.
        with ProbeCache.open_dir(root / f"{name}-coldref", mutated.database) as ref:
            ref.clear()
            cold_wall, cold_queries, _, cold_results = _timed_pass(
                mutated, level, name, latency, ref
            )
        identical = all(
            one.classification_signature() == two.classification_signature()
            for one, two in zip(cold_results, warm_results)
        )
        directions = dict(report.directions) if report is not None else {}
        insert_only = directions == {mutated_relation: "insert_only"}
        repaired = report.repaired if report is not None else 0
        evicted = report.evicted if report is not None else 0
        warm_wall_total += warm_wall
        cold_wall_total += cold_wall
        warm_queries_total += warm_queries
        cold_queries_total += cold_queries
        repaired_total += repaired
        evicted_total += evicted
        all_identical = all_identical and identical
        all_insert_only = all_insert_only and insert_only
        table.add_row(
            name, cold_queries, warm_queries, repaired, evicted,
            "yes" if identical else "NO",
        )
        payload["strategies"][name] = {
            "pristine_cold_queries": pristine_queries[name],
            "cold_queries": cold_queries,
            "warm_queries": warm_queries,
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "warm_l2_hits": warm_l2,
            "repaired": repaired,
            "evicted": evicted,
            "delta_directions": directions,
            "signatures_match": identical,
        }
    warm_fraction = warm_queries_total / max(1, cold_queries_total)
    payload.update(
        cold_wall_s=cold_wall_total,
        warm_wall_s=warm_wall_total,
        cold_queries_total=cold_queries_total,
        warm_queries_total=warm_queries_total,
        warm_fraction=warm_fraction,
        warm_fraction_gate=WARM_FRACTION_GATE,
        repaired_total=repaired_total,
        evicted_total=evicted_total,
        delta_insert_only=all_insert_only,
        signatures_match=all_identical,
        passed=(
            all_identical
            and all_insert_only
            and warm_fraction < WARM_FRACTION_GATE
        ),
    )
    table.add_note(
        f"repaired-warm executed {warm_queries_total} of "
        f"{cold_queries_total} cold queries "
        f"({warm_fraction:.0%}; gate < {WARM_FRACTION_GATE:.0%})"
    )
    table.add_note(
        f"repair kept {repaired_total} row(s) warm and evicted "
        f"{evicted_total} across {len(strategies)} store(s)"
    )
    if not all_insert_only:
        table.add_note(
            "delta was NOT classified insert-only (lineage bug?)"
        )
    if not all_identical:
        table.add_note("repaired/cold classifications DIVERGED (bug!)")
    return table, payload
