"""Serial-vs-parallel micro-benchmark for frontier probe batching.

Runs every traversal strategy over the DBLife workload twice against a
:class:`~repro.parallel.SimulatedLatencyBackend` -- once serially, once
through a :class:`~repro.parallel.ParallelProbeExecutor` -- and checks the
two invariants the parallel path promises before reporting any timing:

* byte-identical classification signatures and executed-query counts, and
* budgeted parallel runs never execute more than ``max_queries`` probes.

The latency backend charges each probe a deterministic sleep (a stand-in
for a DBMS round-trip; see :mod:`repro.parallel.latency`), so the wall
clock actually has something to overlap: the level-wise strategies submit
whole frontiers and should approach ``min(workers, frontier)``-fold
speedups, while SBH's singleton frontiers pin it at ~1x by design.
``repro bench parallel`` renders the table; ``--json`` dumps the payload
CI asserts on (``BENCH_parallel.json``).
"""

from __future__ import annotations

import time

from repro.bench.context import BenchContext
from repro.bench.tables import TextTable
from repro.core.traversal import STRATEGY_NAMES, TraversalResult, get_strategy
from repro.obs.budget import ProbeBudget
from repro.parallel import ParallelProbeExecutor, SimulatedLatencyBackend
from repro.parallel.executor import DEFAULT_WORKERS
from repro.relational.evaluator import BatchExecutor, InstrumentedEvaluator

DEFAULT_BENCH_LEVEL = 4
#: Per-probe sleep of the bench's latency backend.  Higher than the
#: backend's own default so thread coordination overhead is small against
#: it (a 5ms round-trip is still optimistic for a networked DBMS) while a
#: full 3x-workload pass stays ~10s.
DEFAULT_BENCH_LATENCY = 0.005
#: Probe cap of the budgeted verification runs; small enough to bind on
#: every workload query at every level.
DEFAULT_BUDGET_QUERIES = 6


def _timed_run(
    context: BenchContext,
    level: int,
    strategy_name: str,
    latency: float,
    executor: BatchExecutor | None = None,
    budget: ProbeBudget | None = None,
) -> tuple[float, list[TraversalResult]]:
    """One full-workload traversal pass; returns (wall seconds, results)."""
    strategy = get_strategy(strategy_name)
    debugger = context.debugger(level)
    backend = SimulatedLatencyBackend(debugger.backend, latency=latency)
    wall = 0.0
    results = []
    for query in context.workload:
        prepared = context.prepare(level, query)
        evaluator = InstrumentedEvaluator(
            backend,
            cost_model=context.cost_model,
            use_cache=strategy.uses_reuse,
            budget=budget,
            tracer=context.tracer,
        )
        if budget is not None:
            budget.reset()
        started = time.perf_counter()
        result = strategy.run(
            prepared.graph, evaluator, context.database, executor=executor
        )
        wall += time.perf_counter() - started
        results.append(result)
    return wall, results


def run_parallel_bench(
    context: BenchContext | None = None,
    level: int = DEFAULT_BENCH_LEVEL,
    workers: int = DEFAULT_WORKERS,
    latency: float = DEFAULT_BENCH_LATENCY,
    strategies: tuple[str, ...] = STRATEGY_NAMES,
    budget_queries: int = DEFAULT_BUDGET_QUERIES,
) -> tuple[TextTable, dict]:
    """Serial vs ``workers``-way parallel probing over the bench workload.

    Returns the rendered table and a JSON-able payload with per-strategy
    and overall wall times, query counts, the signature comparison, and
    the budget-cap verification -- the contract ``BENCH_parallel.json``
    carries into CI.
    """
    context = context or BenchContext()
    table = TextTable(
        f"Parallel probing: serial vs {workers} workers "
        f"(level {level}, {latency * 1000:.1f}ms/probe)",
        ["strategy", "serial s", "parallel s", "speedup", "queries", "identical"],
    )
    payload: dict = {
        "level": level,
        "workers": workers,
        "latency_s": latency,
        "strategies": {},
    }
    serial_total = 0.0
    parallel_total = 0.0
    all_identical = True
    max_budget_executed = 0
    with ParallelProbeExecutor(workers=workers) as executor:
        for name in strategies:
            serial_wall, serial_results = _timed_run(context, level, name, latency)
            parallel_wall, parallel_results = _timed_run(
                context, level, name, latency, executor=executor
            )
            identical = [
                one.classification_signature() == two.classification_signature()
                and one.stats.queries_executed == two.stats.queries_executed
                for one, two in zip(serial_results, parallel_results)
            ]
            _, budgeted = _timed_run(
                context,
                level,
                name,
                latency,
                executor=executor,
                budget=ProbeBudget(max_queries=budget_queries),
            )
            budget_executed = max(
                result.stats.queries_executed for result in budgeted
            )
            max_budget_executed = max(max_budget_executed, budget_executed)
            serial_total += serial_wall
            parallel_total += parallel_wall
            all_identical = all_identical and all(identical)
            speedup = serial_wall / parallel_wall if parallel_wall else 0.0
            queries = sum(r.stats.queries_executed for r in serial_results)
            table.add_row(
                name,
                serial_wall,
                parallel_wall,
                speedup,
                queries,
                "yes" if all(identical) else "NO",
            )
            payload["strategies"][name] = {
                "serial_wall_s": serial_wall,
                "parallel_wall_s": parallel_wall,
                "speedup": speedup,
                "serial_queries": [
                    r.stats.queries_executed for r in serial_results
                ],
                "parallel_queries": [
                    r.stats.queries_executed for r in parallel_results
                ],
                "signatures_match": all(identical),
                "budget_max_executed": budget_executed,
            }
    overall = serial_total / parallel_total if parallel_total else 0.0
    payload.update(
        serial_wall_s=serial_total,
        parallel_wall_s=parallel_total,
        speedup=overall,
        signatures_match=all_identical,
        budget_max_queries=budget_queries,
        budget_max_executed=max_budget_executed,
        budget_respected=max_budget_executed <= budget_queries,
    )
    table.add_note(
        f"overall speedup {overall:.2f}x; classifications and query counts "
        + ("identical to serial" if all_identical else "DIVERGED (bug!)")
    )
    table.add_note(
        f"budgeted runs (max_queries={budget_queries}) executed at most "
        f"{max_budget_executed} probes"
    )
    table.add_note(
        "SBH stays ~1x by design: its greedy choice depends on each probe's "
        "answer, so its frontier is always a singleton"
    )
    return table, payload
