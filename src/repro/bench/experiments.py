"""Runners that regenerate every table and figure of the paper's §3.

Each function returns one or more :class:`~repro.bench.tables.TextTable`
objects whose rows mirror the paper's; ``python -m repro bench <id>`` prints
them and ``benchmarks/`` wraps them in pytest-benchmark.  EXPERIMENTS.md
records paper-versus-measured values for each.

Scale notes (see DESIGN.md substitutions): the snapshot is synthetic and a
few hundred times smaller than the 2009 DBLife crawl, and the in-memory
engine is much faster than networked PostgreSQL, so absolute numbers differ;
the comparisons the paper makes (who wins, how growth behaves, where reuse
pays off) are what these runners reproduce.  Lattice levels up to 5 are
materialized (level 5 here has a node count comparable to the paper's
level-7 lattice); level-7 experiments use the direct per-query generation
path, which yields identical retained sets.
"""

from __future__ import annotations

from repro.bench.context import BenchContext
from repro.bench.tables import TextTable
from repro.core.baselines import ReturnEverything, ReturnNothing
from repro.core.lattice import generate_lattice
from repro.core.traversal import STRATEGY_NAMES
from repro.relational.predicates import MatchMode
from repro.workloads.queries import query_by_id

DEFAULT_LEVELS = (3, 5, 7)
STRATEGY_LABELS = {"bu": "BU", "buwr": "BUWR", "td": "TD", "tdwr": "TDWR", "sbh": "SBH"}


# --------------------------------------------------------------- Figure 9
def fig9(context: BenchContext, max_level: int = 5) -> tuple[TextTable, TextTable]:
    """Figure 9: lattice nodes/duplicates per level (a) and generation time (b)."""
    lattice = context.lattice(max_level)
    stats = lattice.stats
    nodes = TextTable(
        f"Figure 9(a): lattice nodes per level (DBLife schema, {max_level} levels)",
        ["level", "nodes", "duplicates eliminated"],
    )
    times = TextTable(
        "Figure 9(b): lattice generation time per level",
        ["level", "seconds"],
    )
    for index in range(stats.levels):
        nodes.add_row(
            index + 1,
            stats.nodes_per_level[index],
            stats.duplicates_per_level[index],
        )
        times.add_row(index + 1, stats.time_per_level[index])
    nodes.add_note(
        f"total nodes {stats.total_nodes}; duplicates were "
        f"{100 * stats.duplicate_fraction:.1f}% of generated candidates "
        "(paper: 11.7% with its duplicate accounting)"
    )
    times.add_note(
        f"total {stats.total_time:.2f}s, computed offline once "
        "(paper: <100s at level 7 in Java)"
    )
    return nodes, times


# -------------------------------------------------- §3.3 + Figure 10
def fig10(context: BenchContext, level: int = 5) -> TextTable:
    """Phase 1-2 statistics per workload query (§3.3 and Figure 10)."""
    lattice_size = len(context.lattice(level)) if level <= 5 else None
    table = TextTable(
        f"Figure 10 / §3.3: keyword pruning and MTNs (level {level})",
        [
            "query",
            "map ms",
            "retained",
            "pruned %",
            "MTNs",
            "desc total",
            "desc unique",
        ],
    )
    for query in context.workload:
        prepared = context.prepare(level, query)
        retained = prepared.retained_union()
        pruned_pct = (
            100.0 * (lattice_size - retained) / lattice_size if lattice_size else 0.0
        )
        total, unique = prepared.graph.descendant_counts()
        table.add_row(
            query.qid,
            prepared.mapping.mapping_time * 1000.0,
            retained,
            pruned_pct,
            prepared.mtn_count,
            total,
            unique,
        )
    if lattice_size:
        table.add_note(
            f"offline lattice has {lattice_size} nodes; the paper reports "
            "~98% pruning at level 5 and 94.3% at level 7"
        )
    return table


# ----------------------------------------------------- Figures 11 and 12
def fig11(context: BenchContext, level: int = 5) -> TextTable:
    """Figure 11: SQL queries executed per traversal strategy per query."""
    table = TextTable(
        f"Figure 11: number of SQL queries executed (level {level})",
        ["query"] + [STRATEGY_LABELS[name] for name in STRATEGY_NAMES],
    )
    for query in context.workload:
        row = [query.qid]
        for name in STRATEGY_NAMES:
            result = context.run_strategy(level, query, name)
            row.append(result.stats.queries_executed)
        table.add_row(*row)
    table.add_note("reuse variants and SBH never execute more than BU/TD")
    return table


def fig12(context: BenchContext, level: int = 5) -> TextTable:
    """Figure 12: time to execute the SQL queries per strategy per query.

    Reported in simulated seconds (deterministic cost model); wall-clock
    milliseconds of the in-memory engine are appended as a note column.
    """
    table = TextTable(
        f"Figure 12: SQL execution time, simulated seconds (level {level})",
        ["query"] + [STRATEGY_LABELS[name] for name in STRATEGY_NAMES],
    )
    for query in context.workload:
        row = [query.qid]
        for name in STRATEGY_NAMES:
            result = context.run_strategy(level, query, name)
            row.append(result.stats.simulated_time)
        table.add_row(*row)
    return table


# --------------------------------------------------------------- Table 3
def table3(context: BenchContext, levels: tuple[int, ...] = DEFAULT_LEVELS) -> TextTable:
    """Table 3: distribution of MTNs and MPANs at several lattice levels."""
    headers = ["query"]
    headers += [f"MTN L{level}" for level in levels]
    headers += [f"MPAN L{level}" for level in levels]
    table = TextTable("Table 3: MTN and MPAN counts per maximum level", headers)
    for query in context.workload:
        row: list = [query.qid]
        for level in levels:
            row.append(context.prepare(level, query).mtn_count)
        for level in levels:
            result = context.run_strategy(level, query, "sbh")
            row.append(result.mpan_pair_count)
        table.add_row(*row)
    table.add_note(
        "counts are cumulative up to the level, as in the paper; most MTNs "
        "and MPANs appear at the higher levels"
    )
    return table


# --------------------------------------------------------------- Table 4
def table4(
    context: BenchContext,
    qid: str = "Q3",
    levels: tuple[int, ...] = DEFAULT_LEVELS,
) -> TextTable:
    """Table 4: SQL queries per strategy for one query as levels grow."""
    query = query_by_id(qid)
    table = TextTable(
        f"Table 4: SQL queries executed for {qid} by maximum lattice level",
        ["level"] + [STRATEGY_LABELS[name] for name in STRATEGY_NAMES],
    )
    for level in levels:
        row: list = [level]
        for name in STRATEGY_NAMES:
            result = context.run_strategy(level, query, name)
            row.append(result.stats.queries_executed)
        table.add_row(*row)
    table.add_note("paper at level 7: BU 5036, BUWR 3624, TD 3866, TDWR 1818, SBH 1026")
    return table


# -------------------------------------------------------------- Figure 13
def fig13(context: BenchContext, levels: tuple[int, ...] = DEFAULT_LEVELS) -> TextTable:
    """Figure 13: percentage of reuse, 100 * (1 - unique/total descendants)."""
    table = TextTable(
        "Figure 13: percentage of reuse between MTN descendants",
        ["query"] + [f"L{level}" for level in levels],
    )
    for query in context.workload:
        row: list = [query.qid]
        for level in levels:
            prepared = context.prepare(level, query)
            row.append(prepared.graph.reuse_percentage())
        table.add_row(*row)
    table.add_note("reuse grows with the number of allowed joins")
    return table


# ------------------------------------------------------- Figures 14 and 15
def _baseline_comparison(context: BenchContext, level: int, title: str) -> TextTable:
    table = TextTable(
        title,
        [
            "query",
            "ours (s)",
            "RN (s)",
            "RE (s)",
            "ours #sql",
            "RN #sql",
            "RE #sql",
        ],
    )
    debugger = context.debugger(level)
    for query in context.workload:
        ours = context.run_strategy(level, query, "sbh")
        rn = ReturnNothing(debugger).run(query.text)
        re_ = ReturnEverything(debugger).run(query.text)
        table.add_row(
            query.qid,
            ours.stats.simulated_time,
            rn.stats.simulated_time,
            re_.stats.simulated_time,
            ours.stats.queries_executed,
            rn.stats.queries_executed,
            re_.stats.queries_executed,
        )
    table.add_note(
        "'ours' = lattice + SBH; times are simulated seconds from the "
        "deterministic cost model"
    )
    return table


def fig14(context: BenchContext, level: int = 5) -> TextTable:
    """Figure 14: response time, ours vs Return Nothing vs Return Everything."""
    return _baseline_comparison(
        context, level, f"Figure 14: response time vs baselines (level {level})"
    )


def fig15(context: BenchContext, level: int = 7) -> TextTable:
    """Figure 15: the same comparison with deeper joins allowed."""
    return _baseline_comparison(
        context, level, f"Figure 15: response time vs baselines (level {level})"
    )


# -------------------------------------------------------------- ablations
def ablation_pa(
    context: BenchContext,
    level: int = 5,
    values: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> TextTable:
    """Sensitivity of SBH to the alive-probability prior p_a (§2.5.3)."""
    table = TextTable(
        f"Ablation: SBH queries executed vs p_a (level {level})",
        ["query"] + [f"p_a={value}" for value in values],
    )
    for query in context.workload:
        row: list = [query.qid]
        for value in values:
            result = context.run_strategy(
                level, query, "sbh", probability_alive=value
            )
            row.append(result.stats.queries_executed)
        table.add_row(*row)
    table.add_note("the paper found the flat prior p_a = 0.5 works well")
    return table


def ablation_match(context: BenchContext, level: int = 3) -> TextTable:
    """Token vs substring (LIKE '%kw%') matching: MTN/answer differences."""
    table = TextTable(
        f"Ablation: token vs substring matching (level {level})",
        ["query", "MTNs token", "MTNs substring", "alive token", "alive substring"],
    )
    substring = BenchContext(config=context.config, mode=MatchMode.SUBSTRING)
    for query in context.workload:
        token_prepared = context.prepare(level, query)
        sub_prepared = substring.prepare(level, query)
        token_run = context.run_strategy(level, query, "sbh")
        sub_run = substring.run_strategy(level, query, "sbh")
        table.add_row(
            query.qid,
            token_prepared.mtn_count,
            sub_prepared.mtn_count,
            len(token_run.alive_mtns),
            len(sub_run.alive_mtns),
        )
    table.add_note(
        "substring matching can only widen tuple sets; on this workload the "
        "counts coincide because every keyword already token-matches each "
        "relation it substring-matches"
    )
    return table


def ablation_free_copies(context: BenchContext, level: int = 3) -> TextTable:
    """What the free copies (R0) buy: MTNs with vs without free tuple sets."""
    table = TextTable(
        f"Ablation: free tuple sets (level {level})",
        ["query", "MTNs with R0", "MTNs without R0"],
    )
    schema = context.database.schema
    without = generate_lattice(
        schema, level - 1, max_keywords=context.max_keywords, free_copies=False
    )
    from repro.core.debugger import NonAnswerDebugger

    debugger = NonAnswerDebugger(
        context.database, mode=context.mode, lattice=without
    )
    for query in context.workload:
        prepared = context.prepare(level, query)
        report = debugger.debug(query.text)
        table.add_row(query.qid, prepared.mtn_count, report.mtn_count)
    table.add_note(
        "without R0, keywords in tables not directly joined lose their "
        "connecting paths (e.g. Person-Writes-Publication needs a free Writes)"
    )
    return table


def ablation_free_count(
    context: BenchContext, level: int = 5, counts: tuple[int, ...] = (1, 2)
) -> TextTable:
    """Beyond the paper: multiple free copies per relation.

    The paper's single ``R0`` cannot route through a relation twice, which
    is why connecting several people needs long detours (Q3).  This sweep
    shows what a second free copy buys per query at one level.
    """
    from repro.core.debugger import NonAnswerDebugger

    headers = ["query"]
    for count in counts:
        headers += [f"MTNs f={count}", f"alive f={count}"]
    table = TextTable(
        f"Ablation: free copies per relation (level {level})", headers
    )
    debuggers = {
        count: NonAnswerDebugger(
            context.database,
            max_joins=level - 1,
            mode=context.mode,
            use_lattice=False,
            free_copies=count,
        )
        for count in counts
    }
    for query in context.workload:
        row: list = [query.qid]
        for count in counts:
            report = debuggers[count].debug(query.text)
            row += [report.mtn_count, len(report.answers())]
        table.add_row(*row)
    table.add_note(
        "f=1 is the paper's configuration; extra free copies expose "
        "relationships that route through the same relation twice "
        "(e.g. person-Writes-publication-Writes-person)"
    )
    return table


def scaling(
    scales: tuple[int, ...] = (1, 2, 4),
    level: int = 3,
    seed: int = 42,
) -> TextTable:
    """Dataset-scale sweep: SQL counts stay flat, per-query work grows."""
    table = TextTable(
        f"Scaling: workload totals vs dataset scale (level {level})",
        ["scale", "tuples", "total MTNs", "total SQL (sbh)", "simulated s"],
    )
    for scale in scales:
        context = BenchContext.create(scale=scale, seed=seed)
        total_mtns = 0
        total_sql = 0
        total_time = 0.0
        for query in context.workload:
            prepared = context.prepare(level, query)
            total_mtns += prepared.mtn_count
            result = context.run_strategy(level, query, "sbh")
            total_sql += result.stats.queries_executed
            total_time += result.stats.simulated_time
        table.add_row(scale, len(context.database), total_mtns, total_sql, total_time)
    table.add_note("SQL counts depend on schema/keywords, not cardinality")
    return table


# ------------------------------------------------------------- registry
EXPERIMENTS = {
    "fig9a": lambda context, **kw: fig9(context, **kw)[0],
    "fig9b": lambda context, **kw: fig9(context, **kw)[1],
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "table3": table3,
    "table4": table4,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "ablation-pa": ablation_pa,
    "ablation-match": ablation_match,
    "ablation-free-copies": ablation_free_copies,
    "ablation-free-count": ablation_free_count,
}


def run_experiment(name: str, context: BenchContext | None = None, **kwargs) -> TextTable:
    """Run one named experiment (the CLI entry point).

    When the context carries a :class:`~repro.obs.trace.ProbeTracer`, the
    figure run is bracketed by ``experiment_start``/``experiment_end``
    events and every probe underneath emits a span, so the run leaves a
    machine-readable trace behind alongside the rendered table.
    """
    if name == "scaling":
        return scaling(**kwargs)
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(EXPERIMENTS) + ['scaling']}"
        ) from None
    context = context or BenchContext()
    if context.tracer is not None:
        context.tracer.record_event("experiment_start", experiment=name)
    table = runner(context, **kwargs)
    if context.tracer is not None:
        context.tracer.record_event(
            "experiment_end",
            experiment=name,
            spans=context.tracer.span_count,
            executed=context.tracer.executed_span_count,
        )
    return table
