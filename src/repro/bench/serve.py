"""Concurrent-session throughput benchmark for the debugging service.

Drives the Table-2 workload through a :class:`~repro.service.manager.
SessionManager` twice against a :class:`~repro.parallel.
SimulatedLatencyBackend` (real per-probe sleeps standing in for DBMS
round-trips):

* **serialized** -- one worker, one closed-loop client: every session
  finishes before the next is submitted, the baseline a single-tenant
  deployment pays;
* **concurrent** -- four workers and four closed-loop clients, each
  replaying the full workload, so four sessions are in flight at every
  moment sharing the one backend.

Aggregate QPS is sessions finished per wall second.  Two gates are
checked before any timing is trusted and carried into CI via
``BENCH_serve.json``:

* every concurrent lane's per-query outcomes (state, classification
  signature, executed-query count) are byte-identical to the serialized
  lane's -- multi-tenancy must not change a single classification;
* concurrent aggregate QPS >= 3x serialized (ceiling 4x: probe sleeps
  overlap across sessions, only the GIL-bound phase-1/2 work and the
  shared tracer serialize).

``repro bench serve`` renders the table; ``--json`` dumps the payload.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.bench.context import BenchContext
from repro.bench.tables import TextTable
from repro.core.debugger import NonAnswerDebugger
from repro.parallel import SimulatedLatencyBackend
from repro.relational.database import Database
from repro.service.manager import SessionHandle, SessionManager
from repro.workloads.queries import TABLE2_QUERIES

DEFAULT_BENCH_LEVEL = 4
#: Per-probe sleep: large enough that overlapped round-trips dominate
#: the GIL-serialized phase-1/2 bookkeeping, small enough for CI.
DEFAULT_BENCH_LATENCY = 0.012
#: Concurrent closed-loop clients (= manager workers in that pass).
DEFAULT_CONCURRENT_CLIENTS = 4
#: CI gate on the aggregate-QPS speedup of the concurrent pass.
QPS_GATE = 3.0
#: BU probes every candidate network (no reuse cache, no status cache),
#: so both passes pay the same, maximal backend bill per session.
BENCH_STRATEGY = "bu"


def _client_loop(
    manager: SessionManager, queries: list[str]
) -> list[SessionHandle]:
    """One closed-loop client: submit, wait terminal, next query."""
    handles = []
    for text in queries:
        handle = manager.submit(text, strategy=BENCH_STRATEGY)
        handle.wait()
        handles.append(handle)
    return handles


def _lane_outcomes(handles: list[SessionHandle]) -> list[dict[str, Any]]:
    """Per-query outcome documents with session identity stripped."""
    outcomes = []
    for handle in handles:
        payload = handle.result_payload()
        payload.pop("session_id", None)
        outcomes.append(payload)
    return outcomes


def _service_pass(
    database: Database, level: int, clients: int, latency: float
) -> dict[str, Any]:
    """Run ``clients`` closed-loop replays of the workload concurrently.

    Returns wall seconds, sessions finished, executed-query total, and
    every lane's outcome list (for the byte-identity gate).
    """
    debugger = NonAnswerDebugger(
        database,
        max_joins=level - 1,
        use_lattice=False,
        strategy=BENCH_STRATEGY,
    )
    debugger.backend = SimulatedLatencyBackend(
        debugger.backend, latency=latency
    )
    manager = SessionManager(debugger, workers=clients)
    queries = [query.text for query in TABLE2_QUERIES]
    try:
        started = time.perf_counter()
        if clients == 1:
            lanes = [_client_loop(manager, queries)]
        else:
            with ThreadPoolExecutor(
                max_workers=clients, thread_name_prefix="repro-bench-client"
            ) as pool:
                futures = [
                    pool.submit(_client_loop, manager, queries)
                    for _ in range(clients)
                ]
                lanes = [future.result() for future in futures]
        wall = time.perf_counter() - started
    finally:
        manager.shutdown(drain=True)
    outcomes = [_lane_outcomes(handles) for handles in lanes]
    executed = sum(
        int(outcome.get("queries_executed", 0))
        for lane in outcomes
        for outcome in lane
    )
    sessions = clients * len(queries)
    return {
        "clients": clients,
        "sessions": sessions,
        "wall_s": wall,
        "qps": sessions / wall if wall else 0.0,
        "queries_executed": executed,
        "outcomes": outcomes,
    }


def run_serve_bench(
    context: BenchContext | None = None,
    level: int = DEFAULT_BENCH_LEVEL,
    clients: int = DEFAULT_CONCURRENT_CLIENTS,
    latency: float = DEFAULT_BENCH_LATENCY,
) -> tuple[TextTable, dict]:
    """Serialized vs concurrent session throughput through the service.

    Returns the rendered table and a JSON-able payload with both
    passes' walls/QPS, the byte-identity verdict, and the aggregate-QPS
    speedup the CI gate asserts >= ``QPS_GATE``.
    """
    context = context or BenchContext()
    database = context.database
    serial = _service_pass(database, level, 1, latency)
    concurrent = _service_pass(database, level, clients, latency)

    reference = json.dumps(serial["outcomes"][0], sort_keys=True)
    identical = all(
        json.dumps(lane, sort_keys=True) == reference
        for lane in concurrent["outcomes"]
    )
    speedup = (
        concurrent["qps"] / serial["qps"] if serial["qps"] else 0.0
    )

    table = TextTable(
        f"Service throughput: serialized vs {clients} concurrent sessions "
        f"(level {level}, {latency * 1000:.1f}ms/probe, {BENCH_STRATEGY})",
        ["pass", "clients", "sessions", "wall s", "qps", "executed"],
    )
    for label, row in (("serialized", serial), ("concurrent", concurrent)):
        table.add_row(
            label,
            row["clients"],
            row["sessions"],
            row["wall_s"],
            row["qps"],
            row["queries_executed"],
        )
    table.add_note(
        f"aggregate QPS speedup {speedup:.2f}x (gate >= {QPS_GATE:.1f}x, "
        f"ceiling {clients}x)"
    )
    table.add_note(
        "every concurrent lane replays the full workload closed-loop; "
        "probe sleeps overlap across sessions, classifications must not "
        "change"
    )
    if not identical:
        table.add_note("concurrent outcomes DIVERGED from serialized (bug!)")

    def _summary(row: dict[str, Any]) -> dict[str, Any]:
        return {key: row[key] for key in row if key != "outcomes"}

    payload: dict = {
        "level": level,
        "latency_s": latency,
        "strategy": BENCH_STRATEGY,
        "queries": len(TABLE2_QUERIES),
        "serialized": _summary(serial),
        "concurrent": _summary(concurrent),
        "qps_speedup": speedup,
        "qps_gate": QPS_GATE,
        "signatures_match": identical,
        "passed": identical and speedup >= QPS_GATE,
    }
    return table, payload
