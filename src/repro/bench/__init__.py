"""Benchmark harness: regenerates every table and figure of the paper's §3.

Each experiment has a runner in :mod:`repro.bench.experiments` that returns a
:class:`repro.bench.tables.TextTable` (paper-style rows) and is wrapped both
by ``python -m repro bench <id>`` and by a pytest-benchmark test under
``benchmarks/``.
"""

from repro.bench.context import BenchContext
from repro.bench.cost_model import SimpleCostModel
from repro.bench.tables import TextTable
from repro.bench import experiments

__all__ = ["BenchContext", "SimpleCostModel", "TextTable", "experiments"]
