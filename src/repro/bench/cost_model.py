"""A deterministic per-query cost model ("simulated seconds").

The paper reports response times on PostgreSQL, where the expensive queries
are multi-way joins over large keyword tuple sets (one Q2 join took ~20 s).
Wall-clock times of the in-memory engine are machine-dependent and much
flatter, so the figures are additionally reported in *simulated seconds*
from this model, which is reproducible bit-for-bit:

    cost(q) = startup
            + per_row * sum of input tuple-set sizes
            + per_output * estimated join output cardinality

The output estimate uses textbook equi-join selectivity ``1 / max(V(a),
V(b))`` with distinct-value counts from the table indexes, propagated along
the join tree.  None of the traversal logic depends on this model; it only
feeds the ``simulated_time`` counter of the instrumentation.
"""

from __future__ import annotations

from repro.index.base import IndexBackend
from repro.relational.database import Database
from repro.relational.jointree import BoundQuery


class SimpleCostModel:
    """Cardinality-based cost estimates for bound join-tree queries."""

    def __init__(
        self,
        database: Database,
        index: IndexBackend,
        startup: float = 0.05,
        per_row: float = 2e-4,
        per_output: float = 1e-3,
    ):
        self.database = database
        self.index = index
        self.startup = startup
        self.per_row = per_row
        self.per_output = per_output

    def _input_size(self, query: BoundQuery, instance) -> int:
        keyword = query.keyword_of(instance)
        table = self.database.table(instance.relation)
        if keyword is None:
            return len(table)
        return len(self.index.tuple_set(instance.relation, keyword, query.mode))

    def _distinct(self, instance, column: str) -> int:
        table = self.database.table(instance.relation)
        return max(len(table.index_on(column)), 1)

    def estimated_output(self, query: BoundQuery) -> float:
        """Estimated result cardinality of the full join."""
        estimate = 1.0
        for instance in query.tree.instances:
            estimate *= max(self._input_size(query, instance), 0)
            if estimate == 0:
                return 0.0
        for edge in query.tree.edges:
            distinct = max(
                self._distinct(edge.a, edge.a_column),
                self._distinct(edge.b, edge.b_column),
            )
            estimate /= distinct
        return estimate

    def cost(self, query: BoundQuery) -> float:
        """Simulated seconds to execute ``query`` once."""
        input_rows = sum(
            self._input_size(query, instance) for instance in query.tree.instances
        )
        return (
            self.startup
            + self.per_row * input_rows
            + self.per_output * self.estimated_output(query)
        )
