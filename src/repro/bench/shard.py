"""Serial vs threads vs process-sharded traversal micro-benchmark.

The thread executor (:mod:`repro.bench.parallel`) wins by overlapping
probe *latency* -- sleeps and socket waits release the GIL.  Against a
CPU-bound in-memory workload it cannot win: every probe holds the GIL
for its whole evaluation, so N threads serialize right back to ~1x.
That is exactly the workload this bench builds -- an in-memory engine
behind a deterministic pure-Python per-probe burn
(:class:`CpuBurnBackend`, registered as the ``cpuburn`` backend) -- and
then runs every shardable strategy over it three ways:

* **serial** -- the plain strategy sweep (the baseline and the
  signature reference);
* **threads** -- the same sweep through a
  :class:`~repro.parallel.ParallelProbeExecutor` (expected ~1x here;
  the GIL ceiling is the point);
* **processes** -- the :class:`~repro.parallel.ShardedLatticeExecutor`,
  per-MTN subtree shards swept in forked workers (the only tier that
  can exceed 1x on this workload).

Classification signatures must be identical across all three on every
workload query before any timing is reported, and no sharded run may
surface a shard failure.  ``repro bench shard --json BENCH_shard.json``
writes the payload CI gates on: signatures identical, process speedup
>= ``PROCESS_SPEEDUP_GATE`` at 4 workers, thread speedup below
``THREAD_SPEEDUP_CEILING`` (the demonstration that the win is the
process tier, not latent latency overlap).  The speedup gates are
meaningful only on multi-core runners, so they live in CI, not in the
local test suite.
"""

from __future__ import annotations

import time
from typing import Any

from repro.backends.base import BackendCapabilities
from repro.backends.registry import (
    AlivenessBackend,
    BackendRegistryError,
    register_backend,
)
from repro.bench.context import BenchContext
from repro.bench.tables import TextTable
from repro.core.traversal import (
    SHARDABLE_STRATEGIES,
    TraversalResult,
    get_strategy,
)
from repro.parallel import ParallelProbeExecutor, ShardedLatticeExecutor
from repro.parallel.sharded import DEFAULT_PROCESSES
from repro.relational.evaluator import InstrumentedEvaluator
from repro.relational.jointree import BoundQuery

DEFAULT_BENCH_LEVEL = 4
#: Pure-Python loop iterations burned per probe.  Sized so one probe
#: costs low single-digit milliseconds -- large against coordination
#: overhead, small enough that a full shardable-strategy pass stays
#: CI-friendly.
DEFAULT_BURN_ITERATIONS = 20_000
#: CI gate: minimum process-tier speedup at 4 workers on a multi-core
#: runner (the issue's acceptance threshold).
PROCESS_SPEEDUP_GATE = 1.8
#: CI note: the thread tier must stay below this on the same workload,
#: demonstrating the GIL ceiling the process tier escapes.
THREAD_SPEEDUP_CEILING = 1.2


class CpuBurnBackend:
    """Delegating aliveness backend that burns deterministic CPU per probe.

    The burn is a pure-Python integer loop (an FNV-style hash fold), so
    it never releases the GIL -- the wall-clock analogue of CPU-bound
    evaluation, as :class:`~repro.parallel.SimulatedLatencyBackend` is of
    I/O-bound evaluation.  Answers are exactly the wrapped backend's.
    """

    def __init__(self, inner: AlivenessBackend, iterations: int = DEFAULT_BURN_ITERATIONS):
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        self.inner = inner
        self.iterations = iterations
        self._sink = 0

    def is_alive(self, query: BoundQuery) -> bool:
        accumulator = 1469598103934665603
        for value in range(self.iterations):
            accumulator = ((accumulator ^ value) * 1099511628211) & (
                (1 << 64) - 1
            )
        self._sink = accumulator  # defeat hypothetical dead-code elimination
        return self.inner.is_alive(query)


def _cpuburn_factory(database: Any, **options: Any) -> AlivenessBackend:
    from repro.relational.engine import InMemoryEngine

    inner = InMemoryEngine(
        database, tuple_set_provider=options.get("tuple_set_provider")
    )
    return CpuBurnBackend(
        inner, iterations=options.get("burn_iterations", DEFAULT_BURN_ITERATIONS)
    )


def ensure_cpuburn_registered() -> None:
    """Register the ``cpuburn`` backend (idempotent).

    Registered here rather than in :mod:`repro.backends.registry` because
    it is a benchmark instrument, not a production engine; forked shard
    workers inherit the registration through the fork snapshot.
    """
    try:
        register_backend(
            "cpuburn",
            _cpuburn_factory,
            BackendCapabilities(thread_safe=True),
            "in-memory engine plus a deterministic per-probe CPU burn "
            "(bench-only; the workload where threads hit the GIL ceiling)",
        )
    except BackendRegistryError:
        pass


def run_shard_bench(
    context: BenchContext | None = None,
    level: int = DEFAULT_BENCH_LEVEL,
    processes: int = DEFAULT_PROCESSES,
    shards: int | None = None,
    strategies: tuple[str, ...] = SHARDABLE_STRATEGIES,
    burn_iterations: int = DEFAULT_BURN_ITERATIONS,
) -> tuple[TextTable, dict]:
    """Serial vs threads vs sharded processes on a CPU-bound workload.

    Returns the rendered table and the JSON-able payload for
    ``BENCH_shard.json``: per-strategy and overall wall times for all
    three tiers, both speedups, the signature comparison, and the shard
    failure count.  ``passed`` gates correctness only (signatures plus
    zero failures); the speedup thresholds ride along as data for the
    CI step, because a single-core runner legitimately measures ~1x.
    """
    context = context or BenchContext()
    ensure_cpuburn_registered()
    debugger = context.debugger(level)
    provider = debugger.index.provider
    backend_options = {
        "tuple_set_provider": provider,
        "burn_iterations": burn_iterations,
    }
    backend = CpuBurnBackend(debugger.backend, iterations=burn_iterations)
    shard_count = shards or processes
    table = TextTable(
        f"Sharded exploration: serial vs {processes} threads vs "
        f"{processes} processes x {shard_count} shards "
        f"(level {level}, CPU-bound probes)",
        [
            "strategy",
            "serial s",
            "threads s",
            "processes s",
            "thread x",
            "process x",
            "identical",
        ],
    )
    payload: dict = {
        "level": level,
        "processes": processes,
        "shards": shard_count,
        "burn_iterations": burn_iterations,
        "process_speedup_gate": PROCESS_SPEEDUP_GATE,
        "thread_speedup_ceiling": THREAD_SPEEDUP_CEILING,
        "strategies": {},
    }
    totals = {"serial": 0.0, "threads": 0.0, "processes": 0.0}
    all_identical = True
    failure_count = 0

    def evaluator(name: str) -> InstrumentedEvaluator:
        return InstrumentedEvaluator(
            backend,
            cost_model=context.cost_model,
            use_cache=get_strategy(name).uses_reuse,
            tracer=context.tracer,
        )

    with ParallelProbeExecutor(workers=processes) as thread_executor:
        sharded = ShardedLatticeExecutor(processes=processes, shards=shards)
        for name in strategies:
            strategy = get_strategy(name)
            walls = {"serial": 0.0, "threads": 0.0, "processes": 0.0}
            results: dict[str, list[TraversalResult]] = {
                "serial": [],
                "threads": [],
                "processes": [],
            }
            for query in context.workload:
                prepared = context.prepare(level, query)
                for mode, run in (
                    (
                        "serial",
                        lambda: strategy.run(
                            prepared.graph, evaluator(name), context.database
                        ),
                    ),
                    (
                        "threads",
                        lambda: strategy.run(
                            prepared.graph,
                            evaluator(name),
                            context.database,
                            executor=thread_executor,
                        ),
                    ),
                    (
                        "processes",
                        lambda: sharded.run(
                            prepared.graph,
                            context.database,
                            name,
                            backend="cpuburn",
                            backend_options=backend_options,
                            cost_model=context.cost_model,
                            tracer=context.tracer,
                            coordinator_backend=backend,
                        ),
                    ),
                ):
                    started = time.perf_counter()
                    result = run()
                    walls[mode] += time.perf_counter() - started
                    results[mode].append(result)
            reference = [
                r.classification_signature() for r in results["serial"]
            ]
            identical = all(
                [r.classification_signature() for r in results[mode]]
                == reference
                for mode in ("threads", "processes")
            )
            failures = sum(
                len(r.shard_failures) for r in results["processes"]
            )
            failure_count += failures
            all_identical = all_identical and identical
            for mode in totals:
                totals[mode] += walls[mode]
            thread_speedup = (
                walls["serial"] / walls["threads"] if walls["threads"] else 0.0
            )
            process_speedup = (
                walls["serial"] / walls["processes"]
                if walls["processes"]
                else 0.0
            )
            table.add_row(
                name,
                walls["serial"],
                walls["threads"],
                walls["processes"],
                thread_speedup,
                process_speedup,
                "yes" if identical else "NO",
            )
            payload["strategies"][name] = {
                "serial_wall_s": walls["serial"],
                "thread_wall_s": walls["threads"],
                "process_wall_s": walls["processes"],
                "thread_speedup": thread_speedup,
                "process_speedup": process_speedup,
                "signatures_match": identical,
                "shard_failures": failures,
                "queries": [
                    r.stats.queries_executed for r in results["serial"]
                ],
            }
    thread_speedup = (
        totals["serial"] / totals["threads"] if totals["threads"] else 0.0
    )
    process_speedup = (
        totals["serial"] / totals["processes"] if totals["processes"] else 0.0
    )
    payload.update(
        serial_wall_s=totals["serial"],
        thread_wall_s=totals["threads"],
        process_wall_s=totals["processes"],
        thread_speedup=thread_speedup,
        process_speedup=process_speedup,
        signatures_match=all_identical,
        shard_failures=failure_count,
        passed=all_identical and failure_count == 0,
    )
    table.add_note(
        f"thread tier {thread_speedup:.2f}x (GIL-bound by construction), "
        f"process tier {process_speedup:.2f}x"
    )
    table.add_note(
        "classifications "
        + (
            "identical across all three tiers"
            if all_identical
            else "DIVERGED (bug!)"
        )
        + f"; {failure_count} shard failure(s)"
    )
    table.add_note(
        f"CI gates the process tier at >={PROCESS_SPEEDUP_GATE}x and notes "
        f"threads <{THREAD_SPEEDUP_CEILING}x on multi-core runners only"
    )
    return table, payload
