"""Cold-vs-warm benchmark for the persistent two-tier probe cache.

Runs the reuse strategies over the DBLife workload twice against a
:class:`~repro.parallel.SimulatedLatencyBackend` sharing one
:class:`~repro.cache.ProbeCache` per strategy:

* **cold** -- empty cache file; every first-seen probe pays the backend
  round-trip and is written through to the L2 store;
* **warm** -- a *fresh evaluator* (empty L1) against the now-populated
  store, the exact situation a second debugging session over an
  unchanged database is in.

Two invariants are checked before any timing is reported and carried
into CI via ``BENCH_cache.json``:

* cold and warm classification signatures are byte-identical, and
* warm runs execute **zero** backend queries (everything the traversal
  asks was written through in the cold pass), so the executed-query
  speedup is unbounded -- the CI gate asserts >= 5x.

Each strategy gets its own cache subdirectory so one strategy's cold
pass cannot pre-warm another's.  ``repro bench cache`` renders the
table; ``--json`` dumps the payload.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.context import BenchContext
from repro.bench.tables import TextTable
from repro.cache import ProbeCache
from repro.core.traversal import TraversalResult, get_strategy
from repro.parallel import SimulatedLatencyBackend
from repro.relational.evaluator import InstrumentedEvaluator

DEFAULT_BENCH_LEVEL = 4
#: Per-probe sleep of the latency backend: large enough that the warm
#: pass's wall-clock win is visible over fixed Phase-3 bookkeeping.
DEFAULT_BENCH_LATENCY = 0.002
#: CI gate on executed-query speedup (cold / max(1, warm)).  Warm runs
#: execute 0 queries, so any cold run with >= 5 probes clears this.
SPEEDUP_GATE = 5.0
#: Only reuse strategies participate: the persistent tier is (by design)
#: inert under ``use_cache=False``, so BU/TD would measure nothing.
DEFAULT_STRATEGIES = ("buwr", "tdwr", "sbh")


def _timed_pass(
    context: BenchContext,
    level: int,
    strategy_name: str,
    latency: float,
    probe_cache: ProbeCache,
) -> tuple[float, int, int, list[TraversalResult]]:
    """One full-workload pass with fresh evaluators sharing ``probe_cache``.

    Returns ``(wall seconds, executed queries, L2 hits, results)``.
    """
    strategy = get_strategy(strategy_name)
    debugger = context.debugger(level)
    backend = SimulatedLatencyBackend(debugger.backend, latency=latency)
    wall = 0.0
    executed = 0
    l2_hits = 0
    results = []
    for query in context.workload:
        prepared = context.prepare(level, query)
        evaluator = InstrumentedEvaluator(
            backend,
            cost_model=context.cost_model,
            use_cache=True,
            tracer=context.tracer,
            probe_cache=probe_cache,
        )
        started = time.perf_counter()
        result = strategy.run(prepared.graph, evaluator, context.database)
        wall += time.perf_counter() - started
        executed += result.stats.queries_executed
        l2_hits += result.stats.l2_hits
        results.append(result)
    return wall, executed, l2_hits, results


def run_cache_bench(
    context: BenchContext | None = None,
    level: int = DEFAULT_BENCH_LEVEL,
    cache_dir: str | Path | None = None,
    latency: float = DEFAULT_BENCH_LATENCY,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
) -> tuple[TextTable, dict]:
    """Cold vs warm probing through a persistent cache, per strategy.

    Returns the rendered table and a JSON-able payload with per-strategy
    cold/warm walls, executed-query counts, the signature comparison, and
    the overall executed-query speedup CI gates on.
    """
    context = context or BenchContext()
    root = Path(cache_dir) if cache_dir is not None else Path(tempfile.mkdtemp())
    fingerprint = context.database.fingerprint()
    table = TextTable(
        f"Persistent probe cache: cold vs warm (level {level}, "
        f"{latency * 1000:.1f}ms/probe)",
        ["strategy", "cold s", "warm s", "cold qrys", "warm qrys", "identical"],
    )
    payload: dict = {
        "level": level,
        "latency_s": latency,
        "cache_dir": str(root),
        "fingerprint": fingerprint,
        "strategies": {},
    }
    cold_wall_total = 0.0
    warm_wall_total = 0.0
    cold_queries_total = 0
    warm_queries_total = 0
    all_identical = True
    for name in strategies:
        with ProbeCache.open_dir(root / name, context.database) as cache:
            cache.clear()  # a reused --cache-dir must still start cold
            cold_wall, cold_queries, _, cold_results = _timed_pass(
                context, level, name, latency, cache
            )
            warm_wall, warm_queries, warm_l2, warm_results = _timed_pass(
                context, level, name, latency, cache
            )
            entries = len(cache)
        identical = all(
            one.classification_signature() == two.classification_signature()
            for one, two in zip(cold_results, warm_results)
        )
        cold_wall_total += cold_wall
        warm_wall_total += warm_wall
        cold_queries_total += cold_queries
        warm_queries_total += warm_queries
        all_identical = all_identical and identical
        table.add_row(
            name,
            cold_wall,
            warm_wall,
            cold_queries,
            warm_queries,
            "yes" if identical else "NO",
        )
        payload["strategies"][name] = {
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "cold_queries": cold_queries,
            "warm_queries": warm_queries,
            "warm_l2_hits": warm_l2,
            "cache_entries": entries,
            "signatures_match": identical,
        }
    query_speedup = cold_queries_total / max(1, warm_queries_total)
    wall_speedup = cold_wall_total / warm_wall_total if warm_wall_total else 0.0
    payload.update(
        cold_wall_s=cold_wall_total,
        warm_wall_s=warm_wall_total,
        wall_speedup=wall_speedup,
        cold_queries_total=cold_queries_total,
        warm_queries_total=warm_queries_total,
        query_speedup=query_speedup,
        speedup_gate=SPEEDUP_GATE,
        signatures_match=all_identical,
        passed=all_identical and query_speedup >= SPEEDUP_GATE,
    )
    table.add_note(
        f"executed-query speedup {query_speedup:.1f}x "
        f"({cold_queries_total} cold -> {warm_queries_total} warm), "
        f"wall speedup {wall_speedup:.2f}x"
    )
    table.add_note(
        "warm passes use fresh evaluators (empty L1): every answer comes "
        "from the persistent store, exactly like a second session"
    )
    if not all_identical:
        table.add_note("cold/warm classifications DIVERGED (bug!)")
    return table, payload
