"""Plain-text tables for the experiment runners (paper-style rows)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class TextTable:
    """A titled grid of rows, rendered with aligned columns."""

    title: str
    headers: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]] + [
            [_format(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[column]) for row in cells)
            for column in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(cells[0], widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
