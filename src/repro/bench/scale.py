"""``repro bench scale``: the million-tuple sweep over index backends.

Generates synthetic DBLife snapshots at a ladder of tuple targets
(10^4 -> 10^6 by default), runs the same debugging workload through each
registered index backend, and records three things per ``(target,
backend)`` cell:

* **index build** -- wall seconds plus the Python-heap allocation
  high-water of building the inverted index (phase-scoped via
  :class:`repro.obs.MemoryTracker`);
* **probe phase** -- wall seconds, executed probe count, and the same
  allocation high-water for running the workload end to end
  (keyword mapping, tuple sets, traversal, MPANs);
* **classification signature** -- a sha256 over the canonical
  answers/non-answers/MPANs of every workload query, proving the
  backends agree byte-for-byte before any number is compared.

Three CI gates ride on the payload (``BENCH_scale.json``):

* ``signatures_match`` -- every backend classifies identically at every
  target (the sqlite index is an *index*, not an approximation);
* ``memory_ceiling`` -- the sqlite backend's combined (build + probe)
  high-water at the largest target stays within
  :data:`MEMORY_CEILING_FACTOR` x its smallest-target high-water: the
  out-of-core promise.  The dict-backed ``memory`` index has no such
  bound -- its postings scale with the data and the gate ignores it;
* ``throughput_parity`` -- at the smallest target the sqlite backend
  sustains at least :data:`THROUGHPUT_PARITY_FLOOR` of the memory
  backend's probe throughput (disk must cost, not cripple).

Join-column hash indexes are pre-warmed once per snapshot *before* any
tracked phase, so dataset residency is excluded from every high-water
number and both backends measure the same per-probe work.
"""

from __future__ import annotations

import hashlib
import time

from repro.bench.tables import TextTable
from repro.core.debugger import DebugReport, NonAnswerDebugger
from repro.datasets.dblife import DBLifeConfig, dblife_database, scale_for_tuples
from repro.index import create_index
from repro.obs import MemoryTracker
from repro.relational.database import Database

#: The sweep ladder: two orders of magnitude up from the small snapshot.
DEFAULT_TUPLE_TARGETS: tuple[int, ...] = (10_000, 100_000, 1_000_000)

#: Index backends compared by the sweep (the registry's built-ins).
DEFAULT_BACKENDS: tuple[str, ...] = ("memory", "sqlite")

#: Workload slice: one alive-low, one dead-low, one person+conference
#: query (Q1/Q4/Q5 of Table 2) -- enough to exercise both classification
#: outcomes without making the 10^6 rung take minutes.
DEFAULT_QUERIES: tuple[str, ...] = ("Widom Trio", "DeRose VLDB", "Gray SIGMOD")

DEFAULT_MAX_JOINS = 2

#: The sqlite backend's combined high-water at the largest target must
#: stay within this factor of its smallest-target high-water.
MEMORY_CEILING_FACTOR = 2.0

#: Minimum sqlite/memory probe-throughput ratio at the smallest target.
THROUGHPUT_PARITY_FLOOR = 0.05


def _prewarm_join_indexes(database: Database) -> None:
    """Build every FK-column hash index before any tracked phase."""
    for foreign_key in database.schema.foreign_keys.values():
        database.table(foreign_key.child).index_on(foreign_key.child_column)
        database.table(foreign_key.parent).index_on(foreign_key.parent_column)


def _report_signature(report: DebugReport) -> str:
    """Canonical digest of one query's answers, non-answers, and MPANs."""
    digest = hashlib.sha256()
    digest.update(report.query.encode())
    for query in sorted(answer.describe_full() for answer in report.answers()):
        digest.update(b"A" + query.encode())
    for non_answer, mpans in sorted(
        (non_answer.describe_full(), sorted(m.describe_full() for m in mpans))
        for non_answer, mpans in report.explanations()
    ):
        digest.update(b"N" + non_answer.encode())
        for mpan in mpans:
            digest.update(b"M" + mpan.encode())
    return digest.hexdigest()


def _run_cell(
    database: Database,
    backend_name: str,
    queries: tuple[str, ...],
    max_joins: int,
) -> dict:
    """Build the index and run the workload for one (target, backend)."""
    build_tracker = MemoryTracker()
    with build_tracker:
        index = create_index(backend_name, database)
    assert build_tracker.sample is not None
    signatures = []
    probes = 0
    probe_tracker = MemoryTracker()
    try:
        debugger = NonAnswerDebugger(
            database,
            max_joins=max_joins,
            use_lattice=False,
            strategy="sbh",
            index_backend=backend_name,
            index=index,
        )
        try:
            with probe_tracker:
                for text in queries:
                    report = debugger.debug(text)
                    signatures.append(_report_signature(report))
                    if report.traversal is not None:
                        probes += report.traversal.stats.queries_executed
        finally:
            debugger.close()
    finally:
        index.close()
    assert probe_tracker.sample is not None
    build = build_tracker.sample
    probe = probe_tracker.sample
    return {
        "build_s": build.seconds,
        "build_high_water_bytes": build.high_water_bytes,
        "probe_s": probe.seconds,
        "probe_high_water_bytes": probe.high_water_bytes,
        "high_water_bytes": max(build.high_water_bytes, probe.high_water_bytes),
        "rss_peak_bytes": probe.rss_peak_bytes,
        "probes": probes,
        "probes_per_s": probes / probe.seconds if probe.seconds else 0.0,
        "signature": hashlib.sha256(
            "\n".join(signatures).encode()
        ).hexdigest(),
    }


def run_scale_bench(
    targets: tuple[int, ...] = DEFAULT_TUPLE_TARGETS,
    seed: int = 42,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    queries: tuple[str, ...] = DEFAULT_QUERIES,
    max_joins: int = DEFAULT_MAX_JOINS,
) -> tuple[TextTable, dict]:
    """The sweep; returns the rendered table and the gated JSON payload."""
    table = TextTable(
        f"Index-backend scale sweep (level {max_joins + 1}, "
        f"{len(queries)} queries)",
        [
            "tuples",
            "backend",
            "build s",
            "build MiB",
            "probe s",
            "probes",
            "probe MiB",
            "probes/s",
            "identical",
        ],
    )
    payload: dict = {
        "targets": list(targets),
        "seed": seed,
        "backends": list(backends),
        "queries": list(queries),
        "max_joins": max_joins,
        "scales": {},
    }
    signatures_match = True
    for target in sorted(targets):
        scale = scale_for_tuples(target, seed)
        database = dblife_database(DBLifeConfig(seed=seed, scale=scale))
        _prewarm_join_indexes(database)
        tuples = len(database)
        cells = {
            name: _run_cell(database, name, queries, max_joins)
            for name in backends
        }
        reference = next(iter(cells.values()))["signature"]
        identical = all(cell["signature"] == reference for cell in cells.values())
        signatures_match = signatures_match and identical
        for name, cell in cells.items():
            table.add_row(
                tuples,
                name,
                cell["build_s"],
                cell["build_high_water_bytes"] / 2**20,
                cell["probe_s"],
                cell["probes"],
                cell["probe_high_water_bytes"] / 2**20,
                cell["probes_per_s"],
                "yes" if identical else "NO",
            )
        payload["scales"][str(target)] = {
            "scale": scale,
            "tuples": tuples,
            "signatures_match": identical,
            "backends": cells,
        }
    ordered = [str(target) for target in sorted(targets)]
    smallest, largest = ordered[0], ordered[-1]

    def _cell(target_key: str, backend: str) -> dict:
        return payload["scales"][target_key]["backends"][backend]

    memory_ceiling = True
    memory_ratio = 1.0
    if "sqlite" in backends and len(ordered) > 1:
        floor_bytes = max(1, _cell(smallest, "sqlite")["high_water_bytes"])
        memory_ratio = _cell(largest, "sqlite")["high_water_bytes"] / floor_bytes
        memory_ceiling = memory_ratio <= MEMORY_CEILING_FACTOR
    throughput_parity = True
    throughput_ratio = 1.0
    if "sqlite" in backends and "memory" in backends:
        memory_rate = _cell(smallest, "memory")["probes_per_s"]
        sqlite_rate = _cell(smallest, "sqlite")["probes_per_s"]
        if memory_rate > 0:
            throughput_ratio = sqlite_rate / memory_rate
            throughput_parity = throughput_ratio >= THROUGHPUT_PARITY_FLOOR
    payload["gates"] = {
        "signatures_match": signatures_match,
        "memory_ceiling": memory_ceiling,
        "memory_ceiling_ratio": memory_ratio,
        "memory_ceiling_factor": MEMORY_CEILING_FACTOR,
        "throughput_parity": throughput_parity,
        "throughput_parity_ratio": throughput_ratio,
        "throughput_parity_floor": THROUGHPUT_PARITY_FLOOR,
    }
    payload["passed"] = signatures_match and memory_ceiling and throughput_parity
    table.add_note(
        f"sqlite high-water {largest}-vs-{smallest} ratio "
        f"{memory_ratio:.2f} (gate <= {MEMORY_CEILING_FACTOR})"
    )
    table.add_note(
        f"sqlite/memory throughput at {smallest} tuples "
        f"{throughput_ratio:.3f} (gate >= {THROUGHPUT_PARITY_FLOOR})"
    )
    return table, payload
