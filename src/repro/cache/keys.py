"""Canonical cache keys for bound queries.

The persistent probe cache must recognize "the same query" across
processes, so Python object identity and ``hash()`` (salted per process)
are both useless.  The key is built from the paper's own machinery: the
canonical label of the join tree (Algorithm 2, isomorphism-invariant and
equal iff the trees are equal for copy-labeled trees), the sorted
keyword bindings, and the match mode.  The digest of that tuple is the
row key; the dataset fingerprint (:meth:`Database.fingerprint`) is the
namespace, so a cached answer can never leak across datasets.
"""

from __future__ import annotations

import hashlib

from repro.core.canonical import canonical_code
from repro.relational.jointree import BoundQuery
from repro.relational.schema import SchemaGraph


def query_cache_key(query: BoundQuery, schema: SchemaGraph) -> str:
    """Stable hex key for ``query``: equal queries agree across processes.

    Two :class:`BoundQuery` objects that compare equal always map to the
    same key; distinct queries collide only if sha256 does.
    """
    code = canonical_code(query.tree, schema)
    bindings = sorted(
        (instance.relation, instance.copy, keyword)
        for instance, keyword in query.bindings
    )
    payload = repr((code, bindings, query.mode.value))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
