"""Canonical cache keys for bound queries.

The persistent probe cache must recognize "the same query" across
processes, so Python object identity and ``hash()`` (salted per process)
are both useless.  The key is built from the paper's own machinery: the
canonical label of the join tree (Algorithm 2, isomorphism-invariant and
equal iff the trees are equal for copy-labeled trees), the sorted
keyword bindings, and the match mode.  The digest of that tuple is the
row key; the **relation-fingerprint vector** of the query's own join
path (:func:`relation_vector_key`) is the namespace, so a cached answer
can never leak across dataset states -- and, because the vector covers
only the relations the probe actually touches, a mutation to one
relation leaves every probe over the untouched relations warm.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

from repro.core.canonical import canonical_code
from repro.relational.jointree import BoundQuery
from repro.relational.schema import SchemaGraph


def query_cache_key(query: BoundQuery, schema: SchemaGraph) -> str:
    """Stable hex key for ``query``: equal queries agree across processes.

    Two :class:`BoundQuery` objects that compare equal always map to the
    same key; distinct queries collide only if sha256 does.
    """
    code = canonical_code(query.tree, schema)
    bindings = sorted(
        (instance.relation, instance.copy, keyword)
        for instance, keyword in query.bindings
    )
    payload = repr((code, bindings, query.mode.value))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def relations_label(relations: Iterable[str]) -> str:
    """Sorted, comma-joined relation set -- the form stored next to a row.

    Persisted alongside every cached probe so attach-time repair can
    decide, per row, which mutated relations it touches without
    re-parsing the query.
    """
    return ",".join(sorted(set(relations)))


def relation_vector_key(
    relations: Iterable[str], fingerprints: Mapping[str, str]
) -> str:
    """Digest of the (relation, content-fingerprint) pairs of a join path.

    This is the cache namespace: two dataset states agree on a probe's
    vector key iff every relation the probe touches has identical
    content, so rows over untouched relations stay valid across a
    mutation with no repair work at all.

    Raises ``KeyError`` for a relation absent from ``fingerprints`` --
    callers own the unknown-relation policy (the repair scan evicts).
    """
    payload = "|".join(
        f"{name}:{fingerprints[name]}" for name in sorted(set(relations))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def workload_cache_key(
    tokens: Iterable[str],
    mode: str,
    max_joins: int,
    max_keywords: int,
    free_copies: int,
) -> str:
    """Stable key for one workload query + lattice configuration.

    Namespaces persisted :class:`~repro.cache.status.StatusCache` rows:
    an "exact repeat" means the same casefolded keyword multiset debugged
    under the same match mode and lattice shape parameters.
    """
    payload = repr(
        (
            sorted(token.casefold() for token in tokens),
            mode,
            max_joins,
            max_keywords,
            free_copies,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
