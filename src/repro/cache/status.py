"""Persisted classification facts: Phase 3 survives the process.

The probe cache (:mod:`repro.cache.store`) remembers *answers*; this
module remembers *conclusions*.  After a complete, unbudgeted traversal
the debugger saves one fact per classified exploration node -- the
node's canonical query key, the relations on its join path, its
aliveness, and whether it was actually probed -- under a **workload
key** (keyword multiset + match mode + lattice shape) together with the
database snapshot the run saw.

On a later debug of the same workload:

* **exact repeat** (same composite fingerprint, complete run persisted):
  Phase 3 is skipped entirely -- the saved facts rebuild the
  :class:`~repro.core.status.StatusStore` and MPANs are recomputed from
  it, which is the same ground truth every strategy converges to.
* **mutated database**: the facts are *repaired* with the same monotone
  rule the probe cache uses (alive facts survive insert-only deltas,
  dead facts survive delete-only deltas, anything mixed or undecidable
  is dropped) and the survivors pre-seed the session's store through
  ``mark_alive``/``mark_dead``, so R1/R2 closure re-derives everything
  they imply before the first SQL query is spent.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.relational.database import (
    Database,
    DatabaseDelta,
    DatabaseSnapshot,
    MutationDirection,
    RelationState,
)

#: File name used inside a ``--cache-dir`` directory (next to the probes).
STATUS_CACHE_FILENAME = "status.sqlite"

STATUS_CACHE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT NOT NULL PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS runs (
    workload_key TEXT NOT NULL PRIMARY KEY,
    snapshot     TEXT NOT NULL,
    complete     INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS status_facts (
    workload_key TEXT NOT NULL,
    node_key     TEXT NOT NULL,
    alive        INTEGER NOT NULL,
    evaluated    INTEGER NOT NULL,
    relations    TEXT NOT NULL,
    PRIMARY KEY (workload_key, node_key)
) WITHOUT ROWID
"""


class StatusCacheError(RuntimeError):
    """Raised on operations against a closed or unusable status cache."""


@dataclass(frozen=True)
class StatusFact:
    """One persisted node classification."""

    node_key: str
    relations: tuple[str, ...]
    alive: bool
    evaluated: bool


@dataclass(frozen=True)
class StatusLoad:
    """Facts recovered for one workload, already repaired if stale.

    ``exact`` means the persisted run saw byte-identical content
    (composite fingerprints match); combined with ``complete`` it
    licenses skipping Phase 3 outright.  Otherwise ``facts`` holds only
    the classifications the monotone repair rule could keep, and
    ``dropped`` counts the casualties.
    """

    workload_key: str
    exact: bool
    complete: bool
    facts: tuple[StatusFact, ...]
    directions: Mapping[str, str]
    dropped: int


def _encode_snapshot(snapshot: DatabaseSnapshot) -> str:
    return json.dumps(
        {
            "composite": snapshot.composite,
            "lineage": snapshot.lineage,
            "relations": [
                [
                    state.relation,
                    state.fingerprint,
                    state.row_count,
                    state.inserts_total,
                    state.deletes_total,
                ]
                for state in snapshot.relations
            ],
        }
    )


def _decode_snapshot(payload: str) -> DatabaseSnapshot:
    data = json.loads(payload)
    return DatabaseSnapshot(
        composite=data["composite"],
        lineage=data["lineage"],
        relations=tuple(
            RelationState(
                relation=relation,
                fingerprint=fingerprint,
                row_count=row_count,
                inserts_total=inserts,
                deletes_total=deletes,
            )
            for relation, fingerprint, row_count, inserts, deletes in data[
                "relations"
            ]
        ),
    )


def fact_survives(
    fact: StatusFact, directions: Mapping[str, MutationDirection]
) -> bool:
    """The monotone repair rule, shared with the probe cache.

    A fact touching no changed relation is still exact.  Otherwise it
    survives iff its answer is protected by monotonicity: alive facts
    under purely insert-only touched deltas, dead facts under purely
    delete-only ones.
    """
    touched = {
        directions[name] for name in fact.relations if name in directions
    }
    if not touched:
        return True
    if fact.alive:
        return touched == {MutationDirection.INSERT_ONLY}
    return touched == {MutationDirection.DELETE_ONLY}


class StatusCache:
    """Persistent per-workload classification store (sqlite, thread-safe)."""

    def __init__(self, path: str | Path, database: Database):
        self.path = Path(path)
        self.database = database
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self.saves = 0
        self.exact_loads = 0
        self.repaired_loads = 0
        try:
            # guarded-by: _lock  (every post-init use is under the lock)
            self._connection = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._migrate_locked()
        except sqlite3.Error as exc:  # pragma: no cover - disk-level failures
            raise StatusCacheError(f"cannot open status cache at {path}: {exc}")

    @classmethod
    def open_dir(cls, cache_dir: str | Path, database: Database) -> "StatusCache":
        """Open (creating if needed) the status file inside ``cache_dir``."""
        return cls(Path(cache_dir) / STATUS_CACHE_FILENAME, database)

    def _migrate_locked(self) -> None:
        tables = {
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        version = None
        if "meta" in tables:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            version = int(row[0]) if row else None
        if tables and version != STATUS_CACHE_SCHEMA_VERSION:
            for name in ("status_facts", "runs", "meta"):
                self._connection.execute(f"DROP TABLE IF EXISTS {name}")
        self._connection.executescript(_SCHEMA)
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(STATUS_CACHE_SCHEMA_VERSION),),
        )
        self._connection.commit()

    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise StatusCacheError("status cache is closed")

    # -------------------------------------------------------------- saving
    def save(
        self,
        workload_key: str,
        facts: Iterable[StatusFact],
        complete: bool = True,
    ) -> int:
        """Persist the classification facts of one finished run.

        Replaces whatever the workload key held before (last run wins)
        and stamps the database snapshot the run was computed against.
        Returns the number of facts stored.
        """
        rows = [
            (
                workload_key,
                fact.node_key,
                int(fact.alive),
                int(fact.evaluated),
                ",".join(sorted(fact.relations)),
            )
            for fact in facts
        ]
        snapshot = self.database.snapshot()
        with self._lock:
            self._ensure_open_locked()
            self._connection.execute(
                "DELETE FROM status_facts WHERE workload_key = ?", (workload_key,)
            )
            self._connection.executemany(
                "INSERT INTO status_facts "
                "(workload_key, node_key, alive, evaluated, relations) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            self._connection.execute(
                "INSERT OR REPLACE INTO runs (workload_key, snapshot, complete) "
                "VALUES (?, ?, ?)",
                (workload_key, _encode_snapshot(snapshot), int(complete)),
            )
            self._connection.commit()
            self.saves += 1
        return len(rows)

    # ------------------------------------------------------------- loading
    def load(self, workload_key: str) -> StatusLoad | None:
        """Recover (and, if stale, repair) the facts of one workload.

        Returns None when nothing was persisted for the key.  Stale facts
        are filtered through :func:`fact_survives`; for a cross-lineage
        or mixed delta that keeps only the untouched-relation facts,
        which is exactly what remains provable.
        """
        current = self.database.snapshot()
        with self._lock:
            self._ensure_open_locked()
            run = self._connection.execute(
                "SELECT snapshot, complete FROM runs WHERE workload_key = ?",
                (workload_key,),
            ).fetchone()
            if run is None:
                return None
            rows = self._connection.execute(
                "SELECT node_key, alive, evaluated, relations "
                "FROM status_facts WHERE workload_key = ? ORDER BY node_key",
                (workload_key,),
            ).fetchall()
        stored = _decode_snapshot(run[0])
        complete = bool(run[1])
        facts = tuple(
            StatusFact(
                node_key=node_key,
                relations=tuple(label.split(",")) if label else (),
                alive=bool(alive),
                evaluated=bool(evaluated),
            )
            for node_key, alive, evaluated, label in rows
        )
        if stored.composite == current.composite:
            with self._lock:
                self.exact_loads += 1
            return StatusLoad(
                workload_key=workload_key,
                exact=True,
                complete=complete,
                facts=facts,
                directions={},
                dropped=0,
            )
        delta = DatabaseDelta.between(stored, current)
        survivors = tuple(
            fact for fact in facts if fact_survives(fact, delta.directions)
        )
        with self._lock:
            self.repaired_loads += 1
        return StatusLoad(
            workload_key=workload_key,
            exact=False,
            complete=complete,
            facts=survivors,
            directions={
                name: direction.value
                for name, direction in sorted(delta.directions.items())
            },
            dropped=len(facts) - len(survivors),
        )

    # ------------------------------------------------------- housekeeping
    def __len__(self) -> int:
        with self._lock:
            self._ensure_open_locked()
            row = self._connection.execute(
                "SELECT COUNT(*) FROM status_facts"
            ).fetchone()
            return int(row[0])

    def clear(self) -> int:
        """Drop every persisted run; returns facts removed (pre-counted)."""
        with self._lock:
            self._ensure_open_locked()
            removed = int(
                self._connection.execute(
                    "SELECT COUNT(*) FROM status_facts"
                ).fetchone()[0]
            )
            self._connection.execute("DELETE FROM status_facts")
            self._connection.execute("DELETE FROM runs")
            self._connection.commit()
            return removed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.commit()
            self._connection.close()

    def __enter__(self) -> "StatusCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"StatusCache({str(self.path)!r}, {state})"
