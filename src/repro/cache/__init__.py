"""Persistent cross-session probe cache (the L2 tier).

Two tiers serve aliveness probes before the backend does:

* **L1** -- the evaluator's bounded in-process LRU (what the paper calls
  *reuse*), per evaluator, dies with the process;
* **L2** -- :class:`ProbeCache`, a sqlite file keyed by canonical query
  code + dataset fingerprint, shared by every session pointed at the
  same ``--cache-dir``.

See :mod:`repro.cache.store` for the store and invalidation semantics
and :mod:`repro.cache.keys` for the canonical key construction.
"""

from repro.cache.keys import query_cache_key
from repro.cache.store import (
    PROBE_CACHE_FILENAME,
    ProbeCache,
    ProbeCacheError,
    ProbeCacheStats,
    clear_cache_dir,
    inspect_cache_dir,
)

__all__ = [
    "query_cache_key",
    "PROBE_CACHE_FILENAME",
    "ProbeCache",
    "ProbeCacheError",
    "ProbeCacheStats",
    "clear_cache_dir",
    "inspect_cache_dir",
]
