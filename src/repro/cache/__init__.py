"""Persistent cross-session caches (the L2 tier and the status store).

Two tiers serve aliveness probes before the backend does:

* **L1** -- the evaluator's bounded in-process LRU (what the paper calls
  *reuse*), per evaluator, dies with the process;
* **L2** -- :class:`ProbeCache`, a sqlite file keyed by canonical query
  code + the relation-fingerprint vector of the probed join path, shared
  by every session pointed at the same ``--cache-dir``.  Mutations are
  *repaired* (monotone survivor re-keying), not nuked.

Above them, :class:`StatusCache` persists whole-run classification facts
per workload so an exact repeat skips Phase 3 and a mutated repeat
pre-seeds the status store with everything still provable.

See :mod:`repro.cache.store` for the probe store and invalidation
semantics, :mod:`repro.cache.status` for the persisted classifications,
and :mod:`repro.cache.keys` for the canonical key construction.
"""

from repro.cache.keys import (
    query_cache_key,
    relation_vector_key,
    relations_label,
    workload_cache_key,
)
from repro.cache.status import (
    STATUS_CACHE_FILENAME,
    StatusCache,
    StatusCacheError,
    StatusFact,
    StatusLoad,
    fact_survives,
)
from repro.cache.store import (
    PROBE_CACHE_FILENAME,
    PROBE_CACHE_SCHEMA_VERSION,
    ProbeCache,
    ProbeCacheError,
    ProbeCacheStats,
    RepairReport,
    clear_cache_dir,
    inspect_cache_dir,
)

__all__ = [
    "query_cache_key",
    "relation_vector_key",
    "relations_label",
    "workload_cache_key",
    "PROBE_CACHE_FILENAME",
    "PROBE_CACHE_SCHEMA_VERSION",
    "STATUS_CACHE_FILENAME",
    "ProbeCache",
    "ProbeCacheError",
    "ProbeCacheStats",
    "RepairReport",
    "StatusCache",
    "StatusCacheError",
    "StatusFact",
    "StatusLoad",
    "fact_survives",
    "clear_cache_dir",
    "inspect_cache_dir",
]
