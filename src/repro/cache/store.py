"""The persistent probe-result store: the L2 tier of the two-tier cache.

The paper treats Phase 0 as "computed offline ... a one-time cost"
(§3.1), but probe results -- the expensive part on a DISCOVER-style
engine, where each candidate network is a real SQL round-trip -- died
with the process.  :class:`ProbeCache` persists them in a small sqlite
file keyed by

* the **dataset fingerprint** (:meth:`Database.fingerprint`, a content
  hash): the namespace.  Rows under a stale fingerprint are evicted on
  attach, so mutating the dataset invalidates everything cached for it.
* the **canonical query key** (:func:`query_cache_key`): the row key,
  stable across processes and isomorphic relabelings.

The evaluator consults it only after missing its in-process LRU (L1) and
writes through on every executed probe, so a second debugging session
over an unchanged database starts warm: previously probed nodes cost
zero backend queries and classifications are byte-identical.

All methods are thread-safe (one internal lock around one connection);
the coordinator thread does all L2 traffic under the parallel executor,
but interactive sessions may probe from arbitrary threads.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.cache.keys import query_cache_key
from repro.relational.jointree import BoundQuery
from repro.relational.schema import SchemaGraph

#: File name used inside a ``--cache-dir`` directory.
PROBE_CACHE_FILENAME = "probes.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS probes (
    fingerprint TEXT NOT NULL,
    query_key   TEXT NOT NULL,
    alive       INTEGER NOT NULL,
    PRIMARY KEY (fingerprint, query_key)
) WITHOUT ROWID
"""


class ProbeCacheError(RuntimeError):
    """Raised on operations against a closed or unusable cache."""


@dataclass(frozen=True)
class ProbeCacheStats:
    """Counters of one :class:`ProbeCache` (session + file)."""

    path: str
    fingerprint: str
    entries: int
    stale_evicted: int
    hits: int
    misses: int
    writes: int

    def __str__(self) -> str:
        return (
            f"{self.entries} cached probes ({self.hits} hits / "
            f"{self.misses} misses this session, {self.writes} writes, "
            f"{self.stale_evicted} stale evicted)"
        )


class ProbeCache:
    """Persistent ``query -> aliveness`` store for one dataset fingerprint.

    Implements the :class:`~repro.backends.base.ProbeStore` protocol the
    evaluator consumes.  ``evict_stale=True`` (the default) drops every
    row recorded under a *different* fingerprint at attach time: the
    cache file tracks one slowly-changing database, and stale answers
    are worse than no answers.
    """

    def __init__(
        self,
        path: str | Path,
        schema: SchemaGraph,
        fingerprint: str,
        evict_stale: bool = True,
    ):
        self.path = Path(path)
        self.schema = schema
        self.fingerprint = fingerprint
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.stale_evicted = 0
        try:
            # guarded-by: _lock  (every post-init use is under the lock)
            self._connection = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._connection.execute(_SCHEMA)
            if evict_stale:
                cursor = self._connection.execute(
                    "DELETE FROM probes WHERE fingerprint != ?", (fingerprint,)
                )
                self.stale_evicted = cursor.rowcount if cursor.rowcount > 0 else 0
            self._connection.commit()
        except sqlite3.Error as exc:  # pragma: no cover - disk-level failures
            raise ProbeCacheError(f"cannot open probe cache at {path}: {exc}")

    @classmethod
    def open_dir(
        cls,
        cache_dir: str | Path,
        schema: SchemaGraph,
        fingerprint: str,
        evict_stale: bool = True,
    ) -> "ProbeCache":
        """Open (creating if needed) the cache file inside ``cache_dir``."""
        return cls(
            Path(cache_dir) / PROBE_CACHE_FILENAME,
            schema,
            fingerprint,
            evict_stale=evict_stale,
        )

    # --------------------------------------------------------- ProbeStore
    def key_of(self, query: BoundQuery) -> str:
        return query_cache_key(query, self.schema)

    def get(self, query: BoundQuery) -> bool | None:
        """Cached aliveness of ``query`` under this fingerprint, or None."""
        key = self.key_of(query)
        with self._lock:
            self._ensure_open_locked()
            row = self._connection.execute(
                "SELECT alive FROM probes WHERE fingerprint = ? AND query_key = ?",
                (self.fingerprint, key),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            return bool(row[0])

    def put(self, query: BoundQuery, alive: bool) -> None:
        """Record one probe result (idempotent; last write wins)."""
        key = self.key_of(query)
        with self._lock:
            self._ensure_open_locked()
            self._connection.execute(
                "INSERT OR REPLACE INTO probes (fingerprint, query_key, alive) "
                "VALUES (?, ?, ?)",
                (self.fingerprint, key, int(alive)),
            )
            self._connection.commit()
            self.writes += 1

    # ------------------------------------------------------- housekeeping
    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise ProbeCacheError("probe cache is closed")

    def _count_locked(self) -> int:
        self._ensure_open_locked()
        row = self._connection.execute(
            "SELECT COUNT(*) FROM probes WHERE fingerprint = ?",
            (self.fingerprint,),
        ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        """Entries stored under this cache's fingerprint."""
        with self._lock:
            return self._count_locked()

    def clear(self) -> int:
        """Drop every entry (all fingerprints); returns rows removed."""
        with self._lock:
            self._ensure_open_locked()
            cursor = self._connection.execute("DELETE FROM probes")
            self._connection.commit()
            return cursor.rowcount if cursor.rowcount > 0 else 0

    def stats(self) -> ProbeCacheStats:
        # One lock acquisition for the whole snapshot: the session
        # counters and the entry count must be read consistently.
        with self._lock:
            return ProbeCacheStats(
                path=str(self.path),
                fingerprint=self.fingerprint,
                entries=self._count_locked(),
                stale_evicted=self.stale_evicted,
                hits=self.hits,
                misses=self.misses,
                writes=self.writes,
            )

    def flush(self) -> None:
        with self._lock:
            self._ensure_open_locked()
            self._connection.commit()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.commit()
            self._connection.close()

    def __enter__(self) -> "ProbeCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ProbeCache({str(self.path)!r}, {state})"


# ---------------------------------------------------------- file-level ops
def inspect_cache_dir(cache_dir: str | Path) -> dict[str, object]:
    """Summary of a cache directory without needing schema or fingerprint.

    Used by ``repro cache stats``: reports the file, total entries, and
    per-fingerprint entry counts (a healthy cache has exactly one).
    """
    path = Path(cache_dir) / PROBE_CACHE_FILENAME
    if not path.exists():
        return {"path": str(path), "exists": False, "entries": 0, "fingerprints": {}}
    connection = sqlite3.connect(str(path))
    try:
        rows = connection.execute(
            "SELECT fingerprint, COUNT(*), SUM(alive) FROM probes "
            "GROUP BY fingerprint ORDER BY fingerprint"
        ).fetchall()
    except sqlite3.Error as exc:
        raise ProbeCacheError(f"{path} is not a probe cache file: {exc}")
    finally:
        connection.close()
    fingerprints = {
        fingerprint: {"entries": int(count), "alive": int(alive or 0)}
        for fingerprint, count, alive in rows
    }
    return {
        "path": str(path),
        "exists": True,
        "size_bytes": path.stat().st_size,
        "entries": sum(entry["entries"] for entry in fingerprints.values()),
        "fingerprints": fingerprints,
    }


def clear_cache_dir(cache_dir: str | Path) -> int:
    """Drop every cached probe in ``cache_dir``; returns rows removed."""
    path = Path(cache_dir) / PROBE_CACHE_FILENAME
    if not path.exists():
        return 0
    connection = sqlite3.connect(str(path))
    try:
        cursor = connection.execute("DELETE FROM probes")
        connection.commit()
        return cursor.rowcount if cursor.rowcount > 0 else 0
    except sqlite3.Error as exc:
        raise ProbeCacheError(f"{path} is not a probe cache file: {exc}")
    finally:
        connection.close()
