"""The persistent probe-result store: the L2 tier of the two-tier cache.

The paper treats Phase 0 as "computed offline ... a one-time cost"
(§3.1), but probe results -- the expensive part on a DISCOVER-style
engine, where each candidate network is a real SQL round-trip -- died
with the process.  :class:`ProbeCache` persists them in a small sqlite
file keyed by

* the **relation-fingerprint vector** of the probed query's join path
  (:func:`relation_vector_key`): the namespace.  A mutation to
  ``publication`` changes only the vectors of probes touching
  ``publication``; every ``person``-only probe keeps its key and stays
  warm with no repair work at all.
* the **canonical query key** (:func:`query_cache_key`): the row key,
  stable across processes and isomorphic relabelings.

On attach (and on :meth:`refresh` after an in-session mutation) the
store compares the persisted per-relation snapshot against the live
database and **repairs** the stale rows instead of evicting them
wholesale.  The repair rule is the paper's own monotonicity read at the
dataset boundary: an insert can only flip a probe dead -> alive, so
under an insert-only delta every cached ``alive=True`` row is still
correct and is re-keyed to the new vector, while ``alive=False`` rows
touching the mutated relation are dropped; a delete-only delta is the
exact dual; a mixed (or undecidable) delta evicts both polarities.
Eviction counts are taken from the explicit row lists the repair scan
builds -- never from ``cursor.rowcount``, whose ``-1`` sentinel sqlite
is free to return for any statement.

The evaluator consults the store only after missing its in-process LRU
(L1) and writes through on every executed probe, so a second debugging
session over an unchanged database starts warm: previously probed nodes
cost zero backend queries and classifications are byte-identical.

All methods are thread-safe (one internal lock around one connection);
the coordinator thread does all L2 traffic under the parallel executor,
but interactive sessions may probe from arbitrary threads.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.cache.keys import query_cache_key, relation_vector_key, relations_label
from repro.relational.database import (
    Database,
    DatabaseDelta,
    DatabaseSnapshot,
    MutationDirection,
    RelationState,
)
from repro.relational.jointree import BoundQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.trace import ProbeTracer

#: File name used inside a ``--cache-dir`` directory.
PROBE_CACHE_FILENAME = "probes.sqlite"

#: Bumped whenever the on-disk layout changes; mismatched files are
#: rebuilt from scratch (cached probes are only ever an optimization).
PROBE_CACHE_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT NOT NULL PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS relation_state (
    relation    TEXT NOT NULL PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    row_count   INTEGER NOT NULL,
    inserts     INTEGER NOT NULL,
    deletes     INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS probes (
    vector_key TEXT NOT NULL,
    query_key  TEXT NOT NULL,
    alive      INTEGER NOT NULL,
    relations  TEXT NOT NULL,
    PRIMARY KEY (vector_key, query_key)
) WITHOUT ROWID
"""


class ProbeCacheError(RuntimeError):
    """Raised on operations against a closed or unusable cache."""


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one attach/refresh repair scan."""

    old_composite: str | None
    new_composite: str
    directions: Mapping[str, str]
    repaired: int
    evicted: int

    @property
    def changed(self) -> bool:
        return self.old_composite is not None and (
            self.old_composite != self.new_composite
        )


@dataclass(frozen=True)
class ProbeCacheStats:
    """Counters of one :class:`ProbeCache` (session + file)."""

    path: str
    composite: str
    entries: int
    repaired: int
    evicted: int
    hits: int
    misses: int
    writes: int

    def __str__(self) -> str:
        return (
            f"{self.entries} cached probes ({self.hits} hits / "
            f"{self.misses} misses this session, {self.writes} writes, "
            f"{self.repaired} repaired, {self.evicted} evicted)"
        )


class ProbeCache:
    """Persistent ``query -> aliveness`` store with per-relation identity.

    Implements the :class:`~repro.backends.base.ProbeStore` protocol the
    evaluator consumes.  The cache holds a reference to the live
    :class:`Database` and computes every row's vector key from the
    *current* per-relation fingerprints, so reads after an in-session
    mutation can never return an answer recorded against stale content
    -- at worst they miss until :meth:`refresh` repairs the old rows.
    """

    def __init__(
        self,
        path: str | Path,
        database: Database,
        tracer: "ProbeTracer | None" = None,
    ):
        self.path = Path(path)
        self.database = database
        self.schema = database.schema
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.repaired_total = 0
        self.evicted_total = 0
        self.last_repair: RepairReport | None = None
        try:
            # guarded-by: _lock  (every post-init use is under the lock)
            self._connection = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._migrate_locked()
            self.last_repair = self._repair_locked(tracer)
        except sqlite3.Error as exc:  # pragma: no cover - disk-level failures
            raise ProbeCacheError(f"cannot open probe cache at {path}: {exc}")

    @classmethod
    def open_dir(
        cls,
        cache_dir: str | Path,
        database: Database,
        tracer: "ProbeTracer | None" = None,
    ) -> "ProbeCache":
        """Open (creating if needed) the cache file inside ``cache_dir``."""
        return cls(Path(cache_dir) / PROBE_CACHE_FILENAME, database, tracer=tracer)

    # ---------------------------------------------------------- migration
    def _migrate_locked(self) -> None:
        """Create the v2 layout, dropping any unrecognized prior layout."""
        tables = {
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        version = None
        if "meta" in tables:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            version = int(row[0]) if row else None
        if tables and version != PROBE_CACHE_SCHEMA_VERSION:
            # v1 files (fingerprint-namespaced) or anything unknown: the
            # content is only an optimization, rebuilding is always safe.
            for name in ("probes", "relation_state", "meta"):
                self._connection.execute(f"DROP TABLE IF EXISTS {name}")
        self._connection.executescript(_SCHEMA)
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(PROBE_CACHE_SCHEMA_VERSION),),
        )
        self._connection.commit()

    # ------------------------------------------------------------- repair
    def _load_snapshot_locked(self) -> DatabaseSnapshot | None:
        """Snapshot persisted by the previous attach/refresh, if any."""
        meta = dict(
            self._connection.execute(
                "SELECT key, value FROM meta WHERE key IN ('composite', 'lineage')"
            ).fetchall()
        )
        if "composite" not in meta:
            return None
        states = tuple(
            RelationState(
                relation=relation,
                fingerprint=fingerprint,
                row_count=row_count,
                inserts_total=inserts,
                deletes_total=deletes,
            )
            for relation, fingerprint, row_count, inserts, deletes in (
                self._connection.execute(
                    "SELECT relation, fingerprint, row_count, inserts, deletes "
                    "FROM relation_state ORDER BY relation"
                )
            )
        )
        return DatabaseSnapshot(
            composite=meta["composite"],
            lineage=meta.get("lineage", ""),
            relations=states,
        )

    def _store_snapshot_locked(self, snapshot: DatabaseSnapshot) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('composite', ?)",
            (snapshot.composite,),
        )
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('lineage', ?)",
            (snapshot.lineage,),
        )
        self._connection.execute("DELETE FROM relation_state")
        self._connection.executemany(
            "INSERT INTO relation_state "
            "(relation, fingerprint, row_count, inserts, deletes) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (
                    state.relation,
                    state.fingerprint,
                    state.row_count,
                    state.inserts_total,
                    state.deletes_total,
                )
                for state in snapshot.relations
            ],
        )

    def _repair_locked(self, tracer: "ProbeTracer | None") -> RepairReport:
        """Reconcile stored rows with the live database's current identity.

        Rows whose vector key already matches the current fingerprints
        are untouched.  Stale rows survive (re-keyed) iff the paper's
        monotonicity guarantees their answer: every changed relation
        they touch moved insert-only and the row is alive, or every one
        moved delete-only and the row is dead.  Everything else --
        mixed deltas, foreign-lineage counters, unknown relations --
        is evicted.
        """
        current = self.database.snapshot()
        persisted = self._load_snapshot_locked()
        directions: dict[str, str] = {}
        repaired = 0
        evicted = 0
        if persisted is not None and persisted.composite != current.composite:
            delta = DatabaseDelta.between(persisted, current)
            directions = {
                name: direction.value
                for name, direction in sorted(delta.directions.items())
            }
            fingerprints = {
                state.relation: state.fingerprint for state in current.relations
            }
            deletes: list[tuple[str, str]] = []
            upserts: list[tuple[str, str, int, str]] = []
            rows = self._connection.execute(
                "SELECT vector_key, query_key, alive, relations FROM probes"
            ).fetchall()
            for vector_key, query_key, alive, label in rows:
                relations = label.split(",") if label else []
                if any(name not in fingerprints for name in relations):
                    deletes.append((vector_key, query_key))
                    continue
                expected = relation_vector_key(relations, fingerprints)
                if expected == vector_key:
                    continue
                touched = {
                    delta.directions[name]
                    for name in relations
                    if name in delta.directions
                }
                survives = bool(touched) and (
                    (touched == {MutationDirection.INSERT_ONLY} and bool(alive))
                    or (
                        touched == {MutationDirection.DELETE_ONLY}
                        and not bool(alive)
                    )
                )
                deletes.append((vector_key, query_key))
                if survives:
                    upserts.append((expected, query_key, int(alive), label))
            self._connection.executemany(
                "DELETE FROM probes WHERE vector_key = ? AND query_key = ?",
                deletes,
            )
            self._connection.executemany(
                "INSERT OR REPLACE INTO probes "
                "(vector_key, query_key, alive, relations) VALUES (?, ?, ?, ?)",
                upserts,
            )
            repaired = len(upserts)
            evicted = len(deletes) - len(upserts)
        self._store_snapshot_locked(current)
        self._connection.commit()
        self.repaired_total += repaired
        self.evicted_total += evicted
        report = RepairReport(
            old_composite=None if persisted is None else persisted.composite,
            new_composite=current.composite,
            directions=directions,
            repaired=repaired,
            evicted=evicted,
        )
        if tracer is not None and report.changed:
            tracer.record_event(
                "cache_repair",
                old_composite=report.old_composite,
                new_composite=report.new_composite,
                directions=dict(directions),
                repaired=repaired,
                evicted=evicted,
            )
        return report

    def refresh(self, tracer: "ProbeTracer | None" = None) -> RepairReport:
        """Repair against the live database's *current* state.

        Call after in-session mutations to recover the still-sound rows
        recorded under the pre-mutation vector (reads were already safe:
        they key on current fingerprints and simply missed).
        """
        with self._lock:
            self._ensure_open_locked()
            report = self._repair_locked(tracer)
        self.last_repair = report
        return report

    # --------------------------------------------------------- ProbeStore
    def key_of(self, query: BoundQuery) -> str:
        return query_cache_key(query, self.schema)

    def vector_of(self, query: BoundQuery) -> str:
        """Current vector key of the relations on ``query``'s join path."""
        return relation_vector_key(
            query.tree.relations(), self.database.relation_fingerprints()
        )

    def get(self, query: BoundQuery) -> bool | None:
        """Cached aliveness of ``query`` under the current vector, or None."""
        key = self.key_of(query)
        vector = self.vector_of(query)
        with self._lock:
            self._ensure_open_locked()
            row = self._connection.execute(
                "SELECT alive FROM probes WHERE vector_key = ? AND query_key = ?",
                (vector, key),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            return bool(row[0])

    def put(self, query: BoundQuery, alive: bool) -> None:
        """Record one probe result (idempotent; last write wins)."""
        key = self.key_of(query)
        vector = self.vector_of(query)
        label = relations_label(query.tree.relations())
        with self._lock:
            self._ensure_open_locked()
            self._connection.execute(
                "INSERT OR REPLACE INTO probes "
                "(vector_key, query_key, alive, relations) VALUES (?, ?, ?, ?)",
                (vector, key, int(alive), label),
            )
            self._connection.commit()
            self.writes += 1

    # ------------------------------------------------------- housekeeping
    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise ProbeCacheError("probe cache is closed")

    def _count_locked(self) -> int:
        self._ensure_open_locked()
        row = self._connection.execute("SELECT COUNT(*) FROM probes").fetchone()
        return int(row[0])

    def __len__(self) -> int:
        """Entries currently stored (all of them valid for some vector)."""
        with self._lock:
            return self._count_locked()

    def clear(self) -> int:
        """Drop every entry; returns rows removed (counted, not rowcount)."""
        with self._lock:
            removed = self._count_locked()
            self._connection.execute("DELETE FROM probes")
            self._connection.commit()
            return removed

    def stats(self) -> ProbeCacheStats:
        # One lock acquisition for the whole snapshot: the session
        # counters and the entry count must be read consistently.
        with self._lock:
            return ProbeCacheStats(
                path=str(self.path),
                composite=self.database.fingerprint(),
                entries=self._count_locked(),
                repaired=self.repaired_total,
                evicted=self.evicted_total,
                hits=self.hits,
                misses=self.misses,
                writes=self.writes,
            )

    def flush(self) -> None:
        with self._lock:
            self._ensure_open_locked()
            self._connection.commit()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.commit()
            self._connection.close()

    def __enter__(self) -> "ProbeCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ProbeCache({str(self.path)!r}, {state})"


# ---------------------------------------------------------- file-level ops
def inspect_cache_dir(cache_dir: str | Path) -> dict[str, object]:
    """Summary of a cache directory without needing a live database.

    Used by ``repro cache stats``: reports the file, total entries, and
    per-vector entry counts (one vector per distinct dataset state x
    join-path relation set seen).
    """
    path = Path(cache_dir) / PROBE_CACHE_FILENAME
    if not path.exists():
        return {"path": str(path), "exists": False, "entries": 0, "vectors": {}}
    connection = sqlite3.connect(str(path))
    try:
        rows = connection.execute(
            "SELECT vector_key, relations, COUNT(*), SUM(alive) FROM probes "
            "GROUP BY vector_key, relations ORDER BY vector_key, relations"
        ).fetchall()
    except sqlite3.Error as exc:
        raise ProbeCacheError(f"{path} is not a probe cache file: {exc}")
    finally:
        connection.close()
    vectors: dict[str, dict[str, object]] = {}
    for vector_key, relations, count, alive in rows:
        vectors[vector_key] = {
            "relations": relations,
            "entries": int(count),
            "alive": int(alive or 0),
        }
    return {
        "path": str(path),
        "exists": True,
        "size_bytes": path.stat().st_size,
        "entries": sum(int(entry["entries"]) for entry in vectors.values()),
        "vectors": vectors,
    }


def clear_cache_dir(cache_dir: str | Path) -> int:
    """Drop every cached probe in ``cache_dir``; returns rows removed.

    The count comes from ``SELECT COUNT(*)`` *before* the delete:
    ``cursor.rowcount`` is documented to be ``-1`` whenever sqlite does
    not track the statement, which silently read as "0 evicted".
    """
    path = Path(cache_dir) / PROBE_CACHE_FILENAME
    if not path.exists():
        return 0
    connection = sqlite3.connect(str(path))
    try:
        removed = int(connection.execute("SELECT COUNT(*) FROM probes").fetchone()[0])
        connection.execute("DELETE FROM probes")
        connection.commit()
        return removed
    except sqlite3.Error as exc:
        raise ProbeCacheError(f"{path} is not a probe cache file: {exc}")
    finally:
        connection.close()
