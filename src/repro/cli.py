"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro debug "saffron scented candle" --dataset products
    repro search "widom trio" --dataset dblife       # classic KWS-S view
    repro trace "red candle" --budget-queries 50     # JSON-lines probe trace
    repro bench fig11 --scale 1 --level 5            # regenerate a figure
    repro bench cache --json BENCH_cache.json        # cold vs warm probe cache
    repro bench shard --workers 4                    # threads vs forked shards
    repro debug "red candle" --executor processes    # sharded multiprocessing
    repro serve --dataset dblife --port 8642         # multi-tenant HTTP service
    repro bench serve --json BENCH_serve.json        # concurrent-session QPS
    repro inspect --dataset dblife --scale 2         # dataset summary
    repro lint --dataset dblife --json               # static analysis
    repro cache stats --cache-dir .repro-cache       # persistent probe cache
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.context import BenchContext
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.core.debugger import NonAnswerDebugger
from repro.datasets.dblife import DBLifeConfig, dblife_database
from repro.datasets.products import product_database
from repro.kws.discover import ClassicKWSSystem
from repro.obs import ProbeBudget, ProbeTracer, validate_trace_record
from repro.relational.predicates import MatchMode

STRATEGY_CHOICES = ("bu", "td", "buwr", "tdwr", "sbh")


def _load_database(args: argparse.Namespace):
    if args.dataset == "products":
        return product_database()
    return dblife_database(DBLifeConfig(seed=args.seed, scale=args.scale))


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    from repro.backends import backend_names
    from repro.index import index_backend_names

    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="memory",
        help="aliveness backend from the repro.backends registry",
    )
    parser.add_argument(
        "--index-backend",
        choices=index_backend_names(),
        default="memory",
        help=(
            "inverted-index backend from the repro.index registry: memory "
            "(dict, fastest) or sqlite (disk-backed, flat RAM, persisted "
            "and repaired inside --cache-dir)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist probe results here (keyed by the dataset fingerprint); "
            "a second run over an unchanged dataset starts warm"
        ),
    )


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "parallelism degree: worker threads per frontier with "
            "--executor threads (0 = serial), worker processes with "
            "--executor processes (0 = the default of 4)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=("threads", "processes"),
        default="threads",
        help=(
            "threads overlap backend round-trips on shared frontiers; "
            "processes shard the exploration graph per MTN subtree and "
            "sweep shards in forked workers (bu/td/buwr/tdwr only; sbh "
            "runs coordinator-side)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "shard count for --executor processes "
            "(0 = one shard per process)"
        ),
    )


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=("products", "dblife"),
        default="products",
        help="which built-in dataset to query (default: products)",
    )
    parser.add_argument("--scale", type=int, default=1, help="dblife scale factor")
    parser.add_argument("--seed", type=int, default=42, help="dblife RNG seed")
    parser.add_argument(
        "--level", type=int, default=3, help="lattice levels (= max joins + 1)"
    )
    parser.add_argument(
        "--match",
        choices=("token", "substring"),
        default="token",
        help="keyword matching semantics",
    )


def _cmd_debug(args: argparse.Namespace) -> int:
    database = _load_database(args)
    debugger = NonAnswerDebugger(
        database,
        max_joins=args.level - 1,
        mode=MatchMode(args.match),
        strategy=args.strategy,
        use_lattice=not args.direct,
        free_copies=args.free_copies,
        backend=args.backend,
        cache_dir=args.cache_dir,
        index_backend=args.index_backend,
    )
    started = time.perf_counter()
    report = debugger.debug(args.query, **_executor_kwargs(args))
    elapsed = time.perf_counter() - started
    debugger.close()
    print(report.render(max_items=args.max_items))
    if args.diagnose and report.non_answers():
        from repro.core.diagnosis import render_diagnoses

        print()
        print(render_diagnoses(report))
    if args.rank and report.non_answers():
        from repro.core.ranking import ExplanationRanker

        print()
        print(ExplanationRanker(top_k=args.max_items).render(report))
    if args.save_report:
        from repro.core.persistence import save_report

        save_report(report, args.save_report)
        print(f"(report saved to {args.save_report})")
    print(f"(end-to-end {elapsed * 1000:.1f} ms)")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    database = _load_database(args)
    system = ClassicKWSSystem(
        database, max_joins=args.level - 1, mode=MatchMode(args.match)
    )
    answer = system.search(args.query)
    print(f'Classic KWS-S for "{args.query}":')
    if answer.is_non_answer:
        print("  No results found!  (this is the problem the paper addresses)")
    for query in answer.answers:
        print(f"  + {query.describe()}")
    print(
        f"  ({answer.candidate_networks} candidate networks, "
        f"{answer.queries_executed} SQL queries, {answer.elapsed * 1000:.1f} ms)"
    )
    return 0


def _executor_kwargs(args: argparse.Namespace) -> dict:
    """Map ``--executor/--workers/--shards`` to ``debug()`` keywords.

    ``--workers`` is the parallelism degree for either executor kind;
    with ``--executor processes`` and no explicit count the sharded
    executor's default (4) applies.
    """
    if getattr(args, "executor", "threads") == "processes":
        from repro.parallel.sharded import DEFAULT_PROCESSES

        return {
            "workers": 0,
            "processes": args.workers or DEFAULT_PROCESSES,
            "shards": args.shards or None,
        }
    return {"workers": args.workers, "processes": 0, "shards": None}


def _make_budget(args: argparse.Namespace) -> ProbeBudget | None:
    if not (args.budget_queries or args.budget_simulated or args.budget_wall):
        return None
    return ProbeBudget(
        max_queries=args.budget_queries or None,
        max_simulated_seconds=args.budget_simulated or None,
        max_wall_seconds=args.budget_wall or None,
    )


def _render_aggregates(tracer: ProbeTracer) -> str:
    from repro.bench.tables import TextTable

    blocks = []
    keys = [
        ("level", "Probe spans by lattice level"),
        ("strategy", "Probe spans by traversal strategy"),
    ]
    if any(span.worker_id is not None for span in tracer.spans):
        keys.append(("worker_id", "Probe spans by worker"))
    if any(span.process_id is not None for span in tracer.spans):
        keys.append(("process_id", "Probe spans by process"))
    if any(span.shard_id is not None for span in tracer.spans):
        keys.append(("shard_id", "Probe spans by shard"))
    for key, title in keys:
        rows = tracer.aggregate(key)
        if not rows:
            continue
        table = TextTable(
            title,
            [key, "probes", "executed", "cache hits", "wall s", "simulated s"],
        )
        for row in rows:
            table.add_row(
                row[key],
                row["probes"],
                row["executed"],
                row["cache_hits"],
                row["wall_seconds"],
                row["simulated_seconds"],
            )
        blocks.append(table.render())
    return "\n\n".join(blocks)


def _cmd_trace_check(args: argparse.Namespace) -> int:
    """``repro trace check FILE``: schema + runtime-invariant validation."""
    from repro.obs import check_trace_file
    from repro.obs.trace import TraceValidationError, validate_trace_file

    if not args.path:
        print("trace check: missing trace file argument", file=sys.stderr)
        return 2
    max_queries = args.budget_queries if args.budget_queries > 0 else None
    try:
        counts = validate_trace_file(args.path)
        violations = check_trace_file(args.path, max_queries=max_queries)
    except TraceValidationError as error:
        print(f"trace check: schema error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"trace check: cannot read {args.path}: {error}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    print(
        f"trace check: {counts['span']} spans, {counts['event']} events, "
        f"{len(violations)} invariant violation(s)",
        file=sys.stderr,
    )
    return 0 if not violations else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.query == "check":
        return _cmd_trace_check(args)
    if args.path:
        print(
            "trace: unexpected extra argument (did you mean 'trace check "
            "FILE'?)",
            file=sys.stderr,
        )
        return 2
    database = _load_database(args)
    tracer = ProbeTracer()
    budget = _make_budget(args)
    debugger = NonAnswerDebugger(
        database,
        max_joins=args.level - 1,
        mode=MatchMode(args.match),
        strategy=args.strategy,
        use_lattice=not args.direct,
        tracer=tracer,
        backend=args.backend,
        cache_dir=args.cache_dir,
        index_backend=args.index_backend,
    )
    report = debugger.debug(args.query, budget=budget, **_executor_kwargs(args))
    debugger.close()
    for record in tracer.records:
        validate_trace_record(record.to_dict())
    lines = tracer.to_jsonl()
    if args.output:
        count = tracer.write_jsonl(args.output)
        print(f"wrote {count} trace records to {args.output}")
    elif lines:
        print(lines)
    status = (
        f"trace: {tracer.span_count} spans "
        f"({tracer.executed_span_count} executed, "
        f"{tracer.span_count - tracer.executed_span_count} cache hits), "
        f"{len(tracer.events)} events, {tracer.dropped} dropped"
    )
    if report.exhausted:
        status += "; probe budget exhausted (partial result)"
    print(status, file=sys.stderr)
    if args.summary:
        summary = _render_aggregates(tracer)
        if summary:
            print(summary, file=sys.stderr)
    return 0


def _write_bench_json(args: argparse.Namespace, payload: dict) -> None:
    if not args.json:
        return
    import json

    from repro.ioutil import atomic_write_text

    atomic_write_text(args.json, json.dumps(payload, indent=2) + "\n")
    print(f"(wrote results to {args.json})")


def _cmd_bench(args: argparse.Namespace) -> int:
    context = BenchContext.create(scale=args.scale, seed=args.seed)
    if args.trace:
        context.tracer = ProbeTracer()
    if args.experiment == "scale":
        from repro.bench.scale import DEFAULT_TUPLE_TARGETS, run_scale_bench

        targets = DEFAULT_TUPLE_TARGETS
        if args.tuples:
            targets = tuple(int(item) for item in args.tuples.split(","))
        started = time.perf_counter()
        table, payload = run_scale_bench(targets=targets, seed=args.seed)
        print(table.render())
        print(f"(ran in {time.perf_counter() - started:.1f} s)")
        _write_bench_json(args, payload)
        return 0 if payload["passed"] else 1
    if args.experiment == "cache":
        from repro.bench.cache import DEFAULT_BENCH_LEVEL, run_cache_bench

        started = time.perf_counter()
        table, payload = run_cache_bench(
            context,
            level=args.level or DEFAULT_BENCH_LEVEL,
            cache_dir=args.cache_dir,
        )
        print(table.render())
        print(f"(ran in {time.perf_counter() - started:.1f} s)")
        _write_bench_json(args, payload)
        if args.trace and context.tracer is not None:
            count = context.tracer.write_jsonl(args.trace)
            print(f"(wrote {count} trace records to {args.trace})")
        return 0 if payload["passed"] else 1
    if args.experiment == "mutate":
        from repro.bench.mutate import DEFAULT_BENCH_LEVEL, run_mutate_bench

        started = time.perf_counter()
        table, payload = run_mutate_bench(
            context,
            level=args.level or DEFAULT_BENCH_LEVEL,
            cache_dir=args.cache_dir,
        )
        print(table.render())
        print(f"(ran in {time.perf_counter() - started:.1f} s)")
        _write_bench_json(args, payload)
        if args.trace and context.tracer is not None:
            count = context.tracer.write_jsonl(args.trace)
            print(f"(wrote {count} trace records to {args.trace})")
        return 0 if payload["passed"] else 1
    if args.experiment == "shard":
        from repro.bench.shard import DEFAULT_BENCH_LEVEL, run_shard_bench
        from repro.parallel.sharded import DEFAULT_PROCESSES

        started = time.perf_counter()
        table, payload = run_shard_bench(
            context,
            level=args.level or DEFAULT_BENCH_LEVEL,
            processes=args.workers or DEFAULT_PROCESSES,
        )
        print(table.render())
        print(f"(ran in {time.perf_counter() - started:.1f} s)")
        _write_bench_json(args, payload)
        if args.trace and context.tracer is not None:
            count = context.tracer.write_jsonl(args.trace)
            print(f"(wrote {count} trace records to {args.trace})")
        return 0 if payload["passed"] else 1
    if args.experiment == "serve":
        from repro.bench.serve import (
            DEFAULT_BENCH_LEVEL,
            DEFAULT_CONCURRENT_CLIENTS,
            run_serve_bench,
        )

        started = time.perf_counter()
        table, payload = run_serve_bench(
            context,
            level=args.level or DEFAULT_BENCH_LEVEL,
            clients=args.workers or DEFAULT_CONCURRENT_CLIENTS,
        )
        print(table.render())
        print(f"(ran in {time.perf_counter() - started:.1f} s)")
        _write_bench_json(args, payload)
        return 0 if payload["passed"] else 1
    if args.experiment == "parallel":
        from repro.bench.parallel import DEFAULT_BENCH_LEVEL, run_parallel_bench

        started = time.perf_counter()
        table, payload = run_parallel_bench(
            context,
            level=args.level or DEFAULT_BENCH_LEVEL,
            workers=args.workers,
        )
        print(table.render())
        print(f"(ran in {time.perf_counter() - started:.1f} s)")
        _write_bench_json(args, payload)
        if args.trace and context.tracer is not None:
            count = context.tracer.write_jsonl(args.trace)
            print(f"(wrote {count} trace records to {args.trace})")
        return 0 if payload["signatures_match"] and payload["budget_respected"] else 1
    kwargs = {}
    if args.level:
        if args.experiment in ("fig9a", "fig9b"):
            kwargs["max_level"] = args.level
        elif args.experiment in ("table3", "fig13"):
            kwargs["levels"] = tuple(
                level for level in (3, 5, 7) if level <= args.level
            )
        elif args.experiment != "scaling":
            kwargs["level"] = args.level
    started = time.perf_counter()
    table = run_experiment(args.experiment, context, **kwargs)
    print(table.render())
    print(f"(ran in {time.perf_counter() - started:.1f} s)")
    if args.trace and context.tracer is not None:
        count = context.tracer.write_jsonl(args.trace)
        print(f"(wrote {count} trace records to {args.trace})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Exit contract: 0 = clean, 1 = diagnostics found, 2 = internal error."""
    from repro.analysis import LintOptions, normalize_select, run_lint

    try:
        select = normalize_select(args.select)
        report = run_lint(
            LintOptions(
                dataset=args.dataset,
                level=args.level,
                check_plan=not args.no_plan,
                check_repo=not args.no_repo,
                src_root=args.src_root,
                select=select,
            )
        )
    except Exception as error:  # noqa: BLE001 - the exit-code contract
        print(f"lint: internal error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import clear_cache_dir, inspect_cache_dir

    if args.action == "clear":
        removed = clear_cache_dir(args.cache_dir)
        print(f"removed {removed} cached probe(s) from {args.cache_dir}")
        return 0
    info = inspect_cache_dir(args.cache_dir)
    if args.json:
        import json

        print(json.dumps(info, indent=2))
        return 0
    if not info["exists"]:
        print(f"no probe cache at {info['path']}")
        return 0
    print(f"probe cache: {info['path']}")
    print(f"  size: {info['size_bytes']} bytes, entries: {info['entries']}")
    for vector, counts in info["vectors"].items():
        print(
            f"  vector {vector[:16]}... [{counts['relations']}]: "
            f"{counts['entries']} entries ({counts['alive']} alive)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant debugging service until interrupted.

    Ctrl-C stops the listener first (no new sessions race the drain),
    then shuts the manager down: active sessions finish, the final
    ``service_shutdown`` / ``pool_stats`` trace events are emitted, and
    the combined event log (every session the service ran) is exported
    when ``--event-log`` is set.
    """
    from repro.service import ServiceApp, ServiceServer, SessionManager

    database = _load_database(args)
    debugger = NonAnswerDebugger(
        database,
        max_joins=args.level - 1,
        mode=MatchMode(args.match),
        strategy=args.strategy,
        use_lattice=not args.direct,
        backend=args.backend,
        cache_dir=args.cache_dir,
        index_backend=args.index_backend,
    )
    manager = SessionManager(
        debugger, workers=args.workers, session_ttl=args.session_ttl
    )
    server = ServiceServer(ServiceApp(manager), host=args.host, port=args.port)
    server.start()
    print(
        f"repro service on {server.address} "
        f"(dataset={args.dataset}, backend={args.backend}, "
        f"workers={args.workers})"
    )
    print("POST /sessions to submit; Ctrl-C drains sessions and exits.")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down: draining active sessions...", file=sys.stderr)
    finally:
        server.stop()
        summary = manager.shutdown(drain=True, export_path=args.event_log)
        print(
            f"served {summary['sessions_served']} session(s), "
            f"{summary['active_sessions']} left active",
            file=sys.stderr,
        )
        if args.event_log:
            print(f"(event log exported to {args.event_log})", file=sys.stderr)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    database = _load_database(args)
    print(database.summary())
    from repro.index.inverted import InvertedIndex

    index = InvertedIndex(database)
    print(f"inverted index: {index.vocabulary_size} distinct tokens")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On Debugging Non-Answers in Keyword Search "
            "Systems' (EDBT 2015)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    debug = commands.add_parser("debug", help="explain non-answers for a query")
    debug.add_argument("query", help="keyword query, e.g. 'saffron scented candle'")
    _add_dataset_options(debug)
    debug.add_argument(
        "--strategy",
        choices=STRATEGY_CHOICES,
        default="sbh",
        help="lattice traversal strategy",
    )
    debug.add_argument(
        "--direct",
        action="store_true",
        help="skip Phase 0 and generate the pruned lattice per query",
    )
    debug.add_argument("--max-items", type=int, default=10)
    debug.add_argument(
        "--diagnose",
        action="store_true",
        help="append root-cause diagnosis (minimal dead sub-queries + fixes)",
    )
    debug.add_argument(
        "--rank",
        action="store_true",
        help="append priority-ordered explanations",
    )
    debug.add_argument(
        "--save-report", metavar="PATH", help="write the report as JSON"
    )
    debug.add_argument(
        "--free-copies",
        type=int,
        default=1,
        help="free copies per relation (>1 enables the multi-free extension)",
    )
    _add_executor_options(debug)
    _add_backend_options(debug)
    debug.set_defaults(func=_cmd_debug)

    search = commands.add_parser("search", help="classic KWS-S (answers only)")
    search.add_argument("query")
    _add_dataset_options(search)
    search.set_defaults(func=_cmd_search)

    trace = commands.add_parser(
        "trace",
        help="run a query and emit a JSON-lines probe trace",
        description=(
            "Run the debugging pipeline with the structured tracer attached: "
            "every aliveness probe becomes one JSON span (lattice level, "
            "keywords, backend, wall + simulated cost, cache hit/miss, "
            "remaining budget), budget refusals and sweep boundaries become "
            "events.  JSON-lines go to stdout (or --output); status and "
            "--summary tables go to stderr so stdout stays machine-readable."
        ),
    )
    trace.add_argument(
        "query",
        help="keyword query to trace (or 'check' to validate a trace file)",
    )
    trace.add_argument(
        "path",
        nargs="?",
        default=None,
        help="with 'check': JSON-lines trace file to validate against the "
        "schema and runtime invariants (--budget-queries sets the "
        "expected per-traversal cap)",
    )
    _add_dataset_options(trace)
    trace.add_argument(
        "--strategy",
        choices=STRATEGY_CHOICES,
        default="sbh",
        help="lattice traversal strategy",
    )
    trace.add_argument(
        "--direct",
        action="store_true",
        help="skip Phase 0 and generate the pruned lattice per query",
    )
    trace.add_argument(
        "--budget-queries",
        type=int,
        default=0,
        metavar="N",
        help="stop after N executed probes (0 = unlimited)",
    )
    trace.add_argument(
        "--budget-simulated",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="deadline in simulated (cost-model) seconds (0 = unlimited)",
    )
    trace.add_argument(
        "--budget-wall",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="deadline in measured backend seconds (0 = unlimited)",
    )
    trace.add_argument(
        "--output", metavar="PATH", help="write the JSON-lines trace here"
    )
    trace.add_argument(
        "--summary",
        action="store_true",
        help="print per-level / per-strategy aggregation tables (stderr)",
    )
    _add_executor_options(trace)
    _add_backend_options(trace)
    trace.set_defaults(func=_cmd_trace)

    bench = commands.add_parser("bench", help="regenerate a paper table/figure")
    bench.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["cache", "mutate", "parallel", "scale", "scaling", "serve", "shard"],
    )
    bench.add_argument("--scale", type=int, default=1)
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument(
        "--tuples",
        metavar="N,N,...",
        default="",
        help=(
            "comma-separated tuple targets for the 'scale' experiment "
            "(default: 10000,100000,1000000)"
        ),
    )
    bench.add_argument("--level", type=int, default=0, help="override lattice level")
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads for the 'parallel' experiment (default: 4)",
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        help=(
            "write the 'parallel'/'cache' experiment payload as JSON "
            "(BENCH_parallel.json / BENCH_cache.json)"
        ),
    )
    bench.add_argument(
        "--trace",
        metavar="PATH",
        help="record every probe and write a JSON-lines trace here",
    )
    bench.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory for the 'cache' experiment (default: temp dir)",
    )
    bench.set_defaults(func=_cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="run the debugging pipeline as a multi-tenant HTTP service",
        description=(
            "Serve non-answer debugging over HTTP: POST /sessions submits "
            "a keyword query, GET /sessions/<id>/stream follows its "
            "trace-schema event log as chunked JSON-lines until the "
            "terminal event, GET /sessions/<id>/result returns answers, "
            "non-answers, and MPANs.  Sessions run concurrently on a "
            "worker pool sharing the backend connection pool and (with "
            "--cache-dir) the persistent probe/status caches, so repeat "
            "queries skip Phase 3 entirely.  Ctrl-C drains active "
            "sessions before exiting."
        ),
    )
    _add_dataset_options(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 = ephemeral; default: 8642)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="concurrent session slots (default: 4)",
    )
    serve.add_argument(
        "--strategy",
        choices=STRATEGY_CHOICES,
        default="sbh",
        help="default traversal strategy (per-session override via POST)",
    )
    serve.add_argument(
        "--direct",
        action="store_true",
        help="skip Phase 0 and generate the pruned lattice per query",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict finished sessions after this long (default: keep)",
    )
    serve.add_argument(
        "--event-log",
        metavar="PATH",
        help="export the combined JSON-lines event log on shutdown",
    )
    _add_backend_options(serve)
    serve.set_defaults(func=_cmd_serve)

    inspect = commands.add_parser("inspect", help="summarize a dataset")
    _add_dataset_options(inspect)
    inspect.set_defaults(func=_cmd_inspect)

    lint = commands.add_parser(
        "lint",
        help="static analysis: plan/lattice/SQL diagnostics plus repo AST lint",
        description=(
            "Verify the pipeline's structural invariants without running a "
            "query: lattice nodes must be connected FK-backed trees with "
            "valid keyword slots (PLAN001-PLAN007), every rendered SQL "
            "template must pass a sqlite prepare-only dry run with "
            "identifiers correctly quoted (SQL001-SQL002), and the source "
            "tree must respect the determinism/typing rules (LINT001-LINT004), "
            "the lock discipline of the thread-shared probe-path classes "
            "(CONC001-CONC004), and the owned lifecycles of pooled/sqlite/"
            "file resources (RES001-RES003).  Exit codes: 0 = clean, 1 = "
            "diagnostics found, 2 = internal error."
        ),
    )
    lint.add_argument(
        "--dataset",
        choices=("products", "dblife"),
        default="products",
        help="dataset whose schema/lattice to lint (default: products)",
    )
    lint.add_argument(
        "--level", type=int, default=3, help="lattice levels (= max joins + 1)"
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable diagnostics"
    )
    lint.add_argument(
        "--no-plan",
        action="store_true",
        help="skip the plan/lattice/SQL layer",
    )
    lint.add_argument(
        "--no-repo",
        action="store_true",
        help="skip the repo AST layer",
    )
    lint.add_argument(
        "--select",
        metavar="FAMILIES",
        default=None,
        help="comma-separated code families to run (PLAN,SQL,LINT,CONC,RES; "
        "default: all)",
    )
    lint.add_argument(
        "--src-root",
        metavar="DIR",
        default=None,
        help="source tree for the per-file passes (default: this install)",
    )
    lint.set_defaults(func=_cmd_lint)

    cache = commands.add_parser(
        "cache",
        help="inspect or clear the persistent probe cache",
        description=(
            "Operate on a probe-cache directory (see --cache-dir on the "
            "debug/trace commands): 'stats' summarizes the sqlite file and "
            "its per-fingerprint entry counts, 'clear' drops every cached "
            "probe.  Neither needs the dataset loaded."
        ),
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        required=True,
        help="the probe-cache directory to operate on",
    )
    cache.add_argument(
        "--json", action="store_true", help="machine-readable stats output"
    )
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
