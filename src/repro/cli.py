"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands::

    repro debug "saffron scented candle" --dataset products
    repro search "widom trio" --dataset dblife       # classic KWS-S view
    repro bench fig11 --scale 1 --level 5            # regenerate a figure
    repro inspect --dataset dblife --scale 2         # dataset summary
    repro lint --dataset dblife --json               # static analysis
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.context import BenchContext
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.core.debugger import NonAnswerDebugger
from repro.datasets.dblife import DBLifeConfig, dblife_database
from repro.datasets.products import product_database
from repro.kws.discover import ClassicKWSSystem
from repro.relational.predicates import MatchMode


def _load_database(args: argparse.Namespace):
    if args.dataset == "products":
        return product_database()
    return dblife_database(DBLifeConfig(seed=args.seed, scale=args.scale))


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=("products", "dblife"),
        default="products",
        help="which built-in dataset to query (default: products)",
    )
    parser.add_argument("--scale", type=int, default=1, help="dblife scale factor")
    parser.add_argument("--seed", type=int, default=42, help="dblife RNG seed")
    parser.add_argument(
        "--level", type=int, default=3, help="lattice levels (= max joins + 1)"
    )
    parser.add_argument(
        "--match",
        choices=("token", "substring"),
        default="token",
        help="keyword matching semantics",
    )


def _cmd_debug(args: argparse.Namespace) -> int:
    database = _load_database(args)
    debugger = NonAnswerDebugger(
        database,
        max_joins=args.level - 1,
        mode=MatchMode(args.match),
        strategy=args.strategy,
        use_lattice=not args.direct,
        free_copies=args.free_copies,
    )
    started = time.perf_counter()
    report = debugger.debug(args.query)
    elapsed = time.perf_counter() - started
    print(report.render(max_items=args.max_items))
    if args.diagnose and report.non_answers():
        from repro.core.diagnosis import render_diagnoses

        print()
        print(render_diagnoses(report))
    if args.rank and report.non_answers():
        from repro.core.ranking import ExplanationRanker

        print()
        print(ExplanationRanker(top_k=args.max_items).render(report))
    if args.save_report:
        from repro.core.persistence import save_report

        save_report(report, args.save_report)
        print(f"(report saved to {args.save_report})")
    print(f"(end-to-end {elapsed * 1000:.1f} ms)")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    database = _load_database(args)
    system = ClassicKWSSystem(
        database, max_joins=args.level - 1, mode=MatchMode(args.match)
    )
    answer = system.search(args.query)
    print(f'Classic KWS-S for "{args.query}":')
    if answer.is_non_answer:
        print("  No results found!  (this is the problem the paper addresses)")
    for query in answer.answers:
        print(f"  + {query.describe()}")
    print(
        f"  ({answer.candidate_networks} candidate networks, "
        f"{answer.queries_executed} SQL queries, {answer.elapsed * 1000:.1f} ms)"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    context = BenchContext.create(scale=args.scale, seed=args.seed)
    kwargs = {}
    if args.level:
        if args.experiment in ("fig9a", "fig9b"):
            kwargs["max_level"] = args.level
        elif args.experiment in ("table3", "fig13"):
            kwargs["levels"] = tuple(
                level for level in (3, 5, 7) if level <= args.level
            )
        elif args.experiment != "scaling":
            kwargs["level"] = args.level
    started = time.perf_counter()
    table = run_experiment(args.experiment, context, **kwargs)
    print(table.render())
    print(f"(ran in {time.perf_counter() - started:.1f} s)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintOptions, run_lint

    report = run_lint(
        LintOptions(
            dataset=args.dataset,
            level=args.level,
            check_plan=not args.no_plan,
            check_repo=not args.no_repo,
        )
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    database = _load_database(args)
    print(database.summary())
    from repro.index.inverted import InvertedIndex

    index = InvertedIndex(database)
    print(f"inverted index: {index.vocabulary_size} distinct tokens")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On Debugging Non-Answers in Keyword Search "
            "Systems' (EDBT 2015)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    debug = commands.add_parser("debug", help="explain non-answers for a query")
    debug.add_argument("query", help="keyword query, e.g. 'saffron scented candle'")
    _add_dataset_options(debug)
    debug.add_argument(
        "--strategy",
        choices=("bu", "td", "buwr", "tdwr", "sbh"),
        default="sbh",
        help="lattice traversal strategy",
    )
    debug.add_argument(
        "--direct",
        action="store_true",
        help="skip Phase 0 and generate the pruned lattice per query",
    )
    debug.add_argument("--max-items", type=int, default=10)
    debug.add_argument(
        "--diagnose",
        action="store_true",
        help="append root-cause diagnosis (minimal dead sub-queries + fixes)",
    )
    debug.add_argument(
        "--rank",
        action="store_true",
        help="append priority-ordered explanations",
    )
    debug.add_argument(
        "--save-report", metavar="PATH", help="write the report as JSON"
    )
    debug.add_argument(
        "--free-copies",
        type=int,
        default=1,
        help="free copies per relation (>1 enables the multi-free extension)",
    )
    debug.set_defaults(func=_cmd_debug)

    search = commands.add_parser("search", help="classic KWS-S (answers only)")
    search.add_argument("query")
    _add_dataset_options(search)
    search.set_defaults(func=_cmd_search)

    bench = commands.add_parser("bench", help="regenerate a paper table/figure")
    bench.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["scaling"],
    )
    bench.add_argument("--scale", type=int, default=1)
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--level", type=int, default=0, help="override lattice level")
    bench.set_defaults(func=_cmd_bench)

    inspect = commands.add_parser("inspect", help="summarize a dataset")
    _add_dataset_options(inspect)
    inspect.set_defaults(func=_cmd_inspect)

    lint = commands.add_parser(
        "lint",
        help="static analysis: plan/lattice/SQL diagnostics plus repo AST lint",
        description=(
            "Verify the pipeline's structural invariants without running a "
            "query: lattice nodes must be connected FK-backed trees with "
            "valid keyword slots (PLAN001-PLAN007), every rendered SQL "
            "template must pass a sqlite prepare-only dry run with "
            "identifiers correctly quoted (SQL001-SQL002), and the source "
            "tree must respect the determinism/typing rules benchmarks rely "
            "on (LINT001-LINT003).  Exits nonzero if anything error-severity "
            "is found."
        ),
    )
    lint.add_argument(
        "--dataset",
        choices=("products", "dblife"),
        default="products",
        help="dataset whose schema/lattice to lint (default: products)",
    )
    lint.add_argument(
        "--level", type=int, default=3, help="lattice levels (= max joins + 1)"
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable diagnostics"
    )
    lint.add_argument(
        "--no-plan",
        action="store_true",
        help="skip the plan/lattice/SQL layer",
    )
    lint.add_argument(
        "--no-repo",
        action="store_true",
        help="skip the repo AST layer",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
