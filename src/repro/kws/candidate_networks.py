"""DISCOVER-style candidate network enumeration.

A candidate network (CN) for an interpretation is a join tree that

* contains the keyword-bound copy of **every** keyword ("and" semantics),
* may contain free copies (at most one ``R0`` per relation, mirroring the
  lattice's single free copy), and
* has **no free leaf** -- a free leaf could be dropped without losing any
  keyword, so the network would not be minimal.

This generator is deliberately independent of the lattice: it grows trees
outward from the first keyword-bound copy over the allowed instance
alphabet.  Property tests assert that its output equals the MTNs that
Phases 1-2 extract from the lattice, which is the paper's claim that MTNs
"correspond to candidate networks in KWS-S systems" (§2.4).
"""

from __future__ import annotations

from repro.core.binding import KeywordBinding
from repro.core.freecopies import next_free_instance
from repro.relational.jointree import JoinEdge, JoinTree, RelationInstance
from repro.relational.schema import SchemaGraph


def _grow(
    tree: JoinTree,
    schema: SchemaGraph,
    bound: frozenset[RelationInstance],
    free_copies: int,
    max_size: int,
    seen: set[JoinTree],
) -> None:
    """Depth-first enumeration of connected trees over the alphabet."""
    if tree in seen:
        return
    seen.add(tree)
    if tree.size >= max_size:
        return
    for instance in tree.sorted_instances():
        for fk in schema.edges_of(instance.relation):
            other_relation = fk.other(instance.relation)
            candidates = [
                bound_instance
                for bound_instance in bound
                if bound_instance.relation == other_relation
                and bound_instance not in tree.instances
            ]
            next_free = next_free_instance(tree, other_relation, free_copies)
            if next_free is not None:
                candidates.append(next_free)
            for candidate in candidates:
                if fk.child == instance.relation:
                    edge = JoinEdge.from_fk(fk, instance, candidate)
                else:
                    edge = JoinEdge.from_fk(fk, candidate, instance)
                _grow(
                    tree.extend(edge, candidate),
                    schema,
                    bound,
                    free_copies,
                    max_size,
                    seen,
                )


def network_violations(
    tree: JoinTree, bound: frozenset[RelationInstance]
) -> list[str]:
    """Why ``tree`` is not a minimal candidate network for ``bound``.

    Introspection hook shared by the enumeration filter below and the
    static plan linter (``repro.analysis``); an empty list means the tree
    satisfies both CN invariants (totality and minimality).
    """
    problems = []
    missing = bound - tree.instances
    if missing:
        described = ", ".join(str(instance) for instance in sorted(missing))
        problems.append(f"missing bound copies: {described}")
    extra_bound = [
        instance
        for instance in tree.sorted_instances()
        if not instance.is_free and instance not in bound
    ]
    if extra_bound:
        described = ", ".join(str(instance) for instance in extra_bound)
        problems.append(f"keyword slots outside the interpretation: {described}")
    free_leaves = [leaf for leaf in tree.leaves() if leaf not in bound]
    if free_leaves:
        described = ", ".join(str(leaf) for leaf in free_leaves)
        problems.append(f"free leaves: {described}")
    return problems


def is_candidate_network(
    tree: JoinTree, bound: frozenset[RelationInstance]
) -> bool:
    """True when ``tree`` is a minimal total join network for ``bound``."""
    return not network_violations(tree, bound)


def enumerate_candidate_networks(
    schema: SchemaGraph,
    binding: KeywordBinding,
    max_size: int,
    free_copies: int = 1,
) -> list[JoinTree]:
    """All candidate networks of one interpretation, up to ``max_size`` instances."""
    bound = binding.instances
    if not bound:
        return []
    seen: set[JoinTree] = set()
    # Every CN contains all bound copies, so growing from any one of them
    # reaches every CN; enumerate all connected trees, then filter.
    anchor = sorted(bound)[0]
    _grow(JoinTree.single(anchor), schema, frozenset(bound), free_copies,
          max_size, seen)
    networks = [tree for tree in seen if is_candidate_network(tree, bound)]
    return sorted(networks, key=lambda t: (t.size, t.describe()))
