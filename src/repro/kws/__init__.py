"""Classic keyword-search-over-structured-data (KWS-S) substrate.

An independent, DISCOVER-style implementation of the traditional pipeline:
keyword -> tuple sets -> candidate networks -> evaluate -> return answers
(silently dropping non-answers).  It serves three purposes:

* it is the baseline system whose behaviour the paper sets out to fix;
* its candidate-network generator validates the lattice pipeline (MTNs and
  CNs must coincide -- checked by property tests);
* the Return-Nothing baseline models developers re-submitting queries to it.
"""

from repro.kws.tuplesets import TupleSet, compute_tuple_sets
from repro.kws.candidate_networks import enumerate_candidate_networks
from repro.kws.discover import ClassicKWSSystem, KWSAnswer

__all__ = [
    "TupleSet",
    "compute_tuple_sets",
    "enumerate_candidate_networks",
    "ClassicKWSSystem",
    "KWSAnswer",
]
