"""Tuple sets: the per-keyword row selections of DISCOVER.

``R^k`` (the *keyword tuple set*) holds the rows of relation ``R`` matching
keyword ``k``; ``R^{}`` (the *free tuple set*) is the whole relation.  Join
networks of tuple sets (JNTS) are join trees whose vertices are tuple sets;
in the lattice formulation a keyword tuple set is a keyword-bound copy and a
free tuple set is the ``R0`` copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.inverted import InvertedIndex
from repro.relational.predicates import MatchMode


@dataclass(frozen=True)
class TupleSet:
    """Rows of one relation matching one keyword (or all rows if free)."""

    relation: str
    keyword: str | None
    row_ids: frozenset[int]

    @property
    def is_free(self) -> bool:
        return self.keyword is None

    @property
    def size(self) -> int:
        return len(self.row_ids)

    def describe(self) -> str:
        superscript = self.keyword if self.keyword is not None else ""
        return f"{self.relation}^{{{superscript}}}"


def compute_tuple_sets(
    index: InvertedIndex,
    keywords: tuple[str, ...],
    mode: MatchMode = MatchMode.TOKEN,
) -> dict[str, list[TupleSet]]:
    """Keyword tuple sets for every keyword, grouped by keyword.

    Only non-empty tuple sets are returned (DISCOVER does the same: a
    keyword that misses a relation contributes nothing there).
    """
    by_keyword: dict[str, list[TupleSet]] = {}
    for keyword in keywords:
        sets = []
        for relation in index.relations_containing(keyword, mode):
            row_ids = index.tuple_set(relation, keyword, mode)
            if row_ids:
                sets.append(TupleSet(relation, keyword, row_ids))
        by_keyword[keyword] = sets
    return by_keyword


def free_tuple_set(index: InvertedIndex, relation: str) -> TupleSet:
    table = index.database.table(relation)
    return TupleSet(relation, None, frozenset(range(len(table))))
