"""Tuple sets: the per-keyword row selections of DISCOVER.

``R^k`` (the *keyword tuple set*) holds the rows of relation ``R`` matching
keyword ``k``; ``R^{}`` (the *free tuple set*) is the whole relation.  Join
networks of tuple sets (JNTS) are join trees whose vertices are tuple sets;
in the lattice formulation a keyword tuple set is a keyword-bound copy and a
free tuple set is the ``R0`` copy.

A tuple set is either *materialized* (``row_ids`` is a frozenset, the
original form) or *lazy*: above a caller-supplied materialization cap only
the cardinality and a row-id loader are kept, and consumers stream
:meth:`TupleSet.iter_ids` instead of holding a million-row set.  This is
what lets the index backends serve 10^6-tuple snapshots without the tuple
sets themselves becoming the memory ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterator

from repro.index.base import IndexBackend
from repro.relational.predicates import MatchMode


@dataclass(frozen=True)
class TupleSet:
    """Rows of one relation matching one keyword (or all rows if free).

    ``row_ids`` is ``None`` for a lazy tuple set; then ``lazy_size`` holds
    the cardinality and ``loader`` yields the ids on demand.
    """

    relation: str
    keyword: str | None
    row_ids: frozenset[int] | None
    lazy_size: int | None = None
    loader: Callable[[], Iterator[int]] | None = None

    def __post_init__(self) -> None:
        if self.row_ids is None and (self.lazy_size is None or self.loader is None):
            raise ValueError("a lazy TupleSet needs both lazy_size and loader")

    @property
    def is_free(self) -> bool:
        return self.keyword is None

    @property
    def is_materialized(self) -> bool:
        return self.row_ids is not None

    @property
    def size(self) -> int:
        if self.row_ids is not None:
            return len(self.row_ids)
        assert self.lazy_size is not None
        return self.lazy_size

    def iter_ids(self) -> Iterator[int]:
        """Stream the row ids (no materialization for lazy sets)."""
        if self.row_ids is not None:
            return iter(self.row_ids)
        assert self.loader is not None
        return self.loader()

    def materialize(self) -> frozenset[int]:
        """The full id set; builds it from the loader for lazy sets."""
        if self.row_ids is not None:
            return self.row_ids
        return frozenset(self.iter_ids())

    def describe(self) -> str:
        superscript = self.keyword if self.keyword is not None else ""
        return f"{self.relation}^{{{superscript}}}"


def compute_tuple_sets(
    index: IndexBackend,
    keywords: tuple[str, ...],
    mode: MatchMode = MatchMode.TOKEN,
    materialization_cap: int | None = None,
) -> dict[str, list[TupleSet]]:
    """Keyword tuple sets for every keyword, grouped by keyword.

    Only non-empty tuple sets are returned (DISCOVER does the same: a
    keyword that misses a relation contributes nothing there).  With a
    ``materialization_cap``, sets above the cap stay lazy: their size
    comes from the index and their ids stream from
    ``index.iter_tuple_set``.
    """
    by_keyword: dict[str, list[TupleSet]] = {}
    for keyword in keywords:
        sets = []
        for relation in index.relations_containing(keyword, mode):
            if materialization_cap is not None:
                size = index.tuple_set_size(relation, keyword, mode)
                if size == 0:
                    continue
                if size > materialization_cap:
                    sets.append(
                        TupleSet(
                            relation,
                            keyword,
                            None,
                            lazy_size=size,
                            loader=partial(
                                index.iter_tuple_set, relation, keyword, mode
                            ),
                        )
                    )
                    continue
            row_ids = index.tuple_set(relation, keyword, mode)
            if row_ids:
                sets.append(TupleSet(relation, keyword, row_ids))
        by_keyword[keyword] = sets
    return by_keyword


def free_tuple_set(
    index: IndexBackend, relation: str, materialization_cap: int | None = None
) -> TupleSet:
    table = index.database.table(relation)
    if materialization_cap is not None and len(table) > materialization_cap:
        return TupleSet(
            relation,
            None,
            None,
            lazy_size=len(table),
            loader=partial(iter, range(len(table))),
        )
    return TupleSet(relation, None, frozenset(range(len(table))))
