"""The classic KWS-S pipeline: return answers, silently drop non-answers.

This is the system the paper's introduction criticizes: given a keyword
query it maps keywords to tuple sets, generates candidate networks, executes
each one, and returns only those producing tuples.  Non-answers vanish --
which is exactly the debugging gap :class:`repro.core.NonAnswerDebugger`
fills.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.binding import KeywordBinder, bind_tree
from repro.core.lattice import Lattice
from repro.index.inverted import InvertedIndex
from repro.index.mapper import KeywordMapper
from repro.kws.candidate_networks import enumerate_candidate_networks
from repro.relational.database import Database
from repro.relational.engine import InMemoryEngine
from repro.relational.evaluator import InstrumentedEvaluator
from repro.relational.jointree import BoundQuery
from repro.relational.predicates import MatchMode


@dataclass
class KWSAnswer:
    """What a classic KWS-S system returns for one keyword query."""

    query: str
    answers: list[BoundQuery] = field(default_factory=list)
    sample_tuples: dict[BoundQuery, list] = field(default_factory=dict)
    candidate_networks: int = 0
    queries_executed: int = 0
    elapsed: float = 0.0

    @property
    def is_non_answer(self) -> bool:
        """The dreaded "No results found!" case."""
        return not self.answers


class ClassicKWSSystem:
    """A compact DISCOVER-style keyword search engine."""

    def __init__(
        self,
        database: Database,
        max_joins: int = 2,
        mode: MatchMode = MatchMode.TOKEN,
        lattice: Lattice | None = None,
    ):
        self.database = database
        self.schema = database.schema
        self.mode = mode
        self.max_joins = max_joins
        self.index = InvertedIndex(database)
        self.mapper = KeywordMapper(self.index, mode=mode)
        # The binder is only used for its keyword -> slot assignment; CN
        # generation itself is lattice-free.
        self._binder = KeywordBinder(
            lattice=lattice, schema=self.schema, max_joins=max_joins
        )
        self.engine = InMemoryEngine(database, tuple_set_provider=self.index.provider)

    def search(self, query: str, sample_limit: int = 3) -> KWSAnswer:
        """Run the classic pipeline; non-answers are simply not returned."""
        started = time.perf_counter()
        result = KWSAnswer(query)
        evaluator = InstrumentedEvaluator(self.engine, use_cache=False)
        mapping = self.mapper.map_query(query)
        if not mapping.complete or not mapping.keywords:
            result.elapsed = time.perf_counter() - started
            return result
        for interpretation in mapping.interpretations:
            binding = self._binder.bind(interpretation)
            networks = enumerate_candidate_networks(
                self.schema, binding, self.max_joins + 1
            )
            result.candidate_networks += len(networks)
            for tree in networks:
                bound = bind_tree(tree, binding, self.mode)
                if evaluator.is_alive(bound):
                    result.answers.append(bound)
                    if sample_limit:
                        result.sample_tuples[bound] = self.engine.evaluate(
                            bound, limit=sample_limit
                        )
        result.queries_executed = evaluator.stats.queries_executed
        result.elapsed = time.perf_counter() - started
        return result
