"""SQL text generation for join trees and bound queries.

Each lattice node carries an *uninstantiated* SQL template (join conditions
only); binding keywords at run time instantiates the WHERE clause.  The
generated SQL is real SQL: :mod:`repro.relational.sqlite_backend` executes it
verbatim against a stdlib ``sqlite3`` database to cross-check the in-memory
engine.
"""

from __future__ import annotations

from repro.relational.identifiers import quote_identifier
from repro.relational.jointree import BoundQuery, JoinTree
from repro.relational.predicates import KeywordPredicate
from repro.relational.schema import SchemaGraph

KEYWORD_PLACEHOLDER = "?kw"


def _from_clause(tree: JoinTree) -> str:
    parts = [
        f"{quote_identifier(instance.relation)} AS {quote_identifier(instance.alias)}"
        for instance in tree.sorted_instances()
    ]
    return ", ".join(parts)


def _join_conditions(tree: JoinTree) -> list[str]:
    conditions = []
    for edge in sorted(tree.edges, key=lambda e: (e.a, e.a_column, e.b, e.b_column)):
        conditions.append(
            f"{quote_identifier(edge.a.alias)}.{quote_identifier(edge.a_column)}"
            f" = "
            f"{quote_identifier(edge.b.alias)}.{quote_identifier(edge.b_column)}"
        )
    return conditions


def render_template(tree: JoinTree, schema: SchemaGraph) -> str:
    """The offline (Phase 0) SQL template of a lattice node.

    Keyword predicates are represented by a ``?kw`` placeholder per non-free
    instance; Phase 1 replaces them with concrete predicates.
    """
    conditions = _join_conditions(tree)
    for instance in tree.sorted_instances():
        if instance.is_free:
            continue
        relation = schema.relation(instance.relation)
        columns = tuple(a.name for a in relation.text_attributes)
        if not columns:
            continue
        alias = quote_identifier(instance.alias)
        likes = " OR ".join(
            f"LOWER({alias}.{quote_identifier(column)}) "
            f"LIKE '%{KEYWORD_PLACEHOLDER}%'"
            for column in columns
        )
        conditions.append(f"({likes})")
    where = " AND ".join(conditions) if conditions else "1 = 1"
    return f"SELECT * FROM {_from_clause(tree)} WHERE {where}"


def render_sql(
    query: BoundQuery,
    schema: SchemaGraph,
    select: str = "*",
    limit: int | None = None,
) -> str:
    """Executable SQL for a bound query.

    ``select`` and ``limit`` let callers render the existence-check form the
    traversals actually issue (``SELECT 1 ... LIMIT 1``).
    """
    conditions = _join_conditions(query.tree)
    for instance in query.tree.sorted_instances():
        keyword = query.keyword_of(instance)
        if keyword is None:
            continue
        relation = schema.relation(instance.relation)
        columns = tuple(a.name for a in relation.text_attributes)
        predicate = KeywordPredicate(keyword, query.mode)
        conditions.append(predicate.sql_condition(instance.alias, columns))
    where = " AND ".join(conditions) if conditions else "1 = 1"
    sql = f"SELECT {select} FROM {_from_clause(query.tree)} WHERE {where}"
    if limit is not None:
        sql += f" LIMIT {limit}"
    return sql


def render_existence_check(query: BoundQuery, schema: SchemaGraph) -> str:
    """The aliveness probe: ``SELECT 1 ... LIMIT 1``."""
    return render_sql(query, schema, select="1", limit=1)


def render_exists_probe(query: BoundQuery, schema: SchemaGraph) -> str:
    """The aliveness probe as a single boolean: ``SELECT EXISTS (...)``.

    ``EXISTS`` short-circuits on the first joined row inside the engine,
    so one scalar crosses the connection instead of a fetched row -- the
    form the sqlite backend executes.
    """
    return f"SELECT EXISTS ({render_sql(query, schema, select='1')})"


def render_ddl(schema: SchemaGraph) -> list[str]:
    """CREATE TABLE statements for the schema (used by the sqlite backend)."""
    statements = []
    for relation in schema.iter_relations():
        columns = ", ".join(
            f"{quote_identifier(attribute.name)} {attribute.type.sql_name}"
            for attribute in relation.attributes
        )
        statements.append(
            f"CREATE TABLE {quote_identifier(relation.name)} ({columns})"
        )
    return statements
