"""Relations, attributes, and the key-foreign-key schema graph.

The schema graph is the single offline input to lattice generation
(Phase 0 of the paper): its vertices are relations and its edges are
key-foreign-key associations.  Multiple edges may connect the same pair of
relations (e.g. a relationship table with two foreign keys into ``Person``),
so edges carry the join columns and are identified by name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


class SchemaError(ValueError):
    """Raised when a schema is internally inconsistent."""


class AttributeType(enum.Enum):
    """Column types supported by the substrate.

    Only two behaviours matter for the paper's system: whether a column can
    carry keywords (``TEXT``) and whether it can participate in joins (any
    type; joins in practice use ``INTEGER`` keys).
    """

    INTEGER = "integer"
    TEXT = "text"
    REAL = "real"

    @property
    def sql_name(self) -> str:
        """The SQLite/ANSI type name used when generating DDL."""
        return {"integer": "INTEGER", "text": "TEXT", "real": "REAL"}[self.value]


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    ``searchable`` marks text columns that the inverted index covers and that
    keyword predicates apply to.  It defaults to ``True`` for TEXT columns.
    """

    name: str
    type: AttributeType = AttributeType.TEXT
    searchable: bool | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.searchable is None:
            object.__setattr__(self, "searchable", self.type is AttributeType.TEXT)
        if self.searchable and self.type is not AttributeType.TEXT:
            raise SchemaError(f"non-text attribute {self.name!r} cannot be searchable")


@dataclass(frozen=True)
class Relation:
    """A relation (table) declaration: a name plus an ordered attribute list."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid relation name: {self.name!r}")
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.name in seen:
                raise SchemaError(
                    f"relation {self.name!r} declares attribute "
                    f"{attribute.name!r} twice"
                )
            seen.add(attribute.name)

    @staticmethod
    def build(name: str, columns: Mapping[str, AttributeType | str]) -> "Relation":
        """Convenience constructor from a ``{column: type}`` mapping.

        String type values (``"integer"``, ``"text"``, ``"real"``) are
        accepted as well as :class:`AttributeType` members.
        """
        attributes = []
        for column, column_type in columns.items():
            if isinstance(column_type, str):
                column_type = AttributeType(column_type)
            attributes.append(Attribute(column, column_type))
        return Relation(name, tuple(attributes))

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    @property
    def text_attributes(self) -> tuple[Attribute, ...]:
        """Attributes that keyword predicates apply to."""
        return tuple(a for a in self.attributes if a.searchable)

    def attribute(self, name: str) -> Attribute:
        for candidate in self.attributes:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def index_of(self, name: str) -> int:
        """Positional index of ``name`` within the attribute tuple."""
        for position, candidate in enumerate(self.attributes):
            if candidate.name == name:
                return position
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A directed key-foreign-key association ``child.column -> parent.column``.

    The direction matters for referential integrity, but the schema *graph*
    treats the edge as undirected: a join can be traversed either way while
    growing a join tree.  ``name`` identifies the edge uniquely so that two
    different associations between the same pair of relations (e.g.
    ``Coauthor.person1 -> Person.id`` and ``Coauthor.person2 -> Person.id``)
    stay distinguishable in canonical labels.
    """

    name: str
    child: str
    child_column: str
    parent: str
    parent_column: str

    def endpoints(self) -> tuple[str, str]:
        return (self.child, self.parent)

    def other(self, relation: str) -> str:
        """The relation at the other end of the edge from ``relation``."""
        if relation == self.child:
            return self.parent
        if relation == self.parent:
            return self.child
        raise SchemaError(f"edge {self.name!r} does not touch relation {relation!r}")

    def column_of(self, relation: str) -> str:
        """The join column contributed by ``relation``."""
        if relation == self.child:
            return self.child_column
        if relation == self.parent:
            return self.parent_column
        raise SchemaError(f"edge {self.name!r} does not touch relation {relation!r}")

    def touches(self, relation: str) -> bool:
        return relation in (self.child, self.parent)


@dataclass
class SchemaGraph:
    """The database schema as a graph of relations joined by foreign keys.

    This object is immutable in spirit: build it once with :meth:`add_relation`
    and :meth:`add_foreign_key` (or :meth:`build`), then :meth:`freeze` it
    before handing it to lattice generation.  ``freeze`` validates referential
    consistency and assigns the stable integer ids used by canonical labeling.
    """

    relations: dict[str, Relation] = field(default_factory=dict)
    foreign_keys: dict[str, ForeignKey] = field(default_factory=dict)
    _frozen: bool = field(default=False, repr=False)
    _relation_ids: dict[str, int] = field(default_factory=dict, repr=False)
    _edge_ids: dict[str, int] = field(default_factory=dict, repr=False)
    _adjacency: dict[str, tuple[ForeignKey, ...]] = field(
        default_factory=dict, repr=False
    )

    # ---------------------------------------------------------------- build
    def add_relation(self, relation: Relation) -> None:
        self._ensure_mutable()
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        self._ensure_mutable()
        if foreign_key.name in self.foreign_keys:
            raise SchemaError(f"duplicate foreign key {foreign_key.name!r}")
        self.foreign_keys[foreign_key.name] = foreign_key

    @staticmethod
    def build(
        relations: Iterable[Relation], foreign_keys: Iterable[ForeignKey]
    ) -> "SchemaGraph":
        """Construct and freeze a schema graph in one call."""
        graph = SchemaGraph()
        for relation in relations:
            graph.add_relation(relation)
        for foreign_key in foreign_keys:
            graph.add_foreign_key(foreign_key)
        graph.freeze()
        return graph

    def freeze(self) -> "SchemaGraph":
        """Validate the schema and make it usable by the rest of the system."""
        if self._frozen:
            return self
        for foreign_key in self.foreign_keys.values():
            self._validate_edge(foreign_key)
        # Stable ids: relations sorted by name, then edges sorted by name.
        # Canonical labels (Algorithm 2) depend on these ids, so the ordering
        # must be deterministic across runs.
        for index, name in enumerate(sorted(self.relations)):
            self._relation_ids[name] = index
        for index, name in enumerate(sorted(self.foreign_keys)):
            self._edge_ids[name] = index
        adjacency: dict[str, list[ForeignKey]] = {name: [] for name in self.relations}
        for foreign_key in self.foreign_keys.values():
            adjacency[foreign_key.child].append(foreign_key)
            if foreign_key.parent != foreign_key.child:
                adjacency[foreign_key.parent].append(foreign_key)
        self._adjacency = {
            name: tuple(sorted(edges, key=lambda e: e.name))
            for name, edges in adjacency.items()
        }
        self._frozen = True
        return self

    # ---------------------------------------------------------------- query
    @property
    def frozen(self) -> bool:
        return self._frozen

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def foreign_key(self, name: str) -> ForeignKey:
        try:
            return self.foreign_keys[name]
        except KeyError:
            raise SchemaError(f"unknown foreign key {name!r}") from None

    def edges_of(self, relation: str) -> tuple[ForeignKey, ...]:
        """All schema edges incident to ``relation`` (deterministic order)."""
        self._ensure_frozen()
        if relation not in self._adjacency:
            raise SchemaError(f"unknown relation {relation!r}")
        return self._adjacency[relation]

    def relation_id(self, name: str) -> int:
        """Stable integer id of a relation, used in canonical labels."""
        self._ensure_frozen()
        return self._relation_ids[name]

    def edge_id(self, name: str) -> int:
        """Stable integer id of a schema edge, used in canonical labels."""
        self._ensure_frozen()
        return self._edge_ids[name]

    def column_type(self, relation: str, column: str) -> AttributeType:
        """Declared type of ``relation.column`` (introspection hook).

        Raises :class:`SchemaError` for unknown relations or columns, which
        the static plan linter maps to a dangling-edge diagnostic.
        """
        return self.relation(relation).attribute(column).type

    def searchable_relations(self) -> tuple[str, ...]:
        """Names of relations with at least one searchable text attribute."""
        return tuple(
            name
            for name in sorted(self.relations)
            if self.relations[name].text_attributes
        )

    def iter_relations(self) -> Iterator[Relation]:
        for name in sorted(self.relations):
            yield self.relations[name]

    def connected(self) -> bool:
        """True if every relation is reachable from every other via FK edges."""
        self._ensure_frozen()
        if not self.relations:
            return True
        start = next(iter(sorted(self.relations)))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for edge in self.edges_of(current):
                for neighbour in edge.endpoints():
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
        return len(seen) == len(self.relations)

    # ------------------------------------------------------------- internal
    def _validate_edge(self, foreign_key: ForeignKey) -> None:
        for relation_name, column in (
            (foreign_key.child, foreign_key.child_column),
            (foreign_key.parent, foreign_key.parent_column),
        ):
            relation = self.relation(relation_name)
            attribute = relation.attribute(column)
            if attribute.type is AttributeType.TEXT and attribute.searchable:
                raise SchemaError(
                    f"foreign key {foreign_key.name!r} joins on searchable text "
                    f"column {relation_name}.{column}; use a key column"
                )

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise SchemaError("schema graph is frozen")

    def _ensure_frozen(self) -> None:
        if not self._frozen:
            raise SchemaError("schema graph must be frozen first; call freeze()")


def star_schema(
    center: Relation,
    points: Sequence[Relation],
    link_tables: Sequence[tuple[str, str, str]],
) -> SchemaGraph:
    """Helper for building star-shaped schemas in tests.

    ``link_tables`` is a sequence of ``(link_name, left_relation,
    right_relation)`` triples; each produces a two-column link relation with
    foreign keys into both endpoints' ``id`` columns.
    """
    relations = [center, *points]
    foreign_keys: list[ForeignKey] = []
    for link_name, left, right in link_tables:
        link = Relation(
            link_name,
            (
                Attribute("id", AttributeType.INTEGER),
                Attribute(f"{left.lower()}_id", AttributeType.INTEGER),
                Attribute(f"{right.lower()}_id", AttributeType.INTEGER),
            ),
        )
        relations.append(link)
        foreign_keys.append(
            ForeignKey(
                f"{link_name}_{left.lower()}",
                link_name,
                f"{left.lower()}_id",
                left,
                "id",
            )
        )
        foreign_keys.append(
            ForeignKey(
                f"{link_name}_{right.lower()}",
                link_name,
                f"{right.lower()}_id",
                right,
                "id",
            )
        )
    return SchemaGraph.build(relations, foreign_keys)
