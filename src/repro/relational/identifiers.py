"""SQL identifier quoting shared by every SQL-rendering site.

Relations or columns named with reserved words (``order``, ``group``,
``index``, ...) are legal schema names but must be double-quoted to
survive the sqlite backend.  Quoting is applied *only when needed* so that
the common case renders the same readable SQL as before; the static
analyzer's ``SQL001`` pass verifies no rendering site forgets to route
identifiers through :func:`quote_identifier`.
"""

from __future__ import annotations

import re

#: SQLite's reserved keywords (https://sqlite.org/lang_keywords.html).
#: A superset is harmless -- quoting a non-reserved identifier is always
#: valid SQL -- so the list errs on the side of inclusion.
RESERVED_WORDS: frozenset[str] = frozenset(
    """
    ABORT ACTION ADD AFTER ALL ALTER ALWAYS ANALYZE AND AS ASC ATTACH
    AUTOINCREMENT BEFORE BEGIN BETWEEN BY CASCADE CASE CAST CHECK COLLATE
    COLUMN COMMIT CONFLICT CONSTRAINT CREATE CROSS CURRENT CURRENT_DATE
    CURRENT_TIME CURRENT_TIMESTAMP DATABASE DEFAULT DEFERRABLE DEFERRED
    DELETE DESC DETACH DISTINCT DO DROP EACH ELSE END ESCAPE EXCEPT
    EXCLUDE EXCLUSIVE EXISTS EXPLAIN FAIL FILTER FIRST FOLLOWING FOR
    FOREIGN FROM FULL GENERATED GLOB GROUP GROUPS HAVING IF IGNORE
    IMMEDIATE IN INDEX INDEXED INITIALLY INNER INSERT INSTEAD INTERSECT
    INTO IS ISNULL JOIN KEY LAST LEFT LIKE LIMIT MATCH MATERIALIZED
    NATURAL NO NOT NOTHING NOTNULL NULL NULLS OF OFFSET ON OR ORDER
    OTHERS OUTER OVER PARTITION PLAN PRAGMA PRECEDING PRIMARY QUERY
    RAISE RANGE RECURSIVE REFERENCES REGEXP REINDEX RELEASE RENAME
    REPLACE RESTRICT RETURNING RIGHT ROLLBACK ROW ROWS SAVEPOINT SELECT
    SET TABLE TEMP TEMPORARY THEN TIES TO TRANSACTION TRIGGER UNBOUNDED
    UNION UNIQUE UPDATE USING VACUUM VALUES VIEW VIRTUAL WHEN WHERE
    WINDOW WITH WITHOUT
    """.split()
)

_PLAIN_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def is_reserved(name: str) -> bool:
    """True if ``name`` collides with a SQL keyword (case-insensitive)."""
    return name.upper() in RESERVED_WORDS


def needs_quoting(name: str) -> bool:
    """True if ``name`` cannot appear as a bare SQL identifier."""
    return is_reserved(name) or not _PLAIN_IDENTIFIER.match(name)


def quote_identifier(name: str) -> str:
    """``name`` as a safe SQL identifier, double-quoted only when needed."""
    if needs_quoting(name):
        return '"' + name.replace('"', '""') + '"'
    return name
