"""Relational substrate: schema graph, in-memory tables, and join execution.

This package is the stand-in for the PostgreSQL instance used in the paper's
evaluation.  It provides:

* :mod:`repro.relational.schema` -- relations, attributes, and the
  key-foreign-key **schema graph** that drives lattice generation.
* :mod:`repro.relational.table` / :mod:`repro.relational.database` -- typed
  in-memory storage with hash indexes on join columns.
* :mod:`repro.relational.jointree` -- the join-tree query representation
  shared by the lattice and the executors.
* :mod:`repro.relational.engine` -- acyclic join evaluation with
  Yannakakis-style semi-join emptiness checks.
* :mod:`repro.relational.sql` -- SQL text generation for join trees.
* :mod:`repro.relational.sqlite_backend` -- executes the generated SQL on a
  stdlib ``sqlite3`` database behind a bounded connection pool, for
  cross-checking the in-memory engine.
* :mod:`repro.relational.evaluator` -- the instrumented evaluation facade
  (query counter, timings, two-tier probe cache) that every traversal
  strategy talks to.

The pluggable backend protocol and registry live in :mod:`repro.backends`;
the persistent L2 probe cache lives in :mod:`repro.cache`.
"""

from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)
from repro.relational.table import Table
from repro.relational.database import Database
from repro.relational.jointree import JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import KeywordPredicate, MatchMode
from repro.relational.engine import InMemoryEngine
from repro.relational.sql import render_sql, render_template
from repro.relational.sqlite_backend import SqliteEngine
from repro.relational.evaluator import (
    AlivenessBackend,
    EvaluationStats,
    InstrumentedEvaluator,
    ProbeStore,
)

__all__ = [
    "Attribute",
    "AttributeType",
    "ForeignKey",
    "Relation",
    "SchemaGraph",
    "Table",
    "Database",
    "JoinEdge",
    "JoinTree",
    "RelationInstance",
    "KeywordPredicate",
    "MatchMode",
    "InMemoryEngine",
    "render_sql",
    "render_template",
    "SqliteEngine",
    "AlivenessBackend",
    "ProbeStore",
    "EvaluationStats",
    "InstrumentedEvaluator",
]
