"""Execute generated SQL on a stdlib ``sqlite3`` database.

This backend exists to demonstrate that the system's queries are ordinary
SQL (the paper ran them on PostgreSQL via JDBC) and to cross-check the
in-memory engine: property tests assert both agree on aliveness for random
trees and databases.
"""

from __future__ import annotations

import sqlite3
from typing import Any

from repro.relational.database import Database
from repro.relational.identifiers import quote_identifier
from repro.relational.jointree import BoundQuery
from repro.relational.predicates import MatchMode, cell_matches
from repro.relational.sql import render_ddl, render_existence_check, render_sql


def _token_match(keyword: str, text: Any) -> int:
    """SQL function backing token-mode predicates (`TOKEN_MATCH(kw, col)`)."""
    if text is None or not isinstance(text, str):
        return 0
    return 1 if cell_matches(keyword, text, MatchMode.TOKEN) else 0


class SqliteEngine:
    """Mirror of a :class:`Database` inside an in-process sqlite3 instance."""

    def __init__(self, database: Database):
        self.database = database
        self.schema = database.schema
        self.connection = sqlite3.connect(":memory:")
        self.connection.create_function("TOKEN_MATCH", 2, _token_match)
        self._load()

    def _load(self) -> None:
        cursor = self.connection.cursor()
        for statement in render_ddl(self.schema):
            cursor.execute(statement)
        for table in self.database.iter_tables():
            if not len(table):
                continue
            placeholders = ", ".join("?" for _ in table.relation.attributes)
            cursor.executemany(
                f"INSERT INTO {quote_identifier(table.relation.name)} "
                f"VALUES ({placeholders})",
                list(table),
            )
        self.connection.commit()

    # ------------------------------------------------------------ interface
    def is_alive(self, query: BoundQuery) -> bool:
        """Run the existence-check SQL and report whether a row came back."""
        sql = render_existence_check(query, self.schema)
        cursor = self.connection.execute(sql)
        return cursor.fetchone() is not None

    def count(self, query: BoundQuery, limit: int | None = None) -> int:
        inner = render_sql(query, self.schema, select="1", limit=limit)
        cursor = self.connection.execute(f"SELECT COUNT(*) FROM ({inner})")
        return int(cursor.fetchone()[0])

    def fetch(self, query: BoundQuery, limit: int | None = 100) -> list[tuple]:
        sql = render_sql(query, self.schema, limit=limit)
        return list(self.connection.execute(sql))

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
