"""Execute generated SQL on a stdlib ``sqlite3`` database.

This backend exists to demonstrate that the system's queries are ordinary
SQL (the paper ran them on PostgreSQL via JDBC) and to cross-check the
in-memory engine: property tests assert both agree on aliveness for random
trees and databases.

``sqlite3`` connections must not be used by two threads at once, so a
naive single connection crashes the moment a
:class:`~repro.parallel.ParallelProbeExecutor` fans probes out.  The
engine mirrors the database into a named shared-cache in-memory sqlite
instance and serves every read path (:meth:`is_alive`, :meth:`count`,
:meth:`fetch`) through a bounded
:class:`~repro.backends.pool.ConnectionPool`: each probe checks a
connection out, uses it exclusively, and checks it back in, so at most
``pool_size`` connections ever exist no matter how many worker threads
probe concurrently -- the discipline a real DBMS backend needs, not just
an sqlite workaround.  One *anchor* connection (created at load time,
never pooled) keeps the shared-cache database alive and serves
single-threaded raw access via :attr:`connection`.
"""

from __future__ import annotations

import itertools
import sqlite3
from typing import Any

from repro.backends.pool import DEFAULT_POOL_SIZE, ConnectionPool, PoolStats
from repro.relational.database import Database
from repro.relational.identifiers import quote_identifier
from repro.relational.jointree import BoundQuery
from repro.relational.predicates import MatchMode, cell_matches
from repro.relational.sql import render_ddl, render_exists_probe, render_sql

#: Distinguishes the shared-cache memory databases of engines living in
#: the same process (the URI name is process-global in sqlite).
_ENGINE_IDS = itertools.count()


def _token_match(keyword: str, text: Any) -> int:
    """SQL function backing token-mode predicates (`TOKEN_MATCH(kw, col)`)."""
    if text is None or not isinstance(text, str):
        return 0
    return 1 if cell_matches(keyword, text, MatchMode.TOKEN) else 0


def _substring_match(keyword: str, text: Any) -> int:
    """SQL function backing substring predicates (`SUBSTRING_MATCH(kw, col)`).

    Delegates to the same :func:`cell_matches` the in-memory engine uses
    so both backends casefold identically; sqlite's own ``LOWER()`` is
    ASCII-only and would diverge on keywords like "straße".
    """
    if text is None or not isinstance(text, str):
        return 0
    return 1 if cell_matches(keyword, text, MatchMode.SUBSTRING) else 0


class SqliteEngine:
    """Mirror of a :class:`Database` inside an in-process sqlite3 instance."""

    def __init__(
        self,
        database: Database,
        pool_size: int = DEFAULT_POOL_SIZE,
        recycle_after: float | None = None,
    ):
        self.database = database
        self.schema = database.schema
        self.pool_size = pool_size
        self._uri = (
            f"file:repro-sqlite-{next(_ENGINE_IDS)}?mode=memory&cache=shared"
        )
        self._closed = False
        # The anchor connection keeps the shared-cache database alive (the
        # data dies with the last open connection) and is what loads it.
        self._anchor = self._connect()
        self._load(self._anchor)
        self._pool: ConnectionPool[sqlite3.Connection] = ConnectionPool(
            self._connect,
            max_size=pool_size,
            closer=lambda connection: connection.close(),
            recycle_after=recycle_after,
        )

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False because the pool hands one connection to
        # one thread at a time but not always the *same* thread, and
        # close() reaps every connection from a single thread.
        connection = sqlite3.connect(
            self._uri, uri=True, check_same_thread=False
        )
        connection.create_function("TOKEN_MATCH", 2, _token_match)
        connection.create_function("SUBSTRING_MATCH", 2, _substring_match)
        return connection

    @property
    def connection(self) -> sqlite3.Connection:
        """The anchor connection, for single-threaded raw SQL access."""
        if self._closed:
            raise sqlite3.ProgrammingError("Cannot operate on a closed engine.")
        return self._anchor

    @property
    def connection_count(self) -> int:
        """Connections alive: the anchor plus everything the pool created."""
        stats = self._pool.stats()
        return 1 + stats.in_use + stats.idle

    def pool_stats(self) -> PoolStats:
        """Counters of the probe connection pool (excludes the anchor)."""
        return self._pool.stats()

    def _load(self, connection: sqlite3.Connection) -> None:
        # Statements go through the connection's own execute/executemany
        # (each creates and drops its cursor) so no bare cursor can outlive
        # a failed load (resource lint RES002).
        for statement in render_ddl(self.schema):
            connection.execute(statement)
        for table in self.database.iter_tables():
            if not len(table):
                continue
            placeholders = ", ".join("?" for _ in table.relation.attributes)
            connection.executemany(
                f"INSERT INTO {quote_identifier(table.relation.name)} "
                f"VALUES ({placeholders})",
                list(table),
            )
        connection.commit()

    # ------------------------------------------------------------ interface
    def is_alive(self, query: BoundQuery) -> bool:
        """Run the probe as one ``SELECT EXISTS (...)`` scalar.

        The engine short-circuits the inner query on its first row and a
        single 0/1 crosses the connection -- no row fetch, no LIMIT.
        """
        sql = render_exists_probe(query, self.schema)
        with self._pool.connection() as connection:
            cursor = connection.execute(sql)
            return bool(cursor.fetchone()[0])

    def count(self, query: BoundQuery, limit: int | None = None) -> int:
        inner = render_sql(query, self.schema, select="1", limit=limit)
        with self._pool.connection() as connection:
            cursor = connection.execute(f"SELECT COUNT(*) FROM ({inner})")
            return int(cursor.fetchone()[0])

    def fetch(
        self, query: BoundQuery, limit: int | None = 100
    ) -> list[tuple[Any, ...]]:
        sql = render_sql(query, self.schema, limit=limit)
        with self._pool.connection() as connection:
            return list(connection.execute(sql))

    def close(self) -> None:
        """Close the pool and the anchor (drops the shared memory DB)."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._anchor.close()

    def __enter__(self) -> "SqliteEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
