"""Execute generated SQL on a stdlib ``sqlite3`` database.

This backend exists to demonstrate that the system's queries are ordinary
SQL (the paper ran them on PostgreSQL via JDBC) and to cross-check the
in-memory engine: property tests assert both agree on aliveness for random
trees and databases.

``sqlite3`` connections must not cross threads, so a naive single
connection crashes the moment a :class:`~repro.parallel.ParallelProbeExecutor`
fans probes out.  The engine therefore mirrors the database into a named
shared-cache in-memory sqlite instance and checks out one connection per
thread on demand; all connections see the same loaded data, and every
read path (:meth:`is_alive`, :meth:`count`, :meth:`fetch`) goes through
the calling thread's own connection.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from typing import Any

from repro.relational.database import Database
from repro.relational.identifiers import quote_identifier
from repro.relational.jointree import BoundQuery
from repro.relational.predicates import MatchMode, cell_matches
from repro.relational.sql import render_ddl, render_existence_check, render_sql

#: Distinguishes the shared-cache memory databases of engines living in
#: the same process (the URI name is process-global in sqlite).
_ENGINE_IDS = itertools.count()


def _token_match(keyword: str, text: Any) -> int:
    """SQL function backing token-mode predicates (`TOKEN_MATCH(kw, col)`)."""
    if text is None or not isinstance(text, str):
        return 0
    return 1 if cell_matches(keyword, text, MatchMode.TOKEN) else 0


class SqliteEngine:
    """Mirror of a :class:`Database` inside an in-process sqlite3 instance."""

    def __init__(self, database: Database):
        self.database = database
        self.schema = database.schema
        self._uri = (
            f"file:repro-sqlite-{next(_ENGINE_IDS)}?mode=memory&cache=shared"
        )
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._lock = threading.Lock()
        self._closed = False
        # The creating thread's connection anchors the shared-cache
        # database: as long as one connection stays open the data lives.
        self._load(self.connection)

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False so close() can reap every connection
        # from one thread; each connection is otherwise only *used* by
        # the thread that checked it out.
        connection = sqlite3.connect(
            self._uri, uri=True, check_same_thread=False
        )
        connection.create_function("TOKEN_MATCH", 2, _token_match)
        with self._lock:
            self._connections.append(connection)
        return connection

    @property
    def connection(self) -> sqlite3.Connection:
        """The calling thread's own connection (created on first use)."""
        if self._closed:
            raise sqlite3.ProgrammingError("Cannot operate on a closed engine.")
        connection: sqlite3.Connection | None = getattr(
            self._local, "connection", None
        )
        if connection is None:
            connection = self._connect()
            self._local.connection = connection
        return connection

    @property
    def connection_count(self) -> int:
        """Connections checked out so far (one per thread that probed)."""
        with self._lock:
            return len(self._connections)

    def _load(self, connection: sqlite3.Connection) -> None:
        cursor = connection.cursor()
        for statement in render_ddl(self.schema):
            cursor.execute(statement)
        for table in self.database.iter_tables():
            if not len(table):
                continue
            placeholders = ", ".join("?" for _ in table.relation.attributes)
            cursor.executemany(
                f"INSERT INTO {quote_identifier(table.relation.name)} "
                f"VALUES ({placeholders})",
                list(table),
            )
        connection.commit()

    # ------------------------------------------------------------ interface
    def is_alive(self, query: BoundQuery) -> bool:
        """Run the existence-check SQL and report whether a row came back."""
        sql = render_existence_check(query, self.schema)
        cursor = self.connection.execute(sql)
        return cursor.fetchone() is not None

    def count(self, query: BoundQuery, limit: int | None = None) -> int:
        inner = render_sql(query, self.schema, select="1", limit=limit)
        cursor = self.connection.execute(f"SELECT COUNT(*) FROM ({inner})")
        return int(cursor.fetchone()[0])

    def fetch(self, query: BoundQuery, limit: int | None = 100) -> list[tuple]:
        sql = render_sql(query, self.schema, limit=limit)
        return list(self.connection.execute(sql))

    def close(self) -> None:
        """Close every checked-out connection (drops the shared memory DB)."""
        self._closed = True
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        self._local = threading.local()

    def __enter__(self) -> "SqliteEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
