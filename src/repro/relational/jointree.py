"""Join trees: the query representation shared by the lattice and executors.

A *join tree* is an unordered tree whose vertices are **relation instances**
(a relation name plus a copy index, the paper's conceptual copies
``R0 .. R(m+1)``) and whose edges are key-foreign-key joins from the schema
graph.  Candidate networks, their sub-networks, and every lattice node are
join trees.  A join tree plus a keyword binding is a :class:`BoundQuery`,
i.e. an executable SQL query of the form::

    SELECT * FROM R1, S2, ...
    WHERE R1.b = S2.c AND ...           -- join edges
      AND (R1.a LIKE '%k1%' OR ...)     -- keyword predicates on bound copies
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import total_ordering
from typing import Iterator, Mapping

from repro.relational.predicates import MatchMode
from repro.relational.schema import ForeignKey, SchemaGraph


class JoinTreeError(ValueError):
    """Raised when a join tree is malformed (disconnected, cyclic, ...)."""


@total_ordering
@dataclass(frozen=True)
class RelationInstance:
    """One occurrence of a relation in a query: ``Person[2]``.

    Copy index 0 is the *free* copy (the empty keyword binds to it); copies
    ``1 .. m+1`` can carry keyword bindings.  Copies are conceptual symbols,
    not physical replicas -- every instance reads the same underlying table.

    The multi-free-copy extension (``repro.core.freecopies``, beyond the
    paper) adds further free instances: ``free=True`` with ``copy`` serving
    as the free *rank*.  ``RelationInstance(r, 0)`` is free by default, so
    the paper's single-``R0`` configuration needs no flag anywhere.
    """

    relation: str
    copy: int
    free: bool = None  # type: ignore[assignment]  # derived in __post_init__

    def __post_init__(self) -> None:
        if self.copy < 0:
            raise JoinTreeError(f"negative copy index: {self.copy}")
        if self.free is None:
            object.__setattr__(self, "free", self.copy == 0)
        if self.copy == 0 and not self.free:
            raise JoinTreeError("copy 0 is reserved for the free instance")

    @property
    def is_free(self) -> bool:
        return self.free

    @property
    def alias(self) -> str:
        """SQL alias for this instance (``person_2``, free: ``person_f1``)."""
        marker = "f" if self.free and self.copy else ""
        return f"{self.relation.lower()}_{marker}{self.copy}"

    def _key(self) -> tuple[str, int, bool]:
        return (self.relation, self.copy, self.free)

    def __lt__(self, other: "RelationInstance") -> bool:
        return self._key() < other._key()

    def __str__(self) -> str:
        marker = "f" if self.free and self.copy else ""
        return f"{self.relation}[{marker}{self.copy}]"


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join between two relation instances along a schema edge.

    Endpoints are stored in normalized (sorted) order so that structurally
    identical edges hash identically regardless of construction order.
    """

    fk: str
    a: RelationInstance
    a_column: str
    b: RelationInstance
    b_column: str

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise JoinTreeError(f"self-loop on {self.a}")
        if (self.b, self.b_column) < (self.a, self.a_column):
            # Normalize endpoint order for stable hashing/equality.
            a, a_column, b, b_column = self.b, self.b_column, self.a, self.a_column
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "a_column", a_column)
            object.__setattr__(self, "b", b)
            object.__setattr__(self, "b_column", b_column)

    @staticmethod
    def from_fk(
        fk: ForeignKey,
        child_instance: RelationInstance,
        parent_instance: RelationInstance,
    ) -> "JoinEdge":
        if child_instance.relation != fk.child or parent_instance.relation != fk.parent:
            raise JoinTreeError(
                f"edge {fk.name!r} joins {fk.child}->{fk.parent}, got "
                f"{child_instance.relation}->{parent_instance.relation}"
            )
        return JoinEdge(
            fk.name,
            child_instance,
            fk.child_column,
            parent_instance,
            fk.parent_column,
        )

    def touches(self, instance: RelationInstance) -> bool:
        return instance in (self.a, self.b)

    def other(self, instance: RelationInstance) -> RelationInstance:
        if instance == self.a:
            return self.b
        if instance == self.b:
            return self.a
        raise JoinTreeError(f"{instance} is not an endpoint of this edge")

    def column_of(self, instance: RelationInstance) -> str:
        if instance == self.a:
            return self.a_column
        if instance == self.b:
            return self.b_column
        raise JoinTreeError(f"{instance} is not an endpoint of this edge")

    def __str__(self) -> str:
        return f"{self.a}.{self.a_column} = {self.b}.{self.b_column}"


@dataclass(frozen=True)
class JoinTree:
    """An unordered tree of relation instances connected by join edges.

    The class enforces the tree invariant on construction: edges only touch
    member instances, the graph is connected, and ``|E| == |V| - 1``.
    """

    instances: frozenset[RelationInstance]
    edges: frozenset[JoinEdge]
    _adjacency: Mapping[RelationInstance, tuple[JoinEdge, ...]] = field(
        default=None, repr=False, compare=False, hash=False  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not self.instances:
            raise JoinTreeError("a join tree needs at least one instance")
        if len(self.edges) != len(self.instances) - 1:
            raise JoinTreeError(
                f"not a tree: {len(self.instances)} instances, "
                f"{len(self.edges)} edges"
            )
        adjacency: dict[RelationInstance, list[JoinEdge]] = {
            instance: [] for instance in self.instances
        }
        for edge in self.edges:
            for endpoint in (edge.a, edge.b):
                if endpoint not in adjacency:
                    raise JoinTreeError(f"edge endpoint {endpoint} not in tree")
                adjacency[endpoint].append(edge)
        object.__setattr__(
            self,
            "_adjacency",
            {
                instance: tuple(edges)
                for instance, edges in adjacency.items()
            },
        )
        if not self._is_connected():
            raise JoinTreeError("join tree is disconnected")

    # --------------------------------------------------------- construction
    @staticmethod
    def single(instance: RelationInstance) -> "JoinTree":
        return JoinTree(frozenset([instance]), frozenset())

    @staticmethod
    def _unchecked(
        instances: frozenset[RelationInstance],
        edges: frozenset[JoinEdge],
        adjacency: dict[RelationInstance, tuple[JoinEdge, ...]],
    ) -> "JoinTree":
        """Internal fast path: build without re-validating the invariant.

        Only called from :meth:`extend`/:meth:`remove_leaf`, whose operations
        provably preserve tree-ness; hot loops (lattice generation, subtree
        enumeration) spend most of their time constructing trees, so skipping
        the re-validation matters.
        """
        tree = object.__new__(JoinTree)
        object.__setattr__(tree, "instances", instances)
        object.__setattr__(tree, "edges", edges)
        object.__setattr__(tree, "_adjacency", adjacency)
        return tree

    def extend(self, edge: JoinEdge, new_instance: RelationInstance) -> "JoinTree":
        """A new tree with ``new_instance`` attached via ``edge``."""
        if new_instance in self.instances:
            raise JoinTreeError(f"{new_instance} already in tree")
        if not edge.touches(new_instance):
            raise JoinTreeError("edge does not touch the new instance")
        anchor = edge.other(new_instance)
        if anchor not in self.instances:
            raise JoinTreeError(f"anchor {anchor} not in tree")
        adjacency = dict(self._adjacency)
        adjacency[anchor] = adjacency[anchor] + (edge,)
        adjacency[new_instance] = (edge,)
        return JoinTree._unchecked(
            self.instances | {new_instance}, self.edges | {edge}, adjacency
        )

    def remove_leaf(self, leaf: RelationInstance) -> "JoinTree":
        """A new tree with leaf instance ``leaf`` (and its edge) removed."""
        incident = self._adjacency[leaf]
        if len(self.instances) == 1:
            raise JoinTreeError("cannot remove the only instance")
        if len(incident) != 1:
            raise JoinTreeError(f"{leaf} is not a leaf")
        edge = incident[0]
        anchor = edge.other(leaf)
        adjacency = dict(self._adjacency)
        del adjacency[leaf]
        adjacency[anchor] = tuple(e for e in adjacency[anchor] if e != edge)
        return JoinTree._unchecked(
            self.instances - {leaf}, self.edges - {edge}, adjacency
        )

    # --------------------------------------------------------------- shape
    @property
    def size(self) -> int:
        """Number of relation instances (the lattice *level* of this tree)."""
        return len(self.instances)

    @property
    def join_count(self) -> int:
        return len(self.edges)

    def sorted_instances(self) -> list[RelationInstance]:
        return sorted(self.instances)

    def edges_of(self, instance: RelationInstance) -> tuple[JoinEdge, ...]:
        return self._adjacency[instance]

    def degree(self, instance: RelationInstance) -> int:
        return len(self._adjacency[instance])

    def leaves(self) -> list[RelationInstance]:
        if len(self.instances) == 1:
            return list(self.instances)
        return sorted(i for i in self.instances if self.degree(i) == 1)

    def neighbours(self, instance: RelationInstance) -> list[RelationInstance]:
        return [edge.other(instance) for edge in self._adjacency[instance]]

    def relations(self) -> set[str]:
        return {instance.relation for instance in self.instances}

    def contains_instance(self, instance: RelationInstance) -> bool:
        return instance in self.instances

    def is_subtree_of(self, other: "JoinTree") -> bool:
        """Structural containment (same instances/edges, not isomorphism)."""
        return self.instances <= other.instances and self.edges <= other.edges

    # ------------------------------------------------------------ traversal
    def rooted_children(
        self, root: RelationInstance
    ) -> dict[RelationInstance, list[tuple[JoinEdge, RelationInstance]]]:
        """Parent -> [(edge, child)] map for the tree rooted at ``root``."""
        children: dict[RelationInstance, list[tuple[JoinEdge, RelationInstance]]] = {
            instance: [] for instance in self.instances
        }
        seen = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for edge in self._adjacency[current]:
                neighbour = edge.other(current)
                if neighbour not in seen:
                    seen.add(neighbour)
                    children[current].append((edge, neighbour))
                    frontier.append(neighbour)
        return children

    def postorder(
        self, root: RelationInstance
    ) -> list[tuple[RelationInstance, JoinEdge | None, RelationInstance | None]]:
        """Post-order ``(node, edge_to_parent, parent)`` triples from ``root``."""
        children = self.rooted_children(root)
        order: list[tuple[RelationInstance, JoinEdge | None, RelationInstance | None]] = []

        def visit(
            node: RelationInstance,
            edge: JoinEdge | None,
            parent: RelationInstance | None,
        ) -> None:
            for child_edge, child in children[node]:
                visit(child, child_edge, node)
            order.append((node, edge, parent))

        visit(root, None, None)
        return order

    def connected_subtrees(self, min_size: int = 1) -> Iterator["JoinTree"]:
        """All connected subtrees (the paper's *sub-networks*), ``self`` included.

        A tree with ``n`` vertices has at most ``2^n - 1`` connected subtrees;
        lattice levels are small (``n <= maxJoins + 1``), so direct
        enumeration is cheap.  Subtrees are generated by recursively removing
        leaves, deduplicated on instance sets (a connected subgraph of a tree
        is determined by its vertex set).
        """
        seen: set[frozenset[RelationInstance]] = set()
        stack = [self]
        while stack:
            tree = stack.pop()
            if tree.instances in seen:
                continue
            seen.add(tree.instances)
            if tree.size >= min_size:
                yield tree
            if tree.size > 1:
                for leaf in tree.leaves():
                    smaller = tree.remove_leaf(leaf)
                    if smaller.instances not in seen:
                        stack.append(smaller)

    def child_subtrees(self) -> list["JoinTree"]:
        """Immediate sub-lattice children: one leaf removed, deduplicated."""
        if self.size == 1:
            return []
        children: dict[frozenset[RelationInstance], JoinTree] = {}
        for leaf in self.leaves():
            child = self.remove_leaf(leaf)
            children[child.instances] = child
        return list(children.values())

    # -------------------------------------------------------------- display
    def describe(self) -> str:
        """Compact human-readable form: ``Person[1] ⋈ Writes[0] ⋈ ...``."""
        return " ⋈ ".join(str(instance) for instance in self.sorted_instances())

    def __str__(self) -> str:
        return self.describe()

    def _is_connected(self) -> bool:
        start = next(iter(self.instances))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for edge in self._adjacency[current]:
                neighbour = edge.other(current)
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.instances)


@dataclass(frozen=True)
class BoundQuery:
    """A join tree with keywords bound to (some of) its instances.

    This is the executable unit: answer/non-answer classification, MPANs, and
    all SQL-count metrics are defined over bound queries.  Instances absent
    from ``bindings`` are free tuple sets.
    """

    tree: JoinTree
    bindings: frozenset[tuple[RelationInstance, str]]
    mode: MatchMode = MatchMode.TOKEN

    def __post_init__(self) -> None:
        instances = self.tree.instances
        seen: set[RelationInstance] = set()
        for instance, keyword in self.bindings:
            if instance not in instances:
                raise JoinTreeError(f"binding on {instance} not in tree")
            if instance.is_free:
                raise JoinTreeError(f"cannot bind keyword {keyword!r} to free copy")
            if instance in seen:
                raise JoinTreeError(f"two keywords bound to {instance}")
            seen.add(instance)

    @staticmethod
    def from_mapping(
        tree: JoinTree,
        bindings: Mapping[RelationInstance, str],
        mode: MatchMode = MatchMode.TOKEN,
    ) -> "BoundQuery":
        return BoundQuery(tree, frozenset(bindings.items()), mode)

    @property
    def binding_map(self) -> dict[RelationInstance, str]:
        return dict(self.bindings)

    @property
    def keywords(self) -> frozenset[str]:
        return frozenset(keyword for _, keyword in self.bindings)

    def keyword_of(self, instance: RelationInstance) -> str | None:
        for bound_instance, keyword in self.bindings:
            if bound_instance == instance:
                return keyword
        return None

    def subquery(self, subtree: JoinTree) -> "BoundQuery":
        """Restrict this query to a connected subtree of its join tree."""
        if not subtree.is_subtree_of(self.tree):
            raise JoinTreeError("not a subtree of this query's join tree")
        kept = frozenset(
            (instance, keyword)
            for instance, keyword in self.bindings
            if instance in subtree.instances
        )
        return BoundQuery(subtree, kept, self.mode)

    def describe(self) -> str:
        """``Person[1]{widom} ⋈ Writes[0] ⋈ Publication[2]{trio}``."""
        bindings = self.binding_map
        parts = []
        for instance in self.tree.sorted_instances():
            keyword = bindings.get(instance)
            suffix = f"{{{keyword}}}" if keyword else ""
            parts.append(f"{instance}{suffix}")
        return " ⋈ ".join(parts)

    def describe_full(self) -> str:
        """:meth:`describe` plus the join conditions.

        Two queries over the same instances can differ only in how the
        instances are wired (e.g. which ``Coauthor`` row links which pair of
        people); this form disambiguates them.
        """
        joins = "; ".join(
            str(edge)
            for edge in sorted(
                self.tree.edges,
                key=lambda e: (e.a, e.a_column, e.b, e.b_column),
            )
        )
        return f"{self.describe()} [{joins}]" if joins else self.describe()

    def __str__(self) -> str:
        return self.describe()


def validate_against_schema(tree: JoinTree, schema: SchemaGraph) -> None:
    """Check that every edge of ``tree`` instantiates a declared foreign key."""
    for edge in tree.edges:
        fk = schema.foreign_key(edge.fk)
        forward = (edge.a.relation, edge.a_column, edge.b.relation, edge.b_column)
        backward = (edge.b.relation, edge.b_column, edge.a.relation, edge.a_column)
        declared = (fk.child, fk.child_column, fk.parent, fk.parent_column)
        if declared not in (forward, backward):
            raise JoinTreeError(
                f"edge {edge.fk!r}: tree joins {forward}, schema declares "
                f"{declared}"
            )
