"""Typed in-memory tables with hash indexes on join and text columns."""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.relational.schema import Attribute, AttributeType, Relation

Row = tuple[Any, ...]


class TableError(ValueError):
    """Raised on malformed rows or unknown columns."""


def _check_value(attribute: Attribute, value: Any) -> Any:
    """Validate (and lightly coerce) one cell against its attribute type."""
    if value is None:
        return None
    if attribute.type is AttributeType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TableError(
                f"column {attribute.name!r} expects an integer, got {value!r}"
            )
        return value
    if attribute.type is AttributeType.REAL:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TableError(f"column {attribute.name!r} expects a real, got {value!r}")
        return float(value)
    if not isinstance(value, str):
        raise TableError(f"column {attribute.name!r} expects text, got {value!r}")
    return value


class Table:
    """Rows of one relation, stored as tuples, with lazy hash indexes.

    Join evaluation repeatedly asks "which row ids have value ``v`` in column
    ``c``"; the table builds an index for column ``c`` on first use and keeps
    it until rows change.  Tables are append-mostly: the workloads in this
    repository load data once and then query it, matching the paper's setting
    (the lattice itself is computed offline against a fixed snapshot).
    """

    def __init__(self, relation: Relation, rows: Iterable[Sequence[Any]] = ()):
        self.relation = relation
        self._rows: list[Row] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}
        # Memoized content digest: None while dirty, recomputed lazily by
        # :meth:`fingerprint`.  ``digest_computations`` counts the actual
        # rehashes (the regression tests assert one insert rehashes only
        # the mutated table); the lifetime insert/delete counters feed
        # :class:`~repro.relational.database.DatabaseDelta` direction
        # inference and are *not* part of the content digest.
        self._digest: str | None = None
        self.digest_computations = 0
        self.inserts_total = 0
        self.deletes_total = 0
        self.extend(rows)

    # ----------------------------------------------------------- mutation
    def insert(self, row: Sequence[Any]) -> int:
        """Append one row; returns its row id (position)."""
        attributes = self.relation.attributes
        if len(row) != len(attributes):
            raise TableError(
                f"relation {self.relation.name!r} has {len(attributes)} columns, "
                f"row has {len(row)}"
            )
        checked = tuple(
            _check_value(attribute, value)
            for attribute, value in zip(attributes, row)
        )
        # Invalidate the digest memo on *both* sides of the list append: a
        # concurrent fingerprint() may memoize a pre-append digest between
        # the two clears, and the trailing clear discards it, so any
        # fingerprint() started after insert() returns sees the new row.
        self._digest = None
        self._rows.append(checked)
        self._indexes.clear()
        self._digest = None
        self.inserts_total += 1
        return len(self._rows) - 1

    def delete(self, row_id: int) -> Row:
        """Remove and return the row at position ``row_id``.

        Positions of later rows shift down, so any structure keyed by row
        id (inverted index postings, cached tuple sets) is stale after a
        delete -- sessions over a mutated database must rebuild them
        (:meth:`~repro.core.debugger.NonAnswerDebugger.refresh_after_mutation`).
        """
        if not 0 <= row_id < len(self._rows):
            raise TableError(
                f"relation {self.relation.name!r} has {len(self._rows)} rows, "
                f"no row {row_id}"
            )
        self._digest = None
        removed = self._rows.pop(row_id)
        self._indexes.clear()
        self._digest = None
        self.deletes_total += 1
        return removed

    def insert_dict(self, values: dict[str, Any]) -> int:
        """Append one row given as a ``{column: value}`` mapping.

        Missing columns become ``NULL``; unknown columns raise.
        """
        unknown = set(values) - set(self.relation.attribute_names)
        if unknown:
            raise TableError(
                f"unknown columns for {self.relation.name!r}: {sorted(unknown)}"
            )
        row = tuple(values.get(name) for name in self.relation.attribute_names)
        return self.insert(row)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def row(self, row_id: int) -> Row:
        return self._rows[row_id]

    def value(self, row_id: int, column: str) -> Any:
        return self._rows[row_id][self.relation.index_of(column)]

    def column_values(self, column: str) -> list[Any]:
        position = self.relation.index_of(column)
        return [row[position] for row in self._rows]

    def rows_as_dicts(self, row_ids: Iterable[int] | None = None) -> list[dict[str, Any]]:
        names = self.relation.attribute_names
        if row_ids is None:
            return [dict(zip(names, row)) for row in self._rows]
        return [dict(zip(names, self._rows[row_id])) for row_id in row_ids]

    # ------------------------------------------------------------- indexes
    def index_on(self, column: str) -> dict[Any, list[int]]:
        """Hash index ``value -> [row ids]`` for ``column`` (built lazily).

        ``NULL`` values are excluded: a NULL never joins (SQL semantics).
        """
        index = self._indexes.get(column)
        if index is None:
            position = self.relation.index_of(column)
            index = {}
            for row_id, row in enumerate(self._rows):
                value = row[position]
                if value is None:
                    continue
                index.setdefault(value, []).append(row_id)
            self._indexes[column] = index
        return index

    def matching_ids(self, column: str, value: Any) -> list[int]:
        """Row ids whose ``column`` equals ``value`` (empty for NULL)."""
        if value is None:
            return []
        return self.index_on(column).get(value, [])

    def select_ids(self, predicate: Callable[[Row], bool]) -> list[int]:
        """Row ids satisfying an arbitrary row predicate (full scan)."""
        return [row_id for row_id, row in enumerate(self._rows) if predicate(row)]

    def text_cells(self, row_id: int) -> Iterator[tuple[str, str]]:
        """Yield ``(column, text)`` for the searchable cells of one row."""
        row = self._rows[row_id]
        for attribute in self.relation.text_attributes:
            value = row[self.relation.index_of(attribute.name)]
            if value is not None:
                yield attribute.name, value

    # --------------------------------------------------------- fingerprint
    def fingerprint(self) -> str:
        """Memoized content hash of this table's rows (hex, stable).

        Two tables of the same relation holding the same rows in the same
        order share a fingerprint regardless of how they were built; any
        :meth:`insert` or :meth:`delete` invalidates the memo, so the
        rehash cost is paid once per mutation burst instead of once per
        call.  The lifetime mutation counters are deliberately excluded:
        identity tracks *content*, the counters only witness direction.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            hasher.update(
                f"T{self.relation.name}:{len(self._rows)}".encode("utf-8")
            )
            for row in self._rows:
                hasher.update(repr(row).encode("utf-8"))
            self._digest = hasher.hexdigest()
            self.digest_computations += 1
        return self._digest

    def validate_foreign_key(
        self, column: str, parent: "Table", parent_column: str
    ) -> list[int]:
        """Row ids violating ``self.column -> parent.parent_column`` (NULLs pass)."""
        parent_values = set(parent.index_on(parent_column))
        position = self.relation.index_of(column)
        return [
            row_id
            for row_id, row in enumerate(self._rows)
            if row[position] is not None and row[position] not in parent_values
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.relation.name!r}, rows={len(self)})"
