"""In-memory execution of bound join-tree queries.

Two operations matter to the paper's system:

* :meth:`InMemoryEngine.is_alive` -- does the query return at least one
  tuple?  This is the operation every lattice traversal issues ("execute the
  SQL query and check if it is empty") and the one we count.  It runs a
  Yannakakis-style bottom-up semi-join pass: because candidate networks are
  trees, the join is nonempty iff the semi-join-reduced root is nonempty.

* :meth:`InMemoryEngine.evaluate` -- enumerate (a bounded number of) result
  tuples, used to display answer queries and MPAN witnesses.

Keyword predicates are resolved to row-id sets through a pluggable
``tuple_set_provider`` so the inverted index can serve them; without one the
engine falls back to a table scan (what ``LIKE '%kw%'`` would do without an
index).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.relational.database import Database
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import KeywordPredicate, MatchMode, cell_matches
from repro.relational.table import Table

TupleSetProvider = Callable[[str, str, MatchMode], "set[int] | None"]
ResultRow = dict[RelationInstance, dict[str, Any]]


class InMemoryEngine:
    """Evaluates :class:`BoundQuery` objects against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        tuple_set_provider: TupleSetProvider | None = None,
    ):
        self.database = database
        self._tuple_set_provider = tuple_set_provider
        self._scan_cache: dict[tuple[str, str, MatchMode], frozenset[int]] = {}

    # ------------------------------------------------------------ tuple sets
    def tuple_set(
        self, relation: str, keyword: str, mode: MatchMode
    ) -> frozenset[int]:
        """Row ids of ``relation`` whose text attributes match ``keyword``.

        Matching is case-insensitive, so the keyword is normalized *before*
        the provider call: the cache is keyed by the casefolded keyword, and
        forwarding the original case would make a case-sensitive provider's
        answers first-caller-wins inconsistent across mixed-case lookups.
        """
        needle = keyword.casefold()
        key = (relation, needle, mode)
        cached = self._scan_cache.get(key)
        if cached is not None:
            return cached
        ids: set[int] | None = None
        if self._tuple_set_provider is not None:
            ids = self._tuple_set_provider(relation, needle, mode)
        if ids is None:
            table = self.database.table(relation)
            ids = {
                row_id
                for row_id in range(len(table))
                if any(
                    cell_matches(needle, text, mode)
                    for _, text in table.text_cells(row_id)
                )
            }
        result = frozenset(ids)
        self._scan_cache[key] = result
        return result

    def _candidate_ids(
        self, query: BoundQuery, instance: RelationInstance
    ) -> frozenset[int] | None:
        """Candidate row ids for one instance; ``None`` means "all rows"."""
        keyword = query.keyword_of(instance)
        if keyword is None:
            return None
        return self.tuple_set(instance.relation, keyword, query.mode)

    # ------------------------------------------------------------- liveness
    def is_alive(self, query: BoundQuery) -> bool:
        """True iff the query returns at least one tuple.

        Bottom-up semi-join pass over the join tree: for each node we compute
        the set of *join values* it can offer to its parent, restricted to
        rows that (a) satisfy the node's keyword predicate and (b) join with
        every child's offered value set.  The query is alive iff the root
        retains at least one viable row.
        """
        tree = query.tree
        root = self._pick_root(query)
        out_values: dict[RelationInstance, set[Any]] = {}
        for node, parent_edge, _parent in tree.postorder(root):
            viable = self._viable_rows(query, tree, node, root, out_values)
            if parent_edge is None:
                # Root: alive iff any viable row exists.
                for _ in viable:
                    return True
                return False
            column = parent_edge.column_of(node)
            table = self.database.table(node.relation)
            position = table.relation.index_of(column)
            values = {table.row(row_id)[position] for row_id in viable}
            values.discard(None)
            if not values:
                return False
            out_values[node] = values
        raise AssertionError("postorder always ends at the root")

    def _viable_rows(
        self,
        query: BoundQuery,
        tree: JoinTree,
        node: RelationInstance,
        root: RelationInstance,
        out_values: dict[RelationInstance, set[Any]],
    ) -> Iterable[int]:
        """Row ids of ``node`` passing its predicate and all child semi-joins."""
        table = self.database.table(node.relation)
        children = [
            (edge, edge.other(node))
            for edge in tree.edges_of(node)
            if edge.other(node) in out_values
        ]
        candidates = self._candidate_ids(query, node)

        if candidates is None and children:
            # Free node: drive the scan from the smallest child value set via
            # the hash index instead of scanning the whole table.
            edge, child = min(children, key=lambda pair: len(out_values[pair[1]]))
            column = edge.column_of(node)
            index = table.index_on(column)
            candidates = frozenset(
                row_id
                for value in out_values[child]
                for row_id in index.get(value, ())
            )
            children = [(e, c) for e, c in children if c is not child]
        elif candidates is None:
            candidates = frozenset(range(len(table)))

        if not children:
            return candidates

        def passes(row_id: int) -> bool:
            row = table.row(row_id)
            for edge, child in children:
                position = table.relation.index_of(edge.column_of(node))
                if row[position] not in out_values[child]:
                    return False
            return True

        return (row_id for row_id in candidates if passes(row_id))

    def _pick_root(self, query: BoundQuery) -> RelationInstance:
        """Root the tree at a bound instance when possible.

        Starting from a keyword-bound (hence usually small) tuple set makes
        the final root check cheap; ties break deterministically.
        """
        bound = sorted(instance for instance, _ in query.bindings)
        if bound:
            return bound[0]
        return query.tree.sorted_instances()[0]

    # ------------------------------------------------------------ evaluation
    def count(self, query: BoundQuery, limit: int | None = None) -> int:
        """Number of result tuples (optionally stopping at ``limit``)."""
        total = 0
        for _ in self.evaluate(query, limit=limit):
            total += 1
        return total

    def evaluate(
        self, query: BoundQuery, limit: int | None = 100
    ) -> list[ResultRow]:
        """Enumerate result tuples as ``{instance: {column: value}}`` dicts.

        Backtracking join in tree order, using hash indexes for each edge.
        ``limit=None`` enumerates everything -- use with care on large joins.
        """
        tree = query.tree
        root = self._pick_root(query)
        children = tree.rooted_children(root)
        order: list[tuple[RelationInstance, JoinEdge | None, RelationInstance]] = []

        def flatten(node: RelationInstance) -> None:
            for edge, child in children[node]:
                order.append((child, edge, node))
                flatten(child)

        flatten(root)

        results: list[ResultRow] = []
        assignment: dict[RelationInstance, int] = {}

        root_candidates = self._candidate_ids(query, root)
        if root_candidates is None:
            root_candidates = frozenset(range(len(self.database.table(root.relation))))

        def recurse(depth: int) -> bool:
            """Returns True when the limit has been reached."""
            if depth == len(order):
                results.append(self._materialize(assignment))
                return limit is not None and len(results) >= limit
            node, edge, parent = order[depth]
            table = self.database.table(node.relation)
            parent_table = self.database.table(parent.relation)
            parent_row = parent_table.row(assignment[parent])
            join_value = parent_row[
                parent_table.relation.index_of(edge.column_of(parent))
            ]
            node_candidates = self._candidate_ids(query, node)
            for row_id in table.matching_ids(edge.column_of(node), join_value):
                if node_candidates is not None and row_id not in node_candidates:
                    continue
                assignment[node] = row_id
                if recurse(depth + 1):
                    return True
            assignment.pop(node, None)
            return False

        for root_row in sorted(root_candidates):
            assignment[root] = root_row
            if recurse(0):
                break
        return results

    def _materialize(self, assignment: Mapping[RelationInstance, int]) -> ResultRow:
        result: ResultRow = {}
        for instance, row_id in assignment.items():
            table = self.database.table(instance.relation)
            result[instance] = dict(
                zip(table.relation.attribute_names, table.row(row_id))
            )
        return result

    # -------------------------------------------------------------- helpers
    def predicate_for(self, query: BoundQuery, instance: RelationInstance) -> KeywordPredicate | None:
        keyword = query.keyword_of(instance)
        if keyword is None:
            return None
        return KeywordPredicate(keyword, query.mode)

    def table_of(self, instance: RelationInstance) -> Table:
        return self.database.table(instance.relation)
