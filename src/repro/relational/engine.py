"""In-memory execution of bound join-tree queries.

Two operations matter to the paper's system:

* :meth:`InMemoryEngine.is_alive` -- does the query return at least one
  tuple?  This is the operation every lattice traversal issues ("execute the
  SQL query and check if it is empty") and the one we count.  It runs a
  Yannakakis-style bottom-up semi-join pass: because candidate networks are
  trees, the join is nonempty iff the semi-join-reduced root is nonempty.

* :meth:`InMemoryEngine.evaluate` -- enumerate (a bounded number of) result
  tuples, used to display answer queries and MPAN witnesses.

Keyword predicates are resolved to row-id sets through a pluggable
``tuple_set_provider`` so the inverted index can serve them; without one the
engine falls back to a table scan (what ``LIKE '%kw%'`` would do without an
index).

At million-tuple scale the materialized tuple sets themselves become the
memory ceiling, so the engine optionally takes a ``streaming_source`` (an
index exposing ``tuple_set_size``/``iter_tuple_set``, e.g. the sqlite
index backend) plus a ``materialization_cap``: a probe whose tuple sets
all fit under the cap runs the classic materializing semi-join, anything
larger switches to :meth:`InMemoryEngine._is_alive_streaming` -- a
root-driven recursive existence check that streams the root's tuple set
and walks each candidate row down the join tree through the tables' hash
indexes, holding only O(depth) state (plus a bounded memo).  Both paths
compute the same boolean, so classifications are byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Protocol

from repro.relational.database import Database
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import KeywordPredicate, MatchMode, cell_matches
from repro.relational.table import Table

TupleSetProvider = Callable[[str, str, MatchMode], "set[int] | None"]
ResultRow = dict[RelationInstance, dict[str, Any]]

#: Tuple sets larger than this many rows are streamed, not materialized,
#: when a ``streaming_source`` is attached.  Below the cap the classic
#: path wins (its per-keyword sets are built once and cached); above it
#: the sets would dominate the heap.  The cap doubles as the out-of-core
#: memory plateau -- a streamed run retains at most a handful of
#: cap-sized sets -- so it is kept small enough that the plateau fits
#: inside the scale bench's "2x the 10^4-tuple footprint" ceiling.
DEFAULT_MATERIALIZATION_CAP = 1024

#: The streaming existence check memoizes (instance, row) -> survives
#: verdicts; the memo is dropped once it reaches this many entries so a
#: dead probe over a huge tuple set cannot re-grow a linear structure.
_MEMO_CAP = 65_536


class StreamingTupleSource(Protocol):
    """What the engine needs from an index to stream tuple sets."""

    def tuple_set_size(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> int: ...

    def iter_tuple_set(
        self, relation: str, keyword: str, mode: MatchMode = MatchMode.TOKEN
    ) -> Iterator[int]: ...


class InMemoryEngine:
    """Evaluates :class:`BoundQuery` objects against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        tuple_set_provider: TupleSetProvider | None = None,
        streaming_source: StreamingTupleSource | None = None,
        materialization_cap: int | None = None,
    ):
        self.database = database
        self._tuple_set_provider = tuple_set_provider
        self._streaming_source = streaming_source
        self._materialization_cap = (
            materialization_cap
            if materialization_cap is not None or streaming_source is None
            else DEFAULT_MATERIALIZATION_CAP
        )
        self._scan_cache: dict[tuple[str, str, MatchMode], frozenset[int]] = {}

    # ------------------------------------------------------------ tuple sets
    def tuple_set(
        self, relation: str, keyword: str, mode: MatchMode
    ) -> frozenset[int]:
        """Row ids of ``relation`` whose text attributes match ``keyword``.

        Matching is case-insensitive, so the keyword is normalized *before*
        the provider call: the cache is keyed by the casefolded keyword, and
        forwarding the original case would make a case-sensitive provider's
        answers first-caller-wins inconsistent across mixed-case lookups.
        """
        needle = keyword.casefold()
        key = (relation, needle, mode)
        cached = self._scan_cache.get(key)
        if cached is not None:
            return cached
        ids: set[int] | None = None
        if self._tuple_set_provider is not None:
            ids = self._tuple_set_provider(relation, needle, mode)
        if ids is None:
            table = self.database.table(relation)
            ids = {
                row_id
                for row_id in range(len(table))
                if any(
                    cell_matches(needle, text, mode)
                    for _, text in table.text_cells(row_id)
                )
            }
        result = frozenset(ids)
        self._scan_cache[key] = result
        return result

    def _candidate_ids(
        self, query: BoundQuery, instance: RelationInstance
    ) -> frozenset[int] | None:
        """Candidate row ids for one instance; ``None`` means "all rows"."""
        keyword = query.keyword_of(instance)
        if keyword is None:
            return None
        return self.tuple_set(instance.relation, keyword, query.mode)

    # ------------------------------------------------------------- liveness
    def is_alive(self, query: BoundQuery) -> bool:
        """True iff the query returns at least one tuple.

        Bottom-up semi-join pass over the join tree: for each node we compute
        the set of *join values* it can offer to its parent, restricted to
        rows that (a) satisfy the node's keyword predicate and (b) join with
        every child's offered value set.  The query is alive iff the root
        retains at least one viable row.

        When a ``streaming_source`` is attached and any of the query's
        tuple sets (or free relations) exceeds the materialization cap,
        the probe runs as a streamed existence check instead -- same
        answer, flat memory.
        """
        if self._should_stream(query):
            return self._is_alive_streaming(query)
        tree = query.tree
        root = self._pick_root(query)
        out_values: dict[RelationInstance, set[Any]] = {}
        for node, parent_edge, _parent in tree.postorder(root):
            viable = self._viable_rows(query, tree, node, root, out_values)
            if parent_edge is None:
                # Root: alive iff any viable row exists.
                for _ in viable:
                    return True
                return False
            column = parent_edge.column_of(node)
            table = self.database.table(node.relation)
            position = table.relation.index_of(column)
            values = {table.row(row_id)[position] for row_id in viable}
            values.discard(None)
            if not values:
                return False
            out_values[node] = values
        raise AssertionError("postorder always ends at the root")

    def _viable_rows(
        self,
        query: BoundQuery,
        tree: JoinTree,
        node: RelationInstance,
        root: RelationInstance,
        out_values: dict[RelationInstance, set[Any]],
    ) -> Iterable[int]:
        """Row ids of ``node`` passing its predicate and all child semi-joins."""
        table = self.database.table(node.relation)
        children = [
            (edge, edge.other(node))
            for edge in tree.edges_of(node)
            if edge.other(node) in out_values
        ]
        candidates = self._candidate_ids(query, node)

        if candidates is None and children:
            # Free node: drive the scan from the smallest child value set via
            # the hash index instead of scanning the whole table.
            edge, child = min(children, key=lambda pair: len(out_values[pair[1]]))
            column = edge.column_of(node)
            index = table.index_on(column)
            candidates = frozenset(
                row_id
                for value in out_values[child]
                for row_id in index.get(value, ())
            )
            children = [(e, c) for e, c in children if c is not child]
        elif candidates is None:
            candidates = frozenset(range(len(table)))

        if not children:
            return candidates

        def passes(row_id: int) -> bool:
            row = table.row(row_id)
            for edge, child in children:
                position = table.relation.index_of(edge.column_of(node))
                if row[position] not in out_values[child]:
                    return False
            return True

        return (row_id for row_id in candidates if passes(row_id))

    # ---------------------------------------------------- streamed liveness
    def _should_stream(self, query: BoundQuery) -> bool:
        """True when some tuple set of ``query`` is too big to materialize."""
        cap = self._materialization_cap
        if self._streaming_source is None or cap is None:
            return False
        for instance in query.tree.sorted_instances():
            keyword = query.keyword_of(instance)
            if keyword is None:
                if len(self.database.table(instance.relation)) > cap:
                    return True
                continue
            needle = keyword.casefold()
            if (instance.relation, needle, query.mode) in self._scan_cache:
                continue
            size = self._streaming_source.tuple_set_size(
                instance.relation, needle, query.mode
            )
            if size > cap:
                return True
        return False

    def _iter_candidates(
        self, relation: str, keyword: str, mode: MatchMode
    ) -> Iterable[int]:
        """Candidate row ids for one bound instance, streamed when large."""
        needle = keyword.casefold()
        cached = self._scan_cache.get((relation, needle, mode))
        if cached is not None:
            return cached
        source = self._streaming_source
        cap = self._materialization_cap
        if source is not None and cap is not None:
            if source.tuple_set_size(relation, needle, mode) > cap:
                return source.iter_tuple_set(relation, needle, mode)
        return self.tuple_set(relation, needle, mode)

    def _is_alive_streaming(self, query: BoundQuery) -> bool:
        """Root-driven existence check holding O(tree depth) state.

        The root's candidates are streamed; each one is verified by
        recursing down the rooted tree through the tables' join-column
        hash indexes, re-checking keyword predicates per row with
        :func:`cell_matches` (the same ground truth the scan fallback
        uses) instead of materialized tuple sets.  The first surviving
        root row proves liveness; exhausting the stream proves death.
        A bounded memo of (instance, row) verdicts keeps repeated join
        targets (conferences, topics, ...) from being re-derived per
        root candidate.
        """
        tree = query.tree
        root = self._pick_streaming_root(query)
        children = tree.rooted_children(root)
        keyword = query.keyword_of(root)
        candidates: Iterable[int]
        if keyword is None:
            candidates = range(len(self.database.table(root.relation)))
        else:
            candidates = self._iter_candidates(root.relation, keyword, query.mode)
        memo: dict[tuple[RelationInstance, int], bool] = {}
        for row_id in candidates:
            if self._row_survives(query, children, root, row_id, memo):
                return True
        return False

    def _row_survives(
        self,
        query: BoundQuery,
        children: Mapping[RelationInstance, list[tuple[JoinEdge, RelationInstance]]],
        node: RelationInstance,
        row_id: int,
        memo: dict[tuple[RelationInstance, int], bool],
    ) -> bool:
        """Does ``row_id`` of ``node`` join down every child subtree?"""
        key = (node, row_id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        table = self.database.table(node.relation)
        row = table.row(row_id)
        survives = True
        for edge, child in children[node]:
            value = row[table.relation.index_of(edge.column_of(node))]
            if value is None:
                survives = False
                break
            child_table = self.database.table(child.relation)
            child_keyword = query.keyword_of(child)
            found = False
            for child_row in child_table.matching_ids(edge.column_of(child), value):
                if child_keyword is not None and not self._row_matches(
                    child_table, child_row, child_keyword, query.mode
                ):
                    continue
                if self._row_survives(query, children, child, child_row, memo):
                    found = True
                    break
            if not found:
                survives = False
                break
        if len(memo) >= _MEMO_CAP:
            memo.clear()
        memo[key] = survives
        return survives

    def _pick_streaming_root(self, query: BoundQuery) -> RelationInstance:
        """Root at the *smallest* bound tuple set: the root is streamed in
        full on a dead probe, so its cardinality dominates the cost."""
        bound = sorted(instance for instance, _ in query.bindings)
        if not bound:
            return query.tree.sorted_instances()[0]
        source = self._streaming_source
        if source is None or len(bound) == 1:
            return bound[0]

        def size_of(instance: RelationInstance) -> int:
            keyword = query.keyword_of(instance)
            assert keyword is not None
            return source.tuple_set_size(
                instance.relation, keyword.casefold(), query.mode
            )

        return min(bound, key=lambda instance: (size_of(instance), instance))

    def _row_matches(
        self, table: Table, row_id: int, keyword: str, mode: MatchMode
    ) -> bool:
        """Keyword predicate on one row, via cached sets or the cells."""
        needle = keyword.casefold()
        cached = self._scan_cache.get((table.relation.name, needle, mode))
        if cached is not None:
            return row_id in cached
        return any(
            cell_matches(needle, text, mode)
            for _, text in table.text_cells(row_id)
        )

    def _pick_root(self, query: BoundQuery) -> RelationInstance:
        """Root the tree at a bound instance when possible.

        Starting from a keyword-bound (hence usually small) tuple set makes
        the final root check cheap; ties break deterministically.
        """
        bound = sorted(instance for instance, _ in query.bindings)
        if bound:
            return bound[0]
        return query.tree.sorted_instances()[0]

    # ------------------------------------------------------------ evaluation
    def count(self, query: BoundQuery, limit: int | None = None) -> int:
        """Number of result tuples (optionally stopping at ``limit``)."""
        total = 0
        for _ in self.evaluate(query, limit=limit):
            total += 1
        return total

    def evaluate(
        self, query: BoundQuery, limit: int | None = 100
    ) -> list[ResultRow]:
        """Enumerate result tuples as ``{instance: {column: value}}`` dicts.

        Backtracking join in tree order, using hash indexes for each edge.
        ``limit=None`` enumerates everything -- use with care on large joins.
        """
        tree = query.tree
        root = self._pick_root(query)
        children = tree.rooted_children(root)
        order: list[tuple[RelationInstance, JoinEdge | None, RelationInstance]] = []

        def flatten(node: RelationInstance) -> None:
            for edge, child in children[node]:
                order.append((child, edge, node))
                flatten(child)

        flatten(root)

        results: list[ResultRow] = []
        assignment: dict[RelationInstance, int] = {}

        root_candidates = self._candidate_ids(query, root)
        if root_candidates is None:
            root_candidates = frozenset(range(len(self.database.table(root.relation))))

        def recurse(depth: int) -> bool:
            """Returns True when the limit has been reached."""
            if depth == len(order):
                results.append(self._materialize(assignment))
                return limit is not None and len(results) >= limit
            node, edge, parent = order[depth]
            table = self.database.table(node.relation)
            parent_table = self.database.table(parent.relation)
            parent_row = parent_table.row(assignment[parent])
            join_value = parent_row[
                parent_table.relation.index_of(edge.column_of(parent))
            ]
            node_candidates = self._candidate_ids(query, node)
            for row_id in table.matching_ids(edge.column_of(node), join_value):
                if node_candidates is not None and row_id not in node_candidates:
                    continue
                assignment[node] = row_id
                if recurse(depth + 1):
                    return True
            assignment.pop(node, None)
            return False

        for root_row in sorted(root_candidates):
            assignment[root] = root_row
            if recurse(0):
                break
        return results

    def _materialize(self, assignment: Mapping[RelationInstance, int]) -> ResultRow:
        result: ResultRow = {}
        for instance, row_id in assignment.items():
            table = self.database.table(instance.relation)
            result[instance] = dict(
                zip(table.relation.attribute_names, table.row(row_id))
            )
        return result

    # -------------------------------------------------------------- helpers
    def predicate_for(self, query: BoundQuery, instance: RelationInstance) -> KeywordPredicate | None:
        keyword = query.keyword_of(instance)
        if keyword is None:
            return None
        return KeywordPredicate(keyword, query.mode)

    def table_of(self, instance: RelationInstance) -> Table:
        return self.database.table(instance.relation)
