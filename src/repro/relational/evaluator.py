"""Instrumented evaluation facade used by every traversal strategy.

All of the paper's run-time metrics are defined here:

* **number of SQL queries executed** (Figures 11, Table 4) -- each call that
  reaches the backend counts as one; cache hits (the *reuse* in BUWR/TDWR) do
  not re-execute and are counted separately;
* **response time** (Figures 12, 14, 15) -- both measured wall time and a
  deterministic *simulated* time from a pluggable cost model, so figure
  shapes are reproducible across machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.obs.budget import ProbeBudget, ProbeBudgetExhausted
from repro.obs.trace import ProbeTracer
from repro.relational.jointree import BoundQuery


class AlivenessBackend(Protocol):
    """Anything that can answer "does this query return a tuple?"."""

    def is_alive(self, query: BoundQuery) -> bool:  # pragma: no cover - protocol
        ...


class QueryCostModel(Protocol):
    """Deterministic per-query cost estimate, in simulated seconds."""

    def cost(self, query: BoundQuery) -> float:  # pragma: no cover - protocol
        ...


@dataclass
class EvaluationStats:
    """Counters accumulated by an :class:`InstrumentedEvaluator`."""

    queries_executed: int = 0
    cache_hits: int = 0
    wall_time: float = 0.0
    simulated_time: float = 0.0
    executed_by_level: dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> "EvaluationStats":
        return EvaluationStats(
            self.queries_executed,
            self.cache_hits,
            self.wall_time,
            self.simulated_time,
            dict(self.executed_by_level),
        )

    def diff(self, earlier: "EvaluationStats") -> "EvaluationStats":
        """Counters accumulated since ``earlier`` was snapshotted.

        Levels present only in ``earlier`` (possible after ``reset_stats``)
        yield negative deltas rather than silently disappearing.
        """
        levels = set(self.executed_by_level) | set(earlier.executed_by_level)
        by_level = {
            level: self.executed_by_level.get(level, 0)
            - earlier.executed_by_level.get(level, 0)
            for level in levels
        }
        return EvaluationStats(
            self.queries_executed - earlier.queries_executed,
            self.cache_hits - earlier.cache_hits,
            self.wall_time - earlier.wall_time,
            self.simulated_time - earlier.simulated_time,
            {level: count for level, count in by_level.items() if count},
        )

    def __str__(self) -> str:
        return (
            f"{self.queries_executed} queries "
            f"({self.cache_hits} cache hits), "
            f"{self.wall_time * 1000:.1f} ms wall, "
            f"{self.simulated_time:.3f} s simulated"
        )


class InstrumentedEvaluator:
    """Counts, times, and optionally caches aliveness probes.

    ``use_cache=True`` is what the paper calls *reuse*: a query already
    evaluated (by any MTN's traversal, in any interpretation) is answered
    from the cache without touching the backend.  Non-reuse strategies (BU,
    TD) construct their evaluator with ``use_cache=False`` so that shared
    sub-queries are re-executed per MTN, exactly as the paper measures them.

    A ``budget`` caps the work spent here: cache hits are always free,
    but each backend execution must be admitted first and is charged
    afterwards, so a :class:`~repro.obs.budget.ProbeBudgetExhausted` from
    :meth:`is_alive` guarantees the backend was *not* touched.  A
    ``tracer`` records one span per probe (executed or cache-answered).
    """

    def __init__(
        self,
        backend: AlivenessBackend,
        cost_model: QueryCostModel | None = None,
        use_cache: bool = True,
        budget: ProbeBudget | None = None,
        tracer: ProbeTracer | None = None,
    ):
        self.backend = backend
        self.cost_model = cost_model
        self.use_cache = use_cache
        self.budget = budget
        self.tracer = tracer
        self.stats = EvaluationStats()
        self._cache: dict[BoundQuery, bool] = {}

    def _trace(
        self,
        query: BoundQuery,
        alive: bool,
        cache_hit: bool,
        wall: float,
        simulated: float,
    ) -> None:
        assert self.tracer is not None
        self.tracer.record_probe(
            level=query.tree.size,
            keywords=query.keywords,
            backend=type(self.backend).__name__,
            alive=alive,
            cache_hit=cache_hit,
            wall_seconds=wall,
            simulated_seconds=simulated,
            budget_remaining=(
                self.budget.remaining_queries() if self.budget is not None else None
            ),
        )

    def is_alive(self, query: BoundQuery) -> bool:
        """Answer an aliveness probe, counting one executed query on a miss.

        Raises :class:`~repro.obs.budget.ProbeBudgetExhausted` *before*
        touching the backend when the budget is spent; cached answers are
        served regardless (they cost nothing).
        """
        if self.use_cache:
            cached = self._cache.get(query)
            if cached is not None:
                self.stats.cache_hits += 1
                if self.tracer is not None:
                    self._trace(query, cached, cache_hit=True, wall=0.0, simulated=0.0)
                return cached
        if self.budget is not None:
            try:
                self.budget.admit()
            except ProbeBudgetExhausted:
                if self.tracer is not None:
                    self.tracer.record_event(
                        "budget_exhausted", budget=self.budget.describe()
                    )
                raise
        started = time.perf_counter()
        alive = self.backend.is_alive(query)
        wall = time.perf_counter() - started
        self.stats.wall_time += wall
        self.stats.queries_executed += 1
        level = query.tree.size
        self.stats.executed_by_level[level] = (
            self.stats.executed_by_level.get(level, 0) + 1
        )
        simulated = 0.0
        if self.cost_model is not None:
            simulated = self.cost_model.cost(query)
            self.stats.simulated_time += simulated
        if self.budget is not None:
            self.budget.charge(wall_seconds=wall, simulated_seconds=simulated)
        if self.tracer is not None:
            self._trace(query, alive, cache_hit=False, wall=wall, simulated=simulated)
        if self.use_cache:
            self._cache[query] = alive
        return alive

    def reset_cache(self) -> None:
        self._cache.clear()

    def reset_stats(self) -> None:
        self.stats = EvaluationStats()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
