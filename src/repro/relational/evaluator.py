"""Instrumented evaluation facade used by every traversal strategy.

All of the paper's run-time metrics are defined here:

* **number of SQL queries executed** (Figures 11, Table 4) -- each call that
  reaches the backend counts as one; cache hits (the *reuse* in BUWR/TDWR) do
  not re-execute and are counted separately;
* **response time** (Figures 12, 14, 15) -- both measured wall time and a
  deterministic *simulated* time from a pluggable cost model, so figure
  shapes are reproducible across machines.

The evaluator is safe to call from multiple threads: the aliveness cache
(a bounded LRU) and the stats counters are guarded by one internal lock,
and the probe lifecycle is split into admit / execute / apply steps so a
:class:`~repro.parallel.ParallelProbeExecutor` can run the execute step
on worker threads while admission and result application stay in
deterministic submission order on the coordinating thread.

Caching is **two-tier**: the in-process LRU above is the L1 and an
optional persistent :class:`~repro.backends.base.ProbeStore` (see
:mod:`repro.cache`) is the L2, consulted only on an L1 miss and written
through on every executed probe.  L2 hits are promoted into L1, cost no
backend query and no budget, and are counted separately
(``stats.l2_hits``, ``cache_tier="l2"`` on the trace span), so a warm
session over an unchanged dataset is observably distinguishable from
in-process reuse.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Protocol, Sequence

# The backend protocol lives in repro.backends.base (the pluggable
# backend layer); it is re-exported here because this module is where
# every existing caller imports it from.
from repro.backends.base import AlivenessBackend, ProbeStore
from repro.obs.budget import ProbeBudget, ProbeBudgetExhausted
from repro.obs.trace import ProbeTracer
from repro.relational.jointree import BoundQuery

__all__ = [
    "AlivenessBackend",
    "ProbeStore",
    "QueryCostModel",
    "EvaluationStats",
    "ProbeOutcome",
    "ProbeBatch",
    "BatchExecutor",
    "InstrumentedEvaluator",
    "DEFAULT_CACHE_CAPACITY",
]

#: Default LRU capacity of the aliveness cache -- generous (a level-7
#: DBLife exploration graph has a few thousand nodes) but bounded, so a
#: long-lived evaluator serving many sessions cannot grow without limit.
DEFAULT_CACHE_CAPACITY = 65_536


class QueryCostModel(Protocol):
    """Deterministic per-query cost estimate, in simulated seconds."""

    def cost(self, query: BoundQuery) -> float:  # pragma: no cover - protocol
        ...


@dataclass
class EvaluationStats:
    """Counters accumulated by an :class:`InstrumentedEvaluator`."""

    queries_executed: int = 0
    cache_hits: int = 0
    wall_time: float = 0.0
    simulated_time: float = 0.0
    executed_by_level: dict[int, int] = field(default_factory=dict)
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Tier breakdown of ``cache_hits`` (``cache_hits == l1_hits + l2_hits``):
    #: L1 is the in-process LRU, L2 the persistent cross-session store.
    l1_hits: int = 0
    l2_hits: int = 0

    def snapshot(self) -> "EvaluationStats":
        return EvaluationStats(
            queries_executed=self.queries_executed,
            cache_hits=self.cache_hits,
            wall_time=self.wall_time,
            simulated_time=self.simulated_time,
            executed_by_level=dict(self.executed_by_level),
            cache_misses=self.cache_misses,
            cache_evictions=self.cache_evictions,
            l1_hits=self.l1_hits,
            l2_hits=self.l2_hits,
        )

    def diff(self, earlier: "EvaluationStats") -> "EvaluationStats":
        """Counters accumulated since ``earlier`` was snapshotted.

        Levels present only in ``earlier`` (possible after ``reset_stats``)
        yield negative deltas rather than silently disappearing.
        """
        levels = set(self.executed_by_level) | set(earlier.executed_by_level)
        by_level = {
            level: self.executed_by_level.get(level, 0)
            - earlier.executed_by_level.get(level, 0)
            for level in levels
        }
        return EvaluationStats(
            queries_executed=self.queries_executed - earlier.queries_executed,
            cache_hits=self.cache_hits - earlier.cache_hits,
            wall_time=self.wall_time - earlier.wall_time,
            simulated_time=self.simulated_time - earlier.simulated_time,
            executed_by_level={
                level: count for level, count in by_level.items() if count
            },
            cache_misses=self.cache_misses - earlier.cache_misses,
            cache_evictions=self.cache_evictions - earlier.cache_evictions,
            l1_hits=self.l1_hits - earlier.l1_hits,
            l2_hits=self.l2_hits - earlier.l2_hits,
        )

    def __str__(self) -> str:
        cache = f"{self.cache_hits} cache hits / {self.cache_misses} misses"
        if self.l2_hits:
            cache = (
                f"{self.cache_hits} cache hits (L1 {self.l1_hits}, "
                f"L2 {self.l2_hits}) / {self.cache_misses} misses"
            )
        if self.cache_evictions:
            cache += f", {self.cache_evictions} evicted"
        return (
            f"{self.queries_executed} queries "
            f"({cache}), "
            f"{self.wall_time * 1000:.1f} ms wall, "
            f"{self.simulated_time:.3f} s simulated"
        )


@dataclass(frozen=True)
class ProbeOutcome:
    """The measured result of one backend execution (charge already paid)."""

    alive: bool
    wall_seconds: float
    simulated_seconds: float
    worker_id: int | None = None
    queue_wait_s: float | None = None


@dataclass
class ProbeBatch:
    """Outcome of :meth:`InstrumentedEvaluator.probe_many`.

    ``results`` aligns with a *prefix* of the submitted queries: when the
    probe budget refused a probe mid-batch, everything before the refusal
    is answered and ``exhausted`` is True -- exactly the state a serial
    loop of ``is_alive`` calls leaves behind when the exception fires.
    """

    results: list[bool] = field(default_factory=list)
    exhausted: bool = False


class BatchExecutor(Protocol):
    """Anything that can evaluate a batch of probes for an evaluator.

    Implemented by :class:`repro.parallel.ParallelProbeExecutor`; the
    protocol lives here so ``repro.relational`` needs no import of the
    parallel machinery.
    """

    def run_batch(
        self, evaluator: "InstrumentedEvaluator", queries: Sequence[BoundQuery]
    ) -> ProbeBatch:  # pragma: no cover - protocol
        ...


class InstrumentedEvaluator:
    """Counts, times, and optionally caches aliveness probes.

    ``use_cache=True`` is what the paper calls *reuse*: a query already
    evaluated (by any MTN's traversal, in any interpretation) is answered
    from the cache without touching the backend.  Non-reuse strategies (BU,
    TD) construct their evaluator with ``use_cache=False`` so that shared
    sub-queries are re-executed per MTN, exactly as the paper measures them.
    The cache is a bounded LRU (``cache_capacity`` entries, ``None`` =
    unbounded); hits, misses, and evictions are all counted in ``stats``.

    A ``budget`` caps the work spent here: cache hits are always free,
    but each backend execution must be admitted first and is charged
    afterwards, so a :class:`~repro.obs.budget.ProbeBudgetExhausted` from
    :meth:`is_alive` guarantees the backend was *not* touched.  A
    ``tracer`` records one span per probe (executed or cache-answered).

    ``probe_cache`` attaches a persistent L2 tier (any
    :class:`~repro.backends.base.ProbeStore`, normally a
    :class:`repro.cache.ProbeCache`): consulted after an L1 miss, written
    through on every executed probe, ignored entirely when
    ``use_cache=False`` (the paper's non-reuse strategies re-execute by
    definition, and a persistent tier would change their counted costs).
    """

    def __init__(
        self,
        backend: AlivenessBackend,
        cost_model: QueryCostModel | None = None,
        use_cache: bool = True,
        budget: ProbeBudget | None = None,
        tracer: ProbeTracer | None = None,
        cache_capacity: int | None = DEFAULT_CACHE_CAPACITY,
        probe_cache: ProbeStore | None = None,
    ):
        if cache_capacity is not None and cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive (or None)")
        self.backend = backend
        self.cost_model = cost_model
        self.use_cache = use_cache
        self.budget = budget
        self.tracer = tracer
        self.cache_capacity = cache_capacity
        self.probe_cache = probe_cache
        self.stats = EvaluationStats()
        self._cache: OrderedDict[BoundQuery, bool] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    def _trace(
        self,
        query: BoundQuery,
        alive: bool,
        cache_hit: bool,
        wall: float,
        simulated: float,
        worker_id: int | None = None,
        queue_wait_s: float | None = None,
        cache_tier: str | None = None,
    ) -> None:
        assert self.tracer is not None
        self.tracer.record_probe(
            level=query.tree.size,
            keywords=query.keywords,
            backend=type(self.backend).__name__,
            alive=alive,
            cache_hit=cache_hit,
            wall_seconds=wall,
            simulated_seconds=simulated,
            budget_remaining=(
                self.budget.remaining_queries() if self.budget is not None else None
            ),
            worker_id=worker_id,
            queue_wait_s=queue_wait_s,
            cache_tier=cache_tier,
        )

    def _cache_insert_locked(self, query: BoundQuery, alive: bool) -> None:
        """Insert into the L1 LRU (caller holds the lock), evicting at cap."""
        self._cache[query] = alive
        self._cache.move_to_end(query)
        if (
            self.cache_capacity is not None
            and len(self._cache) > self.cache_capacity
        ):
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1

    # --------------------------------------------------- probe lifecycle
    def lookup_cached(self, query: BoundQuery) -> bool | None:
        """Serve ``query`` from L1 then L2, counting a tiered hit + span.

        Returns ``None`` on a miss in both tiers (or when caching is
        off); the miss is *not* counted here -- it is counted when the
        execution is applied, so refused probes never inflate the miss
        counter.  L2 hits are promoted into L1 so repeated probes stay
        in-process.
        """
        if not self.use_cache:
            return None
        with self._lock:
            cached = self._cache.get(query)
            if cached is not None:
                self._cache.move_to_end(query)
                self.stats.cache_hits += 1
                self.stats.l1_hits += 1
        if cached is not None:
            if self.tracer is not None:
                self._trace(
                    query,
                    cached,
                    cache_hit=True,
                    wall=0.0,
                    simulated=0.0,
                    cache_tier="l1",
                )
            return cached
        if self.probe_cache is None:
            return None
        # L2 lookup outside the evaluator lock: the store has its own
        # lock and may touch disk.
        persisted = self.probe_cache.get(query)
        if persisted is None:
            return None
        with self._lock:
            self.stats.cache_hits += 1
            self.stats.l2_hits += 1
            self._cache_insert_locked(query, persisted)
        if self.tracer is not None:
            self._trace(
                query,
                persisted,
                cache_hit=True,
                wall=0.0,
                simulated=0.0,
                cache_tier="l2",
            )
        return persisted

    def admit_probe(self) -> None:
        """Reserve one backend execution with the budget (raise if spent)."""
        if self.budget is None:
            return
        try:
            self.budget.admit()
        except ProbeBudgetExhausted:
            if self.tracer is not None:
                self.tracer.record_event(
                    "budget_exhausted", budget=self.budget.describe()
                )
            raise

    def execute_probe(
        self,
        query: BoundQuery,
        worker_id: int | None = None,
        queue_wait_s: float | None = None,
    ) -> ProbeOutcome:
        """Run one admitted probe against the backend and charge the budget.

        Thread-safe and side-effect-free on the evaluator itself (stats,
        cache, and trace are updated by :meth:`apply_probe`); this is the
        only step :class:`~repro.parallel.ParallelProbeExecutor` runs on
        worker threads.  The budget reservation taken by
        :meth:`admit_probe` is cancelled if the backend raises.
        """
        started = time.perf_counter()
        try:
            alive = self.backend.is_alive(query)
            wall = time.perf_counter() - started
            simulated = 0.0
            if self.cost_model is not None:
                simulated = self.cost_model.cost(query)
        except BaseException:
            if self.budget is not None:
                self.budget.cancel()
            raise
        if self.budget is not None:
            self.budget.charge(wall_seconds=wall, simulated_seconds=simulated)
        return ProbeOutcome(
            alive=alive,
            wall_seconds=wall,
            simulated_seconds=simulated,
            worker_id=worker_id,
            queue_wait_s=queue_wait_s,
        )

    def apply_probe(self, query: BoundQuery, outcome: ProbeOutcome) -> bool:
        """Fold one executed probe into stats, caches (L1 + L2), and trace."""
        level = query.tree.size
        with self._lock:
            self.stats.queries_executed += 1
            if self.use_cache:
                self.stats.cache_misses += 1
            self.stats.wall_time += outcome.wall_seconds
            self.stats.simulated_time += outcome.simulated_seconds
            self.stats.executed_by_level[level] = (
                self.stats.executed_by_level.get(level, 0) + 1
            )
            if self.use_cache:
                self._cache_insert_locked(query, outcome.alive)
        if self.use_cache and self.probe_cache is not None:
            # Write-through outside the evaluator lock (the store locks
            # itself): every executed probe lands in the persistent tier,
            # so a second session over the same dataset starts fully warm.
            self.probe_cache.put(query, outcome.alive)
        if self.tracer is not None:
            self._trace(
                query,
                outcome.alive,
                cache_hit=False,
                wall=outcome.wall_seconds,
                simulated=outcome.simulated_seconds,
                worker_id=outcome.worker_id,
                queue_wait_s=outcome.queue_wait_s,
                cache_tier="backend",
            )
        return outcome.alive

    # ----------------------------------------------------------- probing
    def is_alive(self, query: BoundQuery) -> bool:
        """Answer an aliveness probe, counting one executed query on a miss.

        Raises :class:`~repro.obs.budget.ProbeBudgetExhausted` *before*
        touching the backend when the budget is spent; cached answers are
        served regardless (they cost nothing).
        """
        cached = self.lookup_cached(query)
        if cached is not None:
            return cached
        self.admit_probe()
        outcome = self.execute_probe(query)
        return self.apply_probe(query, outcome)

    def probe_many(
        self,
        queries: Sequence[BoundQuery],
        executor: BatchExecutor | None = None,
    ) -> ProbeBatch:
        """Evaluate a batch of independent probes, budget-safely.

        Without an ``executor`` this is a serial loop of :meth:`is_alive`
        that converts a mid-batch budget refusal into a truncated
        ``ProbeBatch`` instead of an exception, so callers can apply the
        answered prefix before propagating exhaustion.  With an executor
        the batch is fanned out over its worker pool under the exact same
        admission order, producing byte-identical results and counts.
        """
        if executor is not None:
            return executor.run_batch(self, queries)
        batch = ProbeBatch()
        for query in queries:
            try:
                batch.results.append(self.is_alive(query))
            except ProbeBudgetExhausted:
                batch.exhausted = True
                break
        return batch

    # --------------------------------------------------------- housekeeping
    def reset_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = EvaluationStats()

    @property
    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)
