"""A database instance: one table per relation of a schema graph."""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relational.schema import SchemaError, SchemaGraph
from repro.relational.table import Table


class IntegrityError(ValueError):
    """Raised by :meth:`Database.validate` on foreign-key violations."""


class Database:
    """Tables for every relation of a frozen :class:`SchemaGraph`.

    The database owns the data that both executors (the in-memory engine and
    the sqlite3 backend) and the inverted index read.  It deliberately has no
    update log or transactions: the paper's system operates on a fixed
    snapshot (the lattice is generated offline against it).
    """

    def __init__(self, schema: SchemaGraph):
        if not schema.frozen:
            raise SchemaError("database requires a frozen schema graph")
        self.schema = schema
        self.tables: dict[str, Table] = {
            name: Table(relation) for name, relation in schema.relations.items()
        }

    # -------------------------------------------------------------- loading
    def table(self, relation: str) -> Table:
        try:
            return self.tables[relation]
        except KeyError:
            raise SchemaError(f"unknown relation {relation!r}") from None

    def insert(self, relation: str, row: Sequence[Any]) -> int:
        return self.table(relation).insert(row)

    def insert_dict(self, relation: str, values: Mapping[str, Any]) -> int:
        return self.table(relation).insert_dict(dict(values))

    def load(self, data: Mapping[str, Iterable[Sequence[Any]]]) -> None:
        """Bulk-load ``{relation: rows}``."""
        for relation, rows in data.items():
            self.table(relation).extend(rows)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        """Total number of tuples across all tables."""
        return sum(len(table) for table in self.tables.values())

    def iter_tables(self) -> Iterator[Table]:
        for name in sorted(self.tables):
            yield self.tables[name]

    def cardinalities(self) -> dict[str, int]:
        return {name: len(self.tables[name]) for name in sorted(self.tables)}

    def validate(self) -> None:
        """Check every declared foreign key; raise on the first violation."""
        for foreign_key in self.schema.foreign_keys.values():
            child = self.table(foreign_key.child)
            parent = self.table(foreign_key.parent)
            violations = child.validate_foreign_key(
                foreign_key.child_column, parent, foreign_key.parent_column
            )
            if violations:
                raise IntegrityError(
                    f"foreign key {foreign_key.name!r} violated by "
                    f"{len(violations)} row(s) of {foreign_key.child!r} "
                    f"(first row id: {violations[0]})"
                )

    def fingerprint(self) -> str:
        """Content hash of the schema and every tuple (hex, stable).

        This is the dataset identity the persistent probe cache
        (:mod:`repro.cache`) keys on: two databases with the same schema
        and the same rows -- regardless of how they were built -- share
        a fingerprint, and any insert changes it, which is exactly the
        invalidation granularity a cached aliveness answer needs (one
        new tuple can flip any probe from dead to alive).

        Computed fresh on every call (tables are append-mostly and the
        hash is linear in the data); callers that need it repeatedly
        should hold on to the string.
        """
        hasher = hashlib.sha256()
        for name in sorted(self.schema.relations):
            relation = self.schema.relations[name]
            hasher.update(b"R")
            hasher.update(name.encode("utf-8"))
            for attribute in relation.attributes:
                hasher.update(
                    f"|{attribute.name}:{attribute.type.value}".encode("utf-8")
                )
        for fk_name in sorted(self.schema.foreign_keys):
            foreign_key = self.schema.foreign_keys[fk_name]
            hasher.update(
                f"F{fk_name}:{foreign_key.child}.{foreign_key.child_column}"
                f"->{foreign_key.parent}.{foreign_key.parent_column}".encode(
                    "utf-8"
                )
            )
        for table in self.iter_tables():
            hasher.update(f"T{table.relation.name}:{len(table)}".encode("utf-8"))
            for row in table:
                hasher.update(repr(row).encode("utf-8"))
        return hasher.hexdigest()

    def summary(self) -> str:
        """Human-readable one-line-per-table summary."""
        lines = [f"Database: {len(self.tables)} tables, {len(self)} tuples"]
        for name in sorted(self.tables):
            lines.append(f"  {name:<24} {len(self.tables[name]):>8} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(tables={len(self.tables)}, tuples={len(self)})"
