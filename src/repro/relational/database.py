"""A database instance: one table per relation of a schema graph."""

from __future__ import annotations

import enum
import hashlib
import itertools
import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relational.schema import SchemaError, SchemaGraph
from repro.relational.table import Table

#: Distinguishes Database instances built in the same process; combined
#: with the pid it yields a lineage token unique across the processes
#: sharing one cache file.
_LINEAGE_IDS = itertools.count()


class IntegrityError(ValueError):
    """Raised by :meth:`Database.validate` on foreign-key violations."""


class MutationDirection(enum.Enum):
    """How a relation's content moved between two snapshots.

    The direction is what makes cache *repair* sound instead of eviction:
    an insert can only flip a probe dead -> alive (monotone upward through
    rule R2), a delete only alive -> dead, so knowing the direction tells
    exactly which cached answers survive.  ``MIXED`` covers both genuine
    interleavings and the cases where direction cannot be proven (foreign
    lineage, counter regressions) -- the safe fallback is full eviction.
    """

    INSERT_ONLY = "insert_only"
    DELETE_ONLY = "delete_only"
    MIXED = "mixed"


@dataclass(frozen=True)
class RelationState:
    """Identity of one relation at snapshot time."""

    relation: str
    fingerprint: str
    row_count: int
    inserts_total: int
    deletes_total: int


@dataclass(frozen=True)
class DatabaseSnapshot:
    """Per-relation fingerprints plus the composite, frozen at one moment.

    ``lineage`` identifies the live :class:`Database` object the snapshot
    was taken from: mutation counters are only comparable within one
    lineage (a rebuilt database restarts them), so
    :meth:`DatabaseDelta.between` downgrades cross-lineage changes to
    ``MIXED`` rather than guessing a direction.
    """

    composite: str
    lineage: str
    relations: tuple[RelationState, ...]

    def by_relation(self) -> dict[str, RelationState]:
        return {state.relation: state for state in self.relations}


@dataclass(frozen=True)
class DatabaseDelta:
    """Which relations changed between two snapshots, and in which direction."""

    old_composite: str
    new_composite: str
    directions: Mapping[str, MutationDirection]

    @property
    def empty(self) -> bool:
        return not self.directions

    @property
    def mutated_relations(self) -> frozenset[str]:
        return frozenset(self.directions)

    def direction_of(self, relation: str) -> MutationDirection | None:
        """Direction for ``relation``, or None when it did not change."""
        return self.directions.get(relation)

    @staticmethod
    def between(old: DatabaseSnapshot, new: DatabaseSnapshot) -> "DatabaseDelta":
        """Compare two snapshots relation by relation.

        A relation whose content fingerprint is unchanged is absent from
        the delta even if its counters moved (insert-then-delete of the
        same row restores identical content, and identity tracks
        content).  Directions are inferred from the monotone counters
        only when both snapshots come from the same lineage and the
        counters moved along exactly one axis; anything else is
        ``MIXED``.
        """
        directions: dict[str, MutationDirection] = {}
        old_states = old.by_relation()
        same_lineage = old.lineage == new.lineage
        for state in new.relations:
            before = old_states.get(state.relation)
            if before is None:
                directions[state.relation] = MutationDirection.MIXED
                continue
            if before.fingerprint == state.fingerprint:
                continue
            if not same_lineage:
                directions[state.relation] = MutationDirection.MIXED
            elif (
                state.inserts_total > before.inserts_total
                and state.deletes_total == before.deletes_total
            ):
                directions[state.relation] = MutationDirection.INSERT_ONLY
            elif (
                state.deletes_total > before.deletes_total
                and state.inserts_total == before.inserts_total
            ):
                directions[state.relation] = MutationDirection.DELETE_ONLY
            else:
                directions[state.relation] = MutationDirection.MIXED
        for state in old.relations:
            if state.relation not in {s.relation for s in new.relations}:
                directions[state.relation] = MutationDirection.MIXED
        return DatabaseDelta(
            old_composite=old.composite,
            new_composite=new.composite,
            directions=directions,
        )


class Database:
    """Tables for every relation of a frozen :class:`SchemaGraph`.

    The database owns the data that both executors (the in-memory engine and
    the sqlite3 backend) and the inverted index read.  It has no update log
    or transactions, but it *does* track identity at the granularity that
    invalidation needs: every table memoizes its own content fingerprint
    (invalidated by that table's mutations only) and the composite
    :meth:`fingerprint` is derived from the per-relation digests, so one
    insert into ``publication`` never forces ``person`` to rehash -- and
    never invalidates a cached answer that only touches ``person``.
    """

    def __init__(self, schema: SchemaGraph):
        if not schema.frozen:
            raise SchemaError("database requires a frozen schema graph")
        self.schema = schema
        self.tables: dict[str, Table] = {
            name: Table(relation) for name, relation in schema.relations.items()
        }
        self.lineage = f"{os.getpid()}.{next(_LINEAGE_IDS)}"
        self._schema_digest: str | None = None

    # -------------------------------------------------------------- loading
    def table(self, relation: str) -> Table:
        try:
            return self.tables[relation]
        except KeyError:
            raise SchemaError(f"unknown relation {relation!r}") from None

    def insert(self, relation: str, row: Sequence[Any]) -> int:
        return self.table(relation).insert(row)

    def insert_dict(self, relation: str, values: Mapping[str, Any]) -> int:
        return self.table(relation).insert_dict(dict(values))

    def delete(self, relation: str, row_id: int) -> tuple[Any, ...]:
        """Remove and return one row of ``relation`` by position."""
        return self.table(relation).delete(row_id)

    def load(self, data: Mapping[str, Iterable[Sequence[Any]]]) -> None:
        """Bulk-load ``{relation: rows}``."""
        for relation, rows in data.items():
            self.table(relation).extend(rows)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        """Total number of tuples across all tables."""
        return sum(len(table) for table in self.tables.values())

    def iter_tables(self) -> Iterator[Table]:
        for name in sorted(self.tables):
            yield self.tables[name]

    def cardinalities(self) -> dict[str, int]:
        return {name: len(self.tables[name]) for name in sorted(self.tables)}

    def validate(self) -> None:
        """Check every declared foreign key; raise on the first violation."""
        for foreign_key in self.schema.foreign_keys.values():
            child = self.table(foreign_key.child)
            parent = self.table(foreign_key.parent)
            violations = child.validate_foreign_key(
                foreign_key.child_column, parent, foreign_key.parent_column
            )
            if violations:
                raise IntegrityError(
                    f"foreign key {foreign_key.name!r} violated by "
                    f"{len(violations)} row(s) of {foreign_key.child!r} "
                    f"(first row id: {violations[0]})"
                )

    # --------------------------------------------------------- fingerprints
    def schema_digest(self) -> str:
        """Content hash of the schema (relations, attributes, foreign keys).

        The schema graph is frozen, so this is computed once and memoized.
        """
        if self._schema_digest is None:
            hasher = hashlib.sha256()
            for name in sorted(self.schema.relations):
                relation = self.schema.relations[name]
                hasher.update(b"R")
                hasher.update(name.encode("utf-8"))
                for attribute in relation.attributes:
                    hasher.update(
                        f"|{attribute.name}:{attribute.type.value}".encode("utf-8")
                    )
            for fk_name in sorted(self.schema.foreign_keys):
                foreign_key = self.schema.foreign_keys[fk_name]
                hasher.update(
                    f"F{fk_name}:{foreign_key.child}.{foreign_key.child_column}"
                    f"->{foreign_key.parent}.{foreign_key.parent_column}".encode(
                        "utf-8"
                    )
                )
            self._schema_digest = hasher.hexdigest()
        return self._schema_digest

    def relation_fingerprints(self) -> dict[str, str]:
        """Per-relation content digests (memoized per table, sorted keys).

        This is the identity vector the probe cache keys on: a probe
        touching relations ``{person}`` stays valid across any mutation
        that leaves ``person``'s digest unchanged.
        """
        return {
            name: self.tables[name].fingerprint() for name in sorted(self.tables)
        }

    def fingerprint(self) -> str:
        """Composite content hash of the schema and every tuple (hex, stable).

        Derived from the memoized per-relation digests
        (:meth:`relation_fingerprints`), so repeated calls after a single
        insert rehash only the mutated table; two databases with the same
        schema and the same rows -- regardless of how they were built --
        share a fingerprint.
        """
        hasher = hashlib.sha256()
        hasher.update(self.schema_digest().encode("utf-8"))
        for name, digest in self.relation_fingerprints().items():
            hasher.update(f"|{name}:{digest}".encode("utf-8"))
        return hasher.hexdigest()

    def snapshot(self) -> DatabaseSnapshot:
        """Freeze the identity vector (composite + per-relation states).

        Cheap after the first call per mutation burst: table digests are
        memoized, and the counters are plain attribute reads.
        """
        states = tuple(
            RelationState(
                relation=name,
                fingerprint=table.fingerprint(),
                row_count=len(table),
                inserts_total=table.inserts_total,
                deletes_total=table.deletes_total,
            )
            for name, table in ((n, self.tables[n]) for n in sorted(self.tables))
        )
        return DatabaseSnapshot(
            composite=self.fingerprint(), lineage=self.lineage, relations=states
        )

    def summary(self) -> str:
        """Human-readable one-line-per-table summary."""
        lines = [f"Database: {len(self.tables)} tables, {len(self)} tuples"]
        for name in sorted(self.tables):
            lines.append(f"  {name:<24} {len(self.tables[name]):>8} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(tables={len(self.tables)}, tuples={len(self)})"
