"""Keyword predicates applied to the text attributes of a relation instance.

The paper instantiates each lattice node's WHERE clause with predicates of the
form ``R.a LIKE '%kw%'`` (substring match) while mapping keywords to tables
through a Lucene index (token match).  Both semantics are supported here and
selected by :class:`MatchMode`; the inverted index and the executors must be
configured with the *same* mode so that "keyword k maps to relation R" and
"the predicate on R matches at least one row" stay consistent.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import lru_cache

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


class MatchMode(enum.Enum):
    """How a keyword matches a text cell."""

    TOKEN = "token"
    """Whole-token match after casefolding and splitting on non-alphanumerics.

    Matches the behaviour of the inverted index and is the default.
    """

    SUBSTRING = "substring"
    """Case-insensitive substring match -- the paper's ``LIKE '%kw%'``."""


def tokenize(text: str) -> list[str]:
    """Casefolded alphanumeric tokens of ``text``.

    This is the single tokenizer shared by the inverted index, the predicates
    and the dataset generators, so all components agree on what a keyword is.
    ``str.casefold()``, not ``str.lower()``: full Unicode case folding is
    what makes "STRASSE" and "straße" the same token ("strasse"), where
    lowercasing leaves the latter as "straße" and the two never meet.
    """
    return _TOKEN_PATTERN.findall(text.casefold())


@lru_cache(maxsize=4096)
def _normalized(keyword: str) -> str:
    return keyword.casefold()


def cell_matches(keyword: str, text: str, mode: MatchMode) -> bool:
    """True if ``keyword`` matches one text cell under ``mode``."""
    needle = _normalized(keyword)
    if mode is MatchMode.SUBSTRING:
        return needle in text.casefold()
    return needle in tokenize(text)


@dataclass(frozen=True)
class KeywordPredicate:
    """``keyword`` must occur in at least one searchable attribute of a row.

    This is the disjunction the paper writes as
    ``R.a1 LIKE '%kw%' OR R.a2 LIKE '%kw%' OR ...`` over the text attributes
    of ``R``.  The predicate is attached to a relation *instance* of a join
    tree, not to the relation itself, because two instances of the same
    relation can carry different keywords.
    """

    keyword: str
    mode: MatchMode = MatchMode.TOKEN

    def __post_init__(self) -> None:
        if not self.keyword or not self.keyword.strip():
            raise ValueError("keyword predicate requires a non-empty keyword")

    def matches_row(self, cells: list[tuple[str, str]]) -> bool:
        """Evaluate against ``(column, text)`` pairs of one row."""
        return any(cell_matches(self.keyword, text, self.mode) for _, text in cells)

    def sql_condition(self, alias: str, columns: tuple[str, ...]) -> str:
        """Render the disjunction as a SQL condition for ``alias``.

        Both modes render through SQL functions the sqlite backend
        registers (``TOKEN_MATCH``, ``SUBSTRING_MATCH``) that delegate to
        :func:`cell_matches`, so the Python engine and the SQL backend
        share one matching semantics -- including Unicode case folding,
        which sqlite's ASCII-only ``LOWER()``/``LIKE`` cannot express
        (the paper's ``LIKE '%kw%'`` form survives in spirit as the
        substring semantics of :func:`cell_matches`).
        """
        if not columns:
            return "0 = 1"
        from repro.relational.identifiers import quote_identifier

        escaped = self.keyword.replace("'", "''")
        quoted_alias = quote_identifier(alias)
        quoted = [quote_identifier(column) for column in columns]
        function = (
            "SUBSTRING_MATCH" if self.mode is MatchMode.SUBSTRING else "TOKEN_MATCH"
        )
        parts = [
            f"{function}('{escaped.casefold()}', {quoted_alias}.{column})"
            for column in quoted
        ]
        return "(" + " OR ".join(parts) + ")"
