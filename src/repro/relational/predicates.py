"""Keyword predicates applied to the text attributes of a relation instance.

The paper instantiates each lattice node's WHERE clause with predicates of the
form ``R.a LIKE '%kw%'`` (substring match) while mapping keywords to tables
through a Lucene index (token match).  Both semantics are supported here and
selected by :class:`MatchMode`; the inverted index and the executors must be
configured with the *same* mode so that "keyword k maps to relation R" and
"the predicate on R matches at least one row" stay consistent.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from functools import lru_cache

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


class MatchMode(enum.Enum):
    """How a keyword matches a text cell."""

    TOKEN = "token"
    """Whole-token match after lowercasing and splitting on non-alphanumerics.

    Matches the behaviour of the inverted index and is the default.
    """

    SUBSTRING = "substring"
    """Case-insensitive substring match -- the paper's ``LIKE '%kw%'``."""


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens of ``text``.

    This is the single tokenizer shared by the inverted index, the predicates
    and the dataset generators, so all components agree on what a keyword is.
    """
    return _TOKEN_PATTERN.findall(text.lower())


@lru_cache(maxsize=4096)
def _normalized(keyword: str) -> str:
    return keyword.lower()


def cell_matches(keyword: str, text: str, mode: MatchMode) -> bool:
    """True if ``keyword`` matches one text cell under ``mode``."""
    needle = _normalized(keyword)
    if mode is MatchMode.SUBSTRING:
        return needle in text.lower()
    return needle in tokenize(text)


@dataclass(frozen=True)
class KeywordPredicate:
    """``keyword`` must occur in at least one searchable attribute of a row.

    This is the disjunction the paper writes as
    ``R.a1 LIKE '%kw%' OR R.a2 LIKE '%kw%' OR ...`` over the text attributes
    of ``R``.  The predicate is attached to a relation *instance* of a join
    tree, not to the relation itself, because two instances of the same
    relation can carry different keywords.
    """

    keyword: str
    mode: MatchMode = MatchMode.TOKEN

    def __post_init__(self) -> None:
        if not self.keyword or not self.keyword.strip():
            raise ValueError("keyword predicate requires a non-empty keyword")

    def matches_row(self, cells: list[tuple[str, str]]) -> bool:
        """Evaluate against ``(column, text)`` pairs of one row."""
        return any(cell_matches(self.keyword, text, self.mode) for _, text in cells)

    def sql_condition(self, alias: str, columns: tuple[str, ...]) -> str:
        """Render the disjunction as a SQL condition for ``alias``.

        Token mode renders to the same LIKE pattern wrapped with delimiters is
        not expressible portably, so token mode is rendered via LIKE with the
        keyword padded by word boundaries emulated in the sqlite backend by a
        registered ``TOKEN_MATCH`` function; substring mode renders to plain
        ``LIKE '%kw%'``.
        """
        if not columns:
            return "0 = 1"
        from repro.relational.identifiers import quote_identifier

        escaped = self.keyword.replace("'", "''")
        quoted_alias = quote_identifier(alias)
        quoted = [quote_identifier(column) for column in columns]
        if self.mode is MatchMode.SUBSTRING:
            parts = [
                f"LOWER({quoted_alias}.{column}) LIKE '%{escaped.lower()}%'"
                for column in quoted
            ]
        else:
            parts = [
                f"TOKEN_MATCH('{escaped.lower()}', {quoted_alias}.{column})"
                for column in quoted
            ]
        return "(" + " OR ".join(parts) + ")"
