"""Observability + robustness layer for the probe path (``repro.obs``).

Two orthogonal facilities, both threaded through
:class:`~repro.relational.evaluator.InstrumentedEvaluator` and therefore
visible to every traversal strategy, interactive session, and benchmark:

* :class:`ProbeBudget` -- a hard cap on probing work (executed queries
  and/or a deadline in simulated or wall seconds).  When the budget is
  exhausted the evaluator raises :class:`ProbeBudgetExhausted` and the
  sweep in progress stops cleanly with a *partial* result: every
  classification it does report is identical to an unbudgeted run
  (anytime semantics -- R1/R2 closure never guesses), the rest stays
  "possibly alive".

* :class:`ProbeTracer` -- a ring-buffer span/event recorder.  Each
  executed (or cache-answered) probe becomes one :class:`ProbeSpan`
  carrying lattice level, keywords, backend, wall + simulated cost,
  cache hit/miss, and remaining budget; traces export as JSON-lines
  (``repro trace``) and aggregate per level / per strategy.

A third, standalone facility serves the scale benchmark:
:class:`MemoryTracker` (:mod:`repro.obs.memory`) scopes a tracemalloc
allocation high-water to one phase, which is how ``repro bench scale``
shows the disk-backed index keeping the Python heap flat at 10^6 tuples.

Exported traces can additionally be checked against *runtime*
invariants -- budget caps, free cache hits, per-segment accounting, pool
release -- via :mod:`repro.obs.invariants` (``repro trace check``).
"""

from repro.obs.budget import ProbeBudget, ProbeBudgetExhausted
from repro.obs.invariants import (
    InvariantViolation,
    check_trace_file,
    check_trace_lines,
    check_trace_records,
)
from repro.obs.memory import MemorySample, MemoryTracker, peak_rss_bytes
from repro.obs.trace import (
    ProbeSpan,
    ProbeTracer,
    TraceEvent,
    TraceValidationError,
    validate_trace_file,
    validate_trace_record,
)

__all__ = [
    "InvariantViolation",
    "MemorySample",
    "MemoryTracker",
    "ProbeBudget",
    "ProbeBudgetExhausted",
    "ProbeSpan",
    "ProbeTracer",
    "TraceEvent",
    "TraceValidationError",
    "check_trace_file",
    "check_trace_lines",
    "check_trace_records",
    "peak_rss_bytes",
    "validate_trace_file",
    "validate_trace_record",
]
