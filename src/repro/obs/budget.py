"""Probe budgets: bounded-latency guarantees for the probe path.

A :class:`ProbeBudget` caps how much probing work one sweep may spend,
along any combination of three axes:

* ``max_queries`` -- number of probes that reach the backend (cache hits
  are free: answering from the reuse cache costs no SQL);
* ``max_simulated_seconds`` -- cumulative deterministic cost-model time,
  so budgeted figure runs are reproducible across machines;
* ``max_wall_seconds`` -- cumulative measured backend time.

The evaluator calls :meth:`admit` before each backend execution and
:meth:`charge` after it.  ``admit`` raises :class:`ProbeBudgetExhausted`
once a limit is reached; because the check happens *before* execution, a
budget of ``max_queries=N`` can never execute more than ``N`` queries.

One budget may throttle many worker threads at once (see
:mod:`repro.parallel`): all accounting happens under an internal lock,
and ``admit`` *reserves* a slot on the query axis (tracked in
``in_flight``) that :meth:`charge` settles or :meth:`cancel` releases.
The reservation is what keeps ``max_queries=N`` a hard cap even when N
probes are admitted before any of them finishes; the time axes cannot be
reserved (a probe's cost is unknown until it ran), so under concurrency
they may overshoot by at most the probes already in flight.

Exhaustion is graceful by design: the traversal strategies catch the
exception, keep every classification already derived (those are exactly
what an unbudgeted run would report -- R1/R2 closure only ever records
implications of executed probes), and flag the result ``exhausted``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


class ProbeBudgetExhausted(RuntimeError):
    """A probe was refused because its :class:`ProbeBudget` is spent."""

    def __init__(self, budget: "ProbeBudget") -> None:
        super().__init__(f"probe budget exhausted: {budget.describe()}")
        self.budget = budget


@dataclass
class ProbeBudget:
    """Mutable accounting of probing work against fixed limits.

    A limit of ``None`` means "unlimited" along that axis; a budget with
    all limits ``None`` never refuses anything.  One budget instance is
    meant to cover one logical unit of work (a traversal run, a debug
    session); share it across evaluators -- or across the worker threads
    of a :class:`~repro.parallel.ParallelProbeExecutor` -- to bound their
    combined effort.
    """

    max_queries: int | None = None
    max_simulated_seconds: float | None = None
    max_wall_seconds: float | None = None

    queries_used: int = field(default=0, init=False)
    simulated_used: float = field(default=0.0, init=False)
    wall_used: float = field(default=0.0, init=False)
    #: Probes admitted but not yet charged (executing on some worker).
    in_flight: int = field(default=0, init=False)
    #: Number of probes refused by :meth:`admit` -- nonzero iff the
    #: budget actually bound some sweep.
    denied: int = field(default=0, init=False)
    #: Flipped by :meth:`abort`: every later admission is refused, so
    #: the sweep in progress stops at its next backend probe with the
    #: same graceful partial-result semantics as real exhaustion.  This
    #: is how the service layer cancels a running session without
    #: touching strategy control flow.
    aborted: bool = field(default=False, init=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_queries is not None and self.max_queries < 0:
            raise ValueError("max_queries must be >= 0")
        if self.max_simulated_seconds is not None and self.max_simulated_seconds < 0:
            raise ValueError("max_simulated_seconds must be >= 0")
        if self.max_wall_seconds is not None and self.max_wall_seconds < 0:
            raise ValueError("max_wall_seconds must be >= 0")

    # -------------------------------------------------------------- queries
    @property
    def unlimited(self) -> bool:
        return (
            self.max_queries is None
            and self.max_simulated_seconds is None
            and self.max_wall_seconds is None
        )

    def _exhausted_locked(self) -> bool:
        if self.aborted:
            return True
        if (
            self.max_queries is not None
            and self.queries_used + self.in_flight >= self.max_queries
        ):
            return True
        if (
            self.max_simulated_seconds is not None
            and self.simulated_used >= self.max_simulated_seconds
        ):
            return True
        if (
            self.max_wall_seconds is not None
            and self.wall_used >= self.max_wall_seconds
        ):
            return True
        return False

    @property
    def exhausted(self) -> bool:
        """True when the *next* probe may not execute."""
        with self._lock:
            return self._exhausted_locked()

    @property
    def bound(self) -> bool:
        """True once a probe has actually been refused."""
        with self._lock:
            return self.denied > 0

    def remaining_queries(self) -> int | None:
        """Probes left before the query cap bites (``None`` = unlimited).

        In-flight reservations count as spent: they *will* execute.
        """
        if self.max_queries is None:
            return None
        with self._lock:
            return max(0, self.max_queries - self.queries_used - self.in_flight)

    def _describe_locked(self) -> str:
        parts = []
        if self.aborted:
            parts.append("aborted")
        if self.max_queries is not None:
            parts.append(f"{self.queries_used}/{self.max_queries} queries")
        if self.max_simulated_seconds is not None:
            parts.append(
                f"{self.simulated_used:.3f}/{self.max_simulated_seconds:.3f} s simulated"
            )
        if self.max_wall_seconds is not None:
            parts.append(
                f"{self.wall_used:.3f}/{self.max_wall_seconds:.3f} s wall"
            )
        if self.in_flight:
            parts.append(f"{self.in_flight} in flight")
        return ", ".join(parts) if parts else "unlimited"

    def describe(self) -> str:
        with self._lock:
            return self._describe_locked()

    # -------------------------------------------------------------- updates
    def admit(self) -> None:
        """Refuse (raise) if the next backend execution would bust a limit.

        On success one query-axis slot is reserved; the caller must follow
        up with exactly one :meth:`charge` (after executing) or
        :meth:`cancel` (if execution never happened).

        The refusal decision (and the ``denied`` bump) happens atomically
        under the lock; the exception is raised after release because its
        constructor re-reads the budget through :meth:`describe`.
        """
        with self._lock:
            if self._exhausted_locked():
                self.denied += 1
                refused = True
            else:
                self.in_flight += 1
                refused = False
        if refused:
            raise ProbeBudgetExhausted(self)

    def charge(
        self,
        queries: int = 1,
        wall_seconds: float = 0.0,
        simulated_seconds: float = 0.0,
    ) -> None:
        """Account one executed probe's cost, settling its reservation."""
        with self._lock:
            self.in_flight = max(0, self.in_flight - queries)
            self.queries_used += queries
            self.wall_used += wall_seconds
            self.simulated_used += simulated_seconds

    def cancel(self, queries: int = 1) -> None:
        """Release a reservation whose probe never executed (backend error)."""
        with self._lock:
            self.in_flight = max(0, self.in_flight - queries)

    def abort(self) -> None:
        """Refuse every future admission (cooperative cancellation).

        Probes already in flight finish and are charged normally; the
        next :meth:`admit` raises :class:`ProbeBudgetExhausted`, which
        the traversal strategies already turn into a clean partial
        result.  Irreversible for this budget instance (by design: a
        cancelled unit of work must not resume spending).
        """
        with self._lock:
            self.aborted = True

    def reset(self) -> None:
        """Forget all spent work (limits stay); for budget-per-query reuse."""
        with self._lock:
            self.queries_used = 0
            self.simulated_used = 0.0
            self.wall_used = 0.0
            self.in_flight = 0
            self.denied = 0

    def __str__(self) -> str:
        return f"ProbeBudget({self.describe()})"
