"""Phase-scoped memory measurement for the scale benchmark.

The out-of-core claim of the ``sqlite`` index backend is about the
*Python-side* footprint: postings live in a b-tree file, so the heap
high-water of a debugging phase should stay flat as the dataset grows.
:class:`MemoryTracker` measures exactly that with :mod:`tracemalloc` --
``reset_peak()`` on entry, ``get_traced_memory()`` on exit -- yielding a
:class:`MemorySample` whose ``high_water_bytes`` is the phase's
*incremental* allocation peak (peak minus the baseline already resident
when the phase began).  Dataset residency and pre-warmed join indexes
are therefore excluded as long as they are built before the tracked
block, which is what :mod:`repro.bench.scale` does.

``tracemalloc`` cannot see allocations made by C extensions (sqlite's
page cache among them), so the flat-memory gate is deliberately a claim
about Python objects; the OS-level ``ru_maxrss`` peak is carried along
as an informational column only -- it is a process-lifetime high-water
that never decreases, which makes it useless for per-phase gating.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from types import TracebackType


def peak_rss_bytes() -> int:
    """Process-lifetime peak resident set size, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    bytes so callers never branch on the platform.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - mac only
        return int(peak)
    return int(peak) * 1024


@dataclass(frozen=True)
class MemorySample:
    """One tracked phase: its duration and allocation high-water."""

    #: Python heap already traced when the phase started.
    baseline_bytes: int
    #: Absolute tracemalloc peak observed during the phase.
    peak_bytes: int
    #: ``peak - baseline``: the phase's own allocation high-water.
    high_water_bytes: int
    #: Process-lifetime ``ru_maxrss`` at phase end (informational only).
    rss_peak_bytes: int
    #: Wall-clock duration of the phase in seconds.
    seconds: float


class MemoryTracker:
    """Context manager that scopes a tracemalloc peak to one phase.

    Starts tracing on entry if nothing else has (and stops it again on
    exit in that case, so nesting under an outer tracker keeps the outer
    one's trace alive).  The measured :class:`MemorySample` is available
    as :attr:`sample` after the block exits.
    """

    def __init__(self) -> None:
        self.sample: MemorySample | None = None
        self._owns_trace = False
        self._baseline = 0
        self._started = 0.0

    def __enter__(self) -> "MemoryTracker":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_trace = True
        tracemalloc.reset_peak()
        self._baseline, _ = tracemalloc.get_traced_memory()
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        seconds = time.perf_counter() - self._started
        _, peak = tracemalloc.get_traced_memory()
        if self._owns_trace:
            tracemalloc.stop()
            self._owns_trace = False
        self.sample = MemorySample(
            baseline_bytes=self._baseline,
            peak_bytes=peak,
            high_water_bytes=max(0, peak - self._baseline),
            rss_peak_bytes=peak_rss_bytes(),
            seconds=seconds,
        )
