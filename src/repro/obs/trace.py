"""Structured probe tracing: spans, events, JSON-lines, aggregation.

One :class:`ProbeSpan` is recorded per aliveness probe that reaches the
evaluator -- executed probes and cache hits alike, distinguished by the
``cache_hit`` field, so ``sum(not s.cache_hit) == queries_executed``
always holds.  :class:`TraceEvent` records punctual facts (sweep start /
end, budget exhaustion).  Both live in one bounded ring buffer
(:class:`ProbeTracer`): under heavy traffic the newest records win and
``dropped`` counts what fell out, so tracing never grows without bound.

Export is JSON-lines (one record per line, ``kind`` discriminates spans
from events); :func:`validate_trace_record` / :func:`validate_trace_file`
check the schema, and :meth:`ProbeTracer.aggregate` folds spans into
per-level or per-strategy summary rows for reporting.

Wall durations use ``time.perf_counter`` deltas measured by the caller;
no absolute wall-clock timestamps are recorded (the repo-wide
determinism lint bans them outside ``repro.bench``).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Union

DEFAULT_CAPACITY = 65_536

#: JSON-lines schema, by ``kind``: required field -> accepted types.
SPAN_SCHEMA: dict[str, tuple[type, ...]] = {
    "kind": (str,),
    "seq": (int,),
    "level": (int,),
    "keywords": (list,),
    "backend": (str,),
    "alive": (bool,),
    "cache_hit": (bool,),
    "wall_seconds": (int, float),
    "simulated_seconds": (int, float),
}
#: Optional span fields: absent on serial probes, stamped by the parallel
#: executor (``worker_id``, ``queue_wait_s``) or by context/budget.  When
#: present they must still type-check.
SPAN_OPTIONAL_SCHEMA: dict[str, tuple[type, ...]] = {
    "strategy": (str,),
    "budget_remaining": (int,),
    "worker_id": (int,),
    "queue_wait_s": (int, float),
    "cache_tier": (str,),
    "process_id": (int,),
    "shard_id": (int,),
    "session_id": (str,),
}
EVENT_SCHEMA: dict[str, tuple[type, ...]] = {
    "kind": (str,),
    "seq": (int,),
    "name": (str,),
}


class TraceValidationError(ValueError):
    """A JSON-lines trace record does not match the schema."""


@dataclass(frozen=True)
class ProbeSpan:
    """One aliveness probe as seen by the evaluator."""

    seq: int
    level: int
    keywords: tuple[str, ...]
    backend: str
    alive: bool
    cache_hit: bool
    wall_seconds: float
    simulated_seconds: float
    strategy: str | None = None
    budget_remaining: int | None = None
    #: Worker-pool slot that executed the probe (None = serial path).
    worker_id: int | None = None
    #: Seconds the probe sat in the executor queue before a worker
    #: picked it up (None = serial path).
    queue_wait_s: float | None = None
    #: Which tier answered: ``"l1"`` (in-process LRU), ``"l2"``
    #: (persistent store), or ``"backend"`` (executed).  None on spans
    #: recorded before the two-tier cache existed.
    cache_tier: str | None = None
    #: OS pid of the shard worker that ran the probe (None = in-process).
    #: Stamped by the coordinator when it re-records shipped worker spans.
    process_id: int | None = None
    #: Shard whose traversal issued the probe (None = unsharded run).
    shard_id: int | None = None
    #: Service session that issued the probe (None = library/CLI use).
    #: Stamped from the tracer context set by :mod:`repro.service`.
    session_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "kind": "span",
            "seq": self.seq,
            "level": self.level,
            "keywords": list(self.keywords),
            "backend": self.backend,
            "alive": self.alive,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
        }
        if self.strategy is not None:
            record["strategy"] = self.strategy
        if self.budget_remaining is not None:
            record["budget_remaining"] = self.budget_remaining
        if self.worker_id is not None:
            record["worker_id"] = self.worker_id
        if self.queue_wait_s is not None:
            record["queue_wait_s"] = self.queue_wait_s
        if self.cache_tier is not None:
            record["cache_tier"] = self.cache_tier
        if self.process_id is not None:
            record["process_id"] = self.process_id
        if self.shard_id is not None:
            record["shard_id"] = self.shard_id
        if self.session_id is not None:
            record["session_id"] = self.session_id
        return record


@dataclass(frozen=True)
class TraceEvent:
    """A punctual fact (sweep start/end, budget exhaustion, ...)."""

    seq: int
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "event", "seq": self.seq, "name": self.name, **self.attrs}


TraceRecord = Union[ProbeSpan, TraceEvent]


class ProbeTracer:
    """Bounded recorder of probe spans and events.

    ``context`` attributes (e.g. the running strategy's name, set by
    :meth:`~repro.core.traversal.base.TraversalStrategy.run`) are stamped
    onto every span recorded while they are set, so one tracer can span
    many runs and still aggregate per strategy.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        listener: Callable[[TraceRecord], None] | None = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._context: dict[str, Any] = {}  # guarded-by: _lock
        # Invoked under the record lock so delivery order matches the
        # assigned seq even when worker threads record concurrently; the
        # callback must not call back into this tracer.
        self._listener = listener  # guarded-by: _lock
        # Sequence assignment + append must be atomic: spans may be
        # recorded from worker threads (see repro.parallel).
        self._lock = threading.Lock()

    def set_listener(
        self, listener: Callable[[TraceRecord], None] | None
    ) -> None:
        """Attach (or detach) a live record subscriber.

        Every span/event recorded afterwards is handed to ``listener``
        immediately after entering the ring, in seq order.  Unlike the
        bounded ring, the listener sees *every* record -- it is how the
        service layer keeps a gap-free per-session event log even when
        the ring wraps.
        """
        with self._lock:
            self._listener = listener

    # ------------------------------------------------------------- context
    def set_context(self, **attrs: Any) -> None:
        """Set (value) or clear (``None``) attributes stamped on new spans."""
        with self._lock:
            for key, value in attrs.items():
                if value is None:
                    self._context.pop(key, None)
                else:
                    self._context[key] = value

    @property
    def context(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._context)

    # ----------------------------------------------------------- recording
    def _next_seq_locked(self) -> int:
        seq = self._seq
        self._seq += 1
        if len(self._records) == self.capacity:
            self.dropped += 1
        return seq

    def record_probe(
        self,
        *,
        level: int,
        keywords: Iterable[str],
        backend: str,
        alive: bool,
        cache_hit: bool,
        wall_seconds: float,
        simulated_seconds: float,
        budget_remaining: int | None = None,
        worker_id: int | None = None,
        queue_wait_s: float | None = None,
        cache_tier: str | None = None,
        process_id: int | None = None,
        shard_id: int | None = None,
    ) -> ProbeSpan:
        with self._lock:
            span = ProbeSpan(
                seq=self._next_seq_locked(),
                level=level,
                keywords=tuple(sorted(keywords)),
                backend=backend,
                alive=alive,
                cache_hit=cache_hit,
                wall_seconds=wall_seconds,
                simulated_seconds=simulated_seconds,
                strategy=self._context.get("strategy"),
                budget_remaining=budget_remaining,
                worker_id=worker_id,
                queue_wait_s=queue_wait_s,
                cache_tier=cache_tier,
                process_id=process_id,
                shard_id=shard_id,
                session_id=self._context.get("session_id"),
            )
            self._records.append(span)
            if self._listener is not None:
                self._listener(span)
        return span

    def record_event(self, name: str, **attrs: Any) -> TraceEvent:
        with self._lock:
            # Events inherit the session context the same way spans do,
            # so a per-session trace attributes every record without the
            # emitters having to thread the id through.
            if "session_id" in self._context and "session_id" not in attrs:
                attrs["session_id"] = self._context["session_id"]
            event = TraceEvent(seq=self._next_seq_locked(), name=name, attrs=attrs)
            self._records.append(event)
            if self._listener is not None:
                self._listener(event)
        return event

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._seq = 0
            self.dropped = 0

    # ------------------------------------------------------------- reading
    @property
    def records(self) -> list[TraceRecord]:
        with self._lock:
            return list(self._records)

    @property
    def spans(self) -> list[ProbeSpan]:
        return [r for r in self.records if isinstance(r, ProbeSpan)]

    @property
    def events(self) -> list[TraceEvent]:
        return [r for r in self.records if isinstance(r, TraceEvent)]

    @property
    def span_count(self) -> int:
        return sum(1 for r in self.records if isinstance(r, ProbeSpan))

    @property
    def executed_span_count(self) -> int:
        """Spans that reached the backend (``== queries_executed``)."""
        return sum(
            1
            for r in self.records
            if isinstance(r, ProbeSpan) and not r.cache_hit
        )

    # -------------------------------------------------------------- export
    def iter_jsonl(self) -> Iterator[str]:
        for record in self.records:
            yield json.dumps(record.to_dict(), sort_keys=True)

    def to_jsonl(self) -> str:
        return "\n".join(self.iter_jsonl())

    def write_jsonl(self, path: str) -> int:
        """Write all records to ``path`` atomically; returns the count.

        The write goes through :func:`repro.ioutil.atomic_write_text` so a
        crash mid-export never leaves a half-written trace for ``repro
        trace check`` to stumble over.
        """
        from repro.ioutil import atomic_write_text

        lines = list(self.iter_jsonl())
        atomic_write_text(path, "".join(line + "\n" for line in lines))
        return len(lines)

    # --------------------------------------------------------- aggregation
    def aggregate(self, key: str = "level") -> list[dict[str, Any]]:
        """Fold spans into summary rows grouped by ``level``, ``strategy``,
        ``worker_id``, ``process_id``, or ``shard_id``.

        Each row carries probe/executed/cache-hit counts and total wall +
        simulated seconds; rows sort by group key.
        """
        if key not in (
            "level",
            "strategy",
            "worker_id",
            "process_id",
            "shard_id",
            "session_id",
        ):
            raise ValueError(f"unsupported aggregation key {key!r}")
        groups: dict[Any, dict[str, Any]] = {}
        for span in self.spans:
            group = getattr(span, key)
            if group is None:
                group = "(none)"
            row = groups.setdefault(
                group,
                {
                    key: group,
                    "probes": 0,
                    "executed": 0,
                    "cache_hits": 0,
                    "wall_seconds": 0.0,
                    "simulated_seconds": 0.0,
                },
            )
            row["probes"] += 1
            if span.cache_hit:
                row["cache_hits"] += 1
            else:
                row["executed"] += 1
            row["wall_seconds"] += span.wall_seconds
            row["simulated_seconds"] += span.simulated_seconds
        return [groups[group] for group in sorted(groups, key=str)]


# ------------------------------------------------------------- validation
def validate_trace_record(record: Any) -> str:
    """Check one decoded JSON-lines record; returns its ``kind``."""
    if not isinstance(record, dict):
        raise TraceValidationError(f"record is not an object: {record!r}")
    kind = record.get("kind")
    if kind == "span":
        schema = SPAN_SCHEMA
    elif kind == "event":
        schema = EVENT_SCHEMA
    else:
        raise TraceValidationError(f"unknown record kind {kind!r}")
    for name, types in schema.items():
        if name not in record:
            raise TraceValidationError(f"{kind} record missing field {name!r}")
        value = record[name]
        # bool is an int subclass; reject it where an int/float is expected.
        if isinstance(value, bool) and bool not in types:
            raise TraceValidationError(
                f"{kind} field {name!r} has wrong type bool"
            )
        if not isinstance(value, types):
            raise TraceValidationError(
                f"{kind} field {name!r} has wrong type {type(value).__name__}"
            )
    if kind == "span":
        if not all(isinstance(keyword, str) for keyword in record["keywords"]):
            raise TraceValidationError("span field 'keywords' must be strings")
        for name, types in SPAN_OPTIONAL_SCHEMA.items():
            if name not in record:
                continue
            value = record[name]
            if isinstance(value, bool) or not isinstance(value, types):
                raise TraceValidationError(
                    f"span field {name!r} has wrong type {type(value).__name__}"
                )
    return str(kind)


def validate_trace_lines(lines: Iterable[str]) -> dict[str, int]:
    """Validate JSON-lines content; returns ``{"span": n, "event": m}``."""
    counts = {"span": 0, "event": 0}
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceValidationError(f"line {number}: invalid JSON: {error}")
        try:
            counts[validate_trace_record(record)] += 1
        except TraceValidationError as error:
            raise TraceValidationError(f"line {number}: {error}") from None
    return counts


def validate_trace_file(path: str) -> dict[str, int]:
    """Validate a JSON-lines trace file; returns per-kind record counts."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_lines(handle)
