"""Runtime-invariant checking over exported JSONL traces.

``repro trace check <file>`` replays an exported trace against the
contracts the probe path promises at runtime -- the dynamic complement
to the schema check (:func:`repro.obs.trace.validate_trace_file`), which
only looks at field shapes.  A trace is segmented at
``traversal_start``/``traversal_end`` events (one segment per strategy
run; records outside any segment are legal) and each segment is checked
for:

* **cache hits are free** -- a ``cache_hit`` span records zero wall and
  zero simulated seconds, and its tier is ``l1``/``l2`` (never
  ``backend``); an executed span's tier is ``backend``.
* **budget monotonicity** -- ``budget_remaining`` never increases within
  a segment: admissions and charges only spend.  (Sound because every
  span is recorded by the coordinating thread in submission order; the
  budget may reset *between* segments.)
* **budget cap** -- with an expected ``max_queries``, no segment
  executes more than that many backend probes, and a segment containing
  a ``budget_exhausted`` event must end exhausted.
* **segment accounting** -- ``traversal_end.queries_executed`` and
  ``.cache_hits`` equal the executed / cache-hit span counts of the
  segment.
* **reuse bound** -- a reuse strategy (``buwr``/``tdwr``/``sbh``) caches
  every answer, so it can execute at most ``traversal_start.nodes``
  distinct probes.  (The non-reuse strategies re-execute per MTN by
  design and carry no such bound.  Sharded segments --
  ``traversal_start.sharded`` -- are exempt too: shard cones overlap and
  each shard's cache is private, so a node shared by K shards may
  execute K times.)
* **shard-plan cap** -- a ``shard_plan`` event's per-shard
  ``max_queries`` carvings must sum to at most the parent budget's cap
  (and none may be uncapped under a capped parent): the combined shards
  can never out-spend the budget the caller set.
* **pool release** -- a ``pool_stats`` event (emitted by
  :meth:`repro.core.debugger.NonAnswerDebugger.close`) must show every
  pooled connection checked back in and a peak within the cap.

Service traces (:mod:`repro.service` exports) add three more contracts,
checked whenever the relevant records appear:

* **session-terminal** -- every session that emitted ``session_submitted``
  ends in exactly one terminal event (``session_completed`` /
  ``session_failed`` / ``session_cancelled``), and it is the session's
  last record.
* **session-seq** -- each session's records (keyed by the stamped
  ``session_id``) carry gap-free sequence numbers from 0: the per-session
  tracer starts fresh and its listener-fed log never drops, so a missing
  seq means lost telemetry.
* **service-shutdown** -- a ``service_shutdown`` event must report
  ``active_sessions == 0`` (the drain finished before resources were
  released) and must come after every session's terminal event.

Deliberately *not* checked: duplicate-probe detection by ``(level,
keywords)`` -- two different join trees can share both, so flagging the
pair would be unsound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.trace import validate_trace_lines

#: Strategies whose evaluator caches (the paper's *with reuse* family).
REUSE_STRATEGIES = frozenset({"buwr", "tdwr", "sbh"})


@dataclass(frozen=True)
class InvariantViolation:
    """One broken runtime contract found in a trace."""

    invariant: str
    seq: int | None
    message: str

    def render(self) -> str:
        where = f"seq {self.seq}" if self.seq is not None else "trace"
        return f"{self.invariant} [{where}]: {self.message}"


def _check_span_tiers(
    spans: list[dict[str, Any]], violations: list[InvariantViolation]
) -> None:
    for span in spans:
        tier = span.get("cache_tier")
        if span["cache_hit"]:
            if span["wall_seconds"] != 0 or span["simulated_seconds"] != 0:
                violations.append(
                    InvariantViolation(
                        "cache-hit-free",
                        span["seq"],
                        "cache hit recorded nonzero cost "
                        f"(wall={span['wall_seconds']}, "
                        f"simulated={span['simulated_seconds']})",
                    )
                )
            if tier not in (None, "l1", "l2"):
                violations.append(
                    InvariantViolation(
                        "tier-consistency",
                        span["seq"],
                        f"cache hit carries tier {tier!r}",
                    )
                )
        elif tier not in (None, "backend"):
            violations.append(
                InvariantViolation(
                    "tier-consistency",
                    span["seq"],
                    f"executed span carries cache tier {tier!r}",
                )
            )


def _check_segment(
    start: dict[str, Any],
    end: dict[str, Any] | None,
    spans: list[dict[str, Any]],
    events: list[dict[str, Any]],
    max_queries: int | None,
    violations: list[InvariantViolation],
) -> None:
    executed = sum(1 for span in spans if not span["cache_hit"])
    hits = sum(1 for span in spans if span["cache_hit"])
    strategy = start.get("strategy")

    remaining_seen: int | None = None
    for span in spans:
        remaining = span.get("budget_remaining")
        if remaining is None:
            continue
        if remaining_seen is not None and remaining > remaining_seen:
            violations.append(
                InvariantViolation(
                    "budget-monotone",
                    span["seq"],
                    f"budget_remaining rose {remaining_seen} -> {remaining} "
                    f"within one traversal",
                )
            )
        remaining_seen = remaining

    if max_queries is not None and executed > max_queries:
        violations.append(
            InvariantViolation(
                "budget-cap",
                start["seq"],
                f"{executed} probes executed under max_queries={max_queries}",
            )
        )

    if (
        strategy in REUSE_STRATEGIES
        and isinstance(start.get("nodes"), int)
        and start.get("sharded") is not True
    ):
        if executed > start["nodes"]:
            violations.append(
                InvariantViolation(
                    "reuse-bound",
                    start["seq"],
                    f"reuse strategy {strategy!r} executed {executed} probes "
                    f"over {start['nodes']} nodes",
                )
            )

    exhausted_events = [e for e in events if e["name"] == "budget_exhausted"]
    if end is not None:
        for label, counted in (
            ("queries_executed", executed),
            ("cache_hits", hits),
        ):
            reported = end.get(label)
            if isinstance(reported, int) and reported != counted:
                violations.append(
                    InvariantViolation(
                        "segment-accounting",
                        end["seq"],
                        f"traversal_end reports {label}={reported} but the "
                        f"segment holds {counted} matching spans",
                    )
                )
        if exhausted_events and end.get("exhausted") is False:
            violations.append(
                InvariantViolation(
                    "budget-cap",
                    end["seq"],
                    "budget_exhausted fired but traversal_end is not "
                    "marked exhausted",
                )
            )


#: Budget axes a ``shard_plan`` event must justify: (parent attr, shard
#: attr, summing tolerance).  The float tolerance absorbs the rounding
#: of an even time split re-summed across shards.
_SHARD_PLAN_AXES: tuple[tuple[str, str, float], ...] = (
    ("parent_max_queries", "shard_max_queries", 0.0),
    ("parent_max_simulated_seconds", "shard_max_simulated_seconds", 1e-9),
    ("parent_max_wall_seconds", "shard_max_wall_seconds", 1e-9),
)


def _check_shard_plans(
    records: list[dict[str, Any]], violations: list[InvariantViolation]
) -> None:
    """Per-shard budget carvings must stay within the parent cap.

    Checked independently for every capped axis -- queries, simulated
    seconds, and wall seconds: a parent cap with an uncapped shard, or
    shard caps summing above the parent, means k shards could overspend
    the caller's budget by up to k x.
    """
    for record in records:
        if record.get("kind") != "event" or record.get("name") != "shard_plan":
            continue
        for parent_attr, shard_attr, tolerance in _SHARD_PLAN_AXES:
            parent = record.get(parent_attr)
            caps = record.get(shard_attr)
            if (
                isinstance(parent, bool)
                or not isinstance(parent, (int, float))
                or not isinstance(caps, list)
            ):
                continue
            uncapped = sum(
                1
                for cap in caps
                if isinstance(cap, bool) or not isinstance(cap, (int, float))
            )
            if uncapped:
                violations.append(
                    InvariantViolation(
                        "shard-plan-cap",
                        record["seq"],
                        f"{uncapped} shard(s) carry no cap under a parent "
                        f"budget of {parent_attr}={parent}",
                    )
                )
            total = sum(
                cap
                for cap in caps
                if not isinstance(cap, bool) and isinstance(cap, (int, float))
            )
            if total > parent + tolerance:
                violations.append(
                    InvariantViolation(
                        "shard-plan-cap",
                        record["seq"],
                        f"per-shard caps sum to {total}, above the parent "
                        f"budget's {parent_attr}={parent}",
                    )
                )


def _check_pool_events(
    records: list[dict[str, Any]], violations: list[InvariantViolation]
) -> None:
    for record in records:
        if record.get("kind") != "event" or record.get("name") != "pool_stats":
            continue
        in_use = record.get("in_use")
        max_in_use = record.get("max_in_use")
        max_size = record.get("max_size")
        if isinstance(in_use, int) and in_use != 0:
            violations.append(
                InvariantViolation(
                    "pool-release",
                    record["seq"],
                    f"{in_use} pooled connection(s) still checked out at "
                    f"close",
                )
            )
        if (
            isinstance(max_in_use, int)
            and isinstance(max_size, int)
            and max_in_use > max_size
        ):
            violations.append(
                InvariantViolation(
                    "pool-release",
                    record["seq"],
                    f"pool peak {max_in_use} exceeded max_size {max_size}",
                )
            )


#: Event names that legally end a session's stream (mirrors
#: :data:`repro.service.events.TERMINAL_EVENTS`; duplicated so the trace
#: checker stays importable without the service package).
_SESSION_TERMINAL = frozenset(
    {"session_completed", "session_failed", "session_cancelled"}
)


def _check_sessions(
    records: list[dict[str, Any]], violations: list[InvariantViolation]
) -> None:
    """Session lifecycle: terminal events, gap-free per-session seqs."""
    #: session_id -> (seqs, terminal count, seq of last record, seq of
    #: the terminal event, whether session_submitted was seen).
    seqs: dict[str, list[int]] = {}
    terminals: dict[str, int] = {}
    last_seq: dict[str, int] = {}
    terminal_seq: dict[str, int] = {}
    submitted: dict[str, int] = {}
    for record in records:
        session_id = record.get("session_id")
        if not isinstance(session_id, str):
            continue
        seq = record.get("seq")
        if not isinstance(seq, int):
            continue
        seqs.setdefault(session_id, []).append(seq)
        last_seq[session_id] = seq
        if record.get("kind") != "event":
            continue
        name = record.get("name")
        if name == "session_submitted":
            submitted[session_id] = seq
        if name in _SESSION_TERMINAL:
            terminals[session_id] = terminals.get(session_id, 0) + 1
            terminal_seq[session_id] = seq

    for session_id, start_seq in sorted(submitted.items()):
        count = terminals.get(session_id, 0)
        if count == 0:
            violations.append(
                InvariantViolation(
                    "session-terminal",
                    start_seq,
                    f"session {session_id!r} was submitted but never "
                    f"reached a terminal event",
                )
            )
        elif count > 1:
            violations.append(
                InvariantViolation(
                    "session-terminal",
                    terminal_seq[session_id],
                    f"session {session_id!r} carries {count} terminal "
                    f"events (exactly one expected)",
                )
            )
        elif terminal_seq[session_id] != last_seq[session_id]:
            violations.append(
                InvariantViolation(
                    "session-terminal",
                    last_seq[session_id],
                    f"session {session_id!r} has records after its "
                    f"terminal event",
                )
            )

    for session_id, session_seqs in sorted(seqs.items()):
        ordered = sorted(session_seqs)
        if ordered != list(range(ordered[0], ordered[0] + len(ordered))):
            violations.append(
                InvariantViolation(
                    "session-seq",
                    ordered[0],
                    f"session {session_id!r} has gaps or duplicates in "
                    f"its sequence numbers",
                )
            )
        elif session_id in submitted and ordered[0] != 0:
            violations.append(
                InvariantViolation(
                    "session-seq",
                    ordered[0],
                    f"session {session_id!r} starts at seq {ordered[0]}, "
                    f"not 0: the head of the stream is missing",
                )
            )


def _check_service_shutdown(
    records: list[dict[str, Any]], violations: list[InvariantViolation]
) -> None:
    """``service_shutdown`` means drained: no session may still be open."""
    shutdown_index: int | None = None
    for index, record in enumerate(records):
        if (
            record.get("kind") == "event"
            and record.get("name") == "service_shutdown"
        ):
            shutdown_index = index
            active = record.get("active_sessions")
            if isinstance(active, int) and active != 0:
                violations.append(
                    InvariantViolation(
                        "service-shutdown",
                        record["seq"],
                        f"{active} session(s) still active at shutdown",
                    )
                )
    if shutdown_index is None:
        return
    shutdown_record = records[shutdown_index]
    for record in records[shutdown_index + 1 :]:
        if (
            record.get("kind") == "event"
            and isinstance(record.get("session_id"), str)
            and record.get("name") in _SESSION_TERMINAL
        ):
            violations.append(
                InvariantViolation(
                    "service-shutdown",
                    shutdown_record["seq"],
                    f"session {record['session_id']!r} turned terminal "
                    f"after service_shutdown",
                )
            )


def check_trace_records(
    records: list[dict[str, Any]], max_queries: int | None = None
) -> list[InvariantViolation]:
    """All invariant violations in decoded trace records (empty = clean)."""
    violations: list[InvariantViolation] = []
    spans = [r for r in records if r.get("kind") == "span"]
    _check_span_tiers(spans, violations)
    _check_pool_events(records, violations)
    _check_shard_plans(records, violations)
    _check_sessions(records, violations)
    _check_service_shutdown(records, violations)

    start: dict[str, Any] | None = None
    segment_spans: list[dict[str, Any]] = []
    segment_events: list[dict[str, Any]] = []
    for record in records:
        if record.get("kind") == "event" and record.get("name") == "traversal_start":
            if start is not None:
                # Unterminated segment (ring-buffer drop or crash): check
                # what we have, without end-side accounting.
                _check_segment(
                    start, None, segment_spans, segment_events,
                    max_queries, violations,
                )
            start = record
            segment_spans = []
            segment_events = []
        elif record.get("kind") == "event" and record.get("name") == "traversal_end":
            if start is not None:
                _check_segment(
                    start, record, segment_spans, segment_events,
                    max_queries, violations,
                )
            start = None
        elif start is not None:
            if record.get("kind") == "span":
                segment_spans.append(record)
            else:
                segment_events.append(record)
    if start is not None:
        _check_segment(
            start, None, segment_spans, segment_events, max_queries, violations
        )
    return violations


def check_trace_lines(
    lines: Iterable[str], max_queries: int | None = None
) -> list[InvariantViolation]:
    """Schema-validate then invariant-check JSONL content."""
    materialized = [line for line in lines if line.strip()]
    validate_trace_lines(materialized)  # raises TraceValidationError
    records = [json.loads(line) for line in materialized]
    return check_trace_records(records, max_queries=max_queries)


def check_trace_file(
    path: str, max_queries: int | None = None
) -> list[InvariantViolation]:
    """Schema-validate then invariant-check one exported trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return check_trace_lines(handle, max_queries=max_queries)
