"""A generic bounded connection pool with checkout/checkin semantics.

``sqlite3`` connections must not be used by two threads at once, and a
real DBMS charges a round-trip (or worse, a handshake) per connection --
both problems the paper's deployment scenario would hit the moment the
:class:`~repro.parallel.ParallelProbeExecutor` fans probes out.  The
pool solves them generically:

* **Bounded checkout.**  At most ``max_size`` connections exist at any
  time; a checkout beyond the cap blocks until another thread checks its
  connection back in (or raises :class:`PoolTimeout` after ``timeout``
  seconds), so a worker-pool burst can never exhaust backend resources.
* **LIFO reuse.**  Checkins park the connection on an idle stack and the
  next checkout pops the most recently used one -- the warmest cache,
  the least likely to have been recycled away.
* **Idle recycling.**  Connections idle longer than ``recycle_after``
  (monotonic seconds) are closed instead of reused, so a long-lived pool
  does not pin stale sessions; recycled slots are recreated on demand.
* **Stats.**  :meth:`stats` snapshots created/reused/recycled counters
  plus current and high-water in-use counts, for bench output and tests.

The pool is deliberately generic (``ConnectionPool[T]``): the sqlite
backend pools ``sqlite3.Connection`` objects, tests pool plain fakes,
and a future PostgreSQL backend can pool DB-API connections unchanged.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

#: Default checkout cap; matches the parallel executor's default worker
#: count plus headroom for the coordinating thread.
DEFAULT_POOL_SIZE = 8


class PoolError(RuntimeError):
    """Misuse of the pool (closed pool, foreign checkin, ...)."""


class PoolTimeout(PoolError):
    """A checkout waited longer than the configured timeout."""


@dataclass(frozen=True)
class PoolStats:
    """Point-in-time counters of one :class:`ConnectionPool`."""

    created: int
    reused: int
    recycled: int
    in_use: int
    idle: int
    max_in_use: int
    waits: int

    def __str__(self) -> str:
        return (
            f"{self.created} created, {self.reused} reused, "
            f"{self.recycled} recycled; {self.in_use} in use "
            f"(peak {self.max_in_use}), {self.idle} idle, "
            f"{self.waits} waits"
        )


class ConnectionPool(Generic[T]):
    """Bounded pool of connections produced by ``factory``.

    ``closer`` releases one connection (defaults to calling its
    ``close()`` method); ``recycle_after`` is the idle age in seconds
    beyond which a parked connection is closed rather than reused
    (``None`` = never); ``timeout`` bounds how long a checkout may block
    waiting for capacity (``None`` = forever).
    """

    def __init__(
        self,
        factory: Callable[[], T],
        *,
        max_size: int = DEFAULT_POOL_SIZE,
        closer: Callable[[T], None] | None = None,
        recycle_after: float | None = None,
        timeout: float | None = None,
    ):
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        if recycle_after is not None and recycle_after < 0:
            raise ValueError("recycle_after must be >= 0 (or None)")
        self._factory = factory
        self.max_size = max_size
        self._closer = closer
        self.recycle_after = recycle_after
        self.timeout = timeout
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # LIFO idle stack of (connection, parked_at) pairs; parked_at is a
        # monotonic perf_counter reading used only for recycling ages.
        self._idle: list[tuple[T, float]] = []  # guarded-by: _lock
        self._in_use: dict[int, T] = {}  # guarded-by: _lock
        self._closed = False
        #: Connections alive right now (idle + in use + factory in flight);
        #: this is the number the ``max_size`` cap bounds.
        self._live = 0
        self._created = 0
        self._reused = 0
        self._recycled = 0
        self._max_in_use = 0
        self._waits = 0

    # ------------------------------------------------------------ lifecycle
    def _dispose(self, connection: T) -> None:
        if self._closer is not None:
            self._closer(connection)
        else:
            close = getattr(connection, "close", None)
            if callable(close):
                close()

    def checkout(self) -> T:
        """Borrow a connection; blocks when ``max_size`` are in use."""
        deadline = (
            None if self.timeout is None else time.perf_counter() + self.timeout
        )
        with self._available:
            while True:
                if self._closed:
                    raise PoolError("pool is closed")
                now = time.perf_counter()
                while self._idle:
                    connection, parked_at = self._idle.pop()
                    if (
                        self.recycle_after is not None
                        and now - parked_at > self.recycle_after
                    ):
                        self._recycled += 1
                        self._live -= 1
                        self._dispose(connection)
                        continue
                    self._reused += 1
                    return self._track_checkout_locked(connection)
                if self._live < self.max_size:
                    self._live += 1
                    self._created += 1
                    break  # room to create a fresh connection below
                self._waits += 1
                remaining = None if deadline is None else deadline - now
                if remaining is not None and remaining <= 0:
                    raise PoolTimeout(
                        f"no connection available within {self.timeout}s "
                        f"(max_size={self.max_size})"
                    )
                if not self._available.wait(timeout=remaining):
                    raise PoolTimeout(
                        f"no connection available within {self.timeout}s "
                        f"(max_size={self.max_size})"
                    )
        # The factory runs outside the lock: it may be slow (a real DBMS
        # handshake) and must not serialize other checkouts.
        try:
            connection = self._factory()
        except BaseException:
            with self._available:
                self._live -= 1
                self._created -= 1
                self._available.notify()
            raise
        with self._available:
            return self._track_checkout_locked(connection)

    def _track_checkout_locked(self, connection: T) -> T:
        self._in_use[id(connection)] = connection
        self._max_in_use = max(self._max_in_use, len(self._in_use))
        return connection

    def checkin(self, connection: T) -> None:
        """Return a checked-out connection to the idle stack."""
        with self._available:
            if self._in_use.pop(id(connection), None) is None:
                raise PoolError("checkin of a connection not checked out here")
            if self._closed:
                self._live -= 1
                self._dispose(connection)
            else:
                self._idle.append((connection, time.perf_counter()))
            self._available.notify()

    @contextmanager
    def connection(self) -> Iterator[T]:
        """``with pool.connection() as conn:`` checkout/checkin pairing."""
        connection = self.checkout()
        try:
            yield connection
        finally:
            self.checkin(connection)

    def close(self) -> None:
        """Close every idle connection and refuse new checkouts (idempotent).

        Connections still checked out are closed when checked back in.
        """
        with self._available:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._live -= len(idle)
            self._available.notify_all()
        for connection, _ in idle:
            self._dispose(connection)

    def __enter__(self) -> "ConnectionPool[T]":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------------- stats
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                created=self._created,
                reused=self._reused,
                recycled=self._recycled,
                in_use=len(self._in_use),
                idle=len(self._idle),
                max_in_use=self._max_in_use,
                waits=self._waits,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ConnectionPool(max_size={self.max_size}, {state})"
