"""Pluggable backend layer: protocols, registry, and connection pooling.

The evaluation stack used to special-case each engine by hand; this
package makes the backend a named, capability-declaring plugin:

* :mod:`repro.backends.base` -- the :class:`AlivenessBackend` /
  :class:`EnumeratingBackend` / :class:`ProbeStore` protocols and the
  :class:`BackendCapabilities` record;
* :mod:`repro.backends.registry` -- named specs (``memory``, ``sqlite``,
  ``simulated``) with lazy factories; :func:`create_backend` is what
  :class:`~repro.core.debugger.NonAnswerDebugger` calls;
* :mod:`repro.backends.pool` -- the generic bounded
  :class:`ConnectionPool` (checkout/checkin, idle recycling, stats) the
  sqlite engine draws its connections from;
* :mod:`repro.backends.conformance` -- the shared suite every registered
  backend must pass (run by CI for each name).
"""

from repro.backends.base import (
    AlivenessBackend,
    BackendCapabilities,
    EnumeratingBackend,
    ProbeStore,
)
from repro.backends.pool import (
    DEFAULT_POOL_SIZE,
    ConnectionPool,
    PoolError,
    PoolStats,
    PoolTimeout,
)
from repro.backends.registry import (
    BackendRegistryError,
    BackendSpec,
    backend_names,
    create_backend,
    get_backend_spec,
    register_backend,
)

__all__ = [
    "AlivenessBackend",
    "BackendCapabilities",
    "EnumeratingBackend",
    "ProbeStore",
    "ConnectionPool",
    "DEFAULT_POOL_SIZE",
    "PoolError",
    "PoolStats",
    "PoolTimeout",
    "BackendRegistryError",
    "BackendSpec",
    "backend_names",
    "create_backend",
    "get_backend_spec",
    "register_backend",
]
