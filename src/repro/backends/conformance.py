"""Shared conformance suite every registered backend must pass.

The registry lets anything claim to be a backend; this module is the
teeth.  :func:`check_backend` builds the named backend, replays a set of
probes whose ground truth comes from the in-memory engine, and verifies
each *declared* capability actually holds: thread-safe backends answer a
concurrent storm identically to the serial pass, enumerating backends
agree between ``count`` and ``is_alive``, pooling backends expose pool
stats and respect their cap.  CI runs it for every registered name, so
a new backend (or a regression in an old one) fails loudly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.backends.base import EnumeratingBackend
from repro.backends.registry import create_backend, get_backend_spec
from repro.relational.database import Database
from repro.relational.engine import InMemoryEngine
from repro.relational.jointree import BoundQuery

#: Worker count of the concurrent storm a thread-safe backend must survive.
CONFORMANCE_WORKERS = 8


class ConformanceFailure(AssertionError):
    """A backend violated the contract its registration declares."""


def _fail(name: str, message: str) -> None:
    raise ConformanceFailure(f"backend {name!r}: {message}")


def _instrument_pool_locks(backend: Any, lock_monitor: Any) -> None:
    """Attach the lock-order monitor to the backend's pool, if it has one.

    ``lock_monitor`` is duck-typed (any object with the
    :meth:`repro.analysis.lockorder.LockOrderMonitor.instrument` shape)
    so this low-level package never imports the analysis layer.
    """
    pool = getattr(backend, "_pool", None)
    if pool is None:
        return
    # The pool's condition wraps its lock; instrument both attributes
    # under one label so every acquisition path is observed.
    for attr in ("_available", "_lock"):
        if hasattr(pool, attr):
            lock_monitor.instrument(pool, attr, "backend.pool")


def check_backend(
    name: str,
    database: Database,
    probes: Sequence[BoundQuery],
    repeat: int = 3,
    lock_monitor: Any = None,
) -> dict[str, int]:
    """Run the conformance suite; returns check counters, raises on failure.

    With a ``lock_monitor`` (a
    :class:`repro.analysis.lockorder.LockOrderMonitor`), the backend's
    connection-pool locks are instrumented for the whole run and an
    observed acquisition-order cycle fails conformance like any other
    contract violation.
    """
    if not probes:
        raise ValueError("conformance needs at least one probe")
    spec = get_backend_spec(name)
    truth_engine = InMemoryEngine(database)
    truth = [truth_engine.is_alive(query) for query in probes]
    backend = create_backend(name, database)
    if lock_monitor is not None:
        _instrument_pool_locks(backend, lock_monitor)
    checks = {"probes": 0, "concurrent": 0, "counts": 0}
    try:
        # 1. Correctness: answers match the in-memory ground truth.
        for query, expected in zip(probes, truth):
            if backend.is_alive(query) != expected:
                _fail(name, f"wrong aliveness for {query.describe()}")
            checks["probes"] += 1

        # 2. Declared thread safety: a concurrent storm matches serial.
        if spec.capabilities.thread_safe:
            storm = list(probes) * repeat
            with ThreadPoolExecutor(max_workers=CONFORMANCE_WORKERS) as pool:
                answers = list(pool.map(backend.is_alive, storm))
            if answers != truth * repeat:
                _fail(name, "concurrent answers diverge from serial")
            checks["concurrent"] = len(storm)

        # 3. Declared enumeration: count agrees with aliveness.
        if spec.capabilities.enumeration:
            if not isinstance(backend, EnumeratingBackend):
                _fail(name, "declares enumeration but has no count()")
            for query, expected in zip(probes, truth):
                count = backend.count(query)  # type: ignore[attr-defined]
                if (count > 0) != expected:
                    _fail(
                        name,
                        f"count()={count} contradicts aliveness "
                        f"{expected} for {query.describe()}",
                    )
                checks["counts"] += 1

        # 4. Declared pooling: pool stats exist and the cap held.
        if spec.capabilities.pooling:
            stats = getattr(backend, "pool_stats", None)
            if stats is None:
                _fail(name, "declares pooling but exposes no pool_stats")
            snapshot = stats() if callable(stats) else stats
            if snapshot.max_in_use > getattr(backend, "pool_size", 1 << 30):
                _fail(
                    name,
                    f"pool peak {snapshot.max_in_use} exceeded its cap",
                )
            # Every probe path must have checked its connection back in:
            # a nonzero in-use count here is a leak (see RES001).
            if snapshot.in_use != 0:
                _fail(
                    name,
                    f"{snapshot.in_use} pooled connection(s) never "
                    f"checked back in",
                )

        # 5. Lock ordering: no acquisition cycle observed during the run.
        if lock_monitor is not None:
            inversions = lock_monitor.inversions()
            if inversions:
                _fail(
                    name,
                    f"lock-order inversions observed: {inversions}",
                )
    finally:
        closer = getattr(backend, "close", None)
        if callable(closer):
            closer()
            closer()  # close must be idempotent
    return checks
