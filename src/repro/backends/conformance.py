"""Shared conformance suite every registered backend must pass.

The registry lets anything claim to be a backend; this module is the
teeth.  :func:`check_backend` builds the named backend, replays a set of
probes whose ground truth comes from the in-memory engine, and verifies
each *declared* capability actually holds: thread-safe backends answer a
concurrent storm identically to the serial pass, enumerating backends
agree between ``count`` and ``is_alive``, pooling backends expose pool
stats and respect their cap.  CI runs it for every registered name, so
a new backend (or a regression in an old one) fails loudly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.backends.base import EnumeratingBackend
from repro.backends.registry import create_backend, get_backend_spec
from repro.relational.database import Database
from repro.relational.engine import InMemoryEngine
from repro.relational.jointree import BoundQuery

#: Worker count of the concurrent storm a thread-safe backend must survive.
CONFORMANCE_WORKERS = 8


class ConformanceFailure(AssertionError):
    """A backend violated the contract its registration declares."""


def _fail(name: str, message: str) -> None:
    raise ConformanceFailure(f"backend {name!r}: {message}")


def check_backend(
    name: str,
    database: Database,
    probes: Sequence[BoundQuery],
    repeat: int = 3,
) -> dict[str, int]:
    """Run the conformance suite; returns check counters, raises on failure."""
    if not probes:
        raise ValueError("conformance needs at least one probe")
    spec = get_backend_spec(name)
    truth_engine = InMemoryEngine(database)
    truth = [truth_engine.is_alive(query) for query in probes]
    backend = create_backend(name, database)
    checks = {"probes": 0, "concurrent": 0, "counts": 0}
    try:
        # 1. Correctness: answers match the in-memory ground truth.
        for query, expected in zip(probes, truth):
            if backend.is_alive(query) != expected:
                _fail(name, f"wrong aliveness for {query.describe()}")
            checks["probes"] += 1

        # 2. Declared thread safety: a concurrent storm matches serial.
        if spec.capabilities.thread_safe:
            storm = list(probes) * repeat
            with ThreadPoolExecutor(max_workers=CONFORMANCE_WORKERS) as pool:
                answers = list(pool.map(backend.is_alive, storm))
            if answers != truth * repeat:
                _fail(name, "concurrent answers diverge from serial")
            checks["concurrent"] = len(storm)

        # 3. Declared enumeration: count agrees with aliveness.
        if spec.capabilities.enumeration:
            if not isinstance(backend, EnumeratingBackend):
                _fail(name, "declares enumeration but has no count()")
            for query, expected in zip(probes, truth):
                count = backend.count(query)  # type: ignore[attr-defined]
                if (count > 0) != expected:
                    _fail(
                        name,
                        f"count()={count} contradicts aliveness "
                        f"{expected} for {query.describe()}",
                    )
                checks["counts"] += 1

        # 4. Declared pooling: pool stats exist and the cap held.
        if spec.capabilities.pooling:
            stats = getattr(backend, "pool_stats", None)
            if stats is None:
                _fail(name, "declares pooling but exposes no pool_stats")
            snapshot = stats() if callable(stats) else stats
            if snapshot.max_in_use > getattr(backend, "pool_size", 1 << 30):
                _fail(
                    name,
                    f"pool peak {snapshot.max_in_use} exceeded its cap",
                )
    finally:
        closer = getattr(backend, "close", None)
        if callable(closer):
            closer()
            closer()  # close must be idempotent
    return checks
