"""Named backend registry: one place that knows how to build an engine.

Before this layer existed every caller special-cased engines by hand
(``if backend == "memory": ... elif backend == "sqlite": ...``); the
registry replaces that with named :class:`BackendSpec` entries carrying
a factory and declared :class:`~repro.backends.base.BackendCapabilities`.
Three backends ship built in:

* ``memory`` -- the in-memory Yannakakis engine (the default; answers
  probes in microseconds, supports enumeration for witnesses);
* ``sqlite`` -- executes the generated SQL on a pooled stdlib
  ``sqlite3`` mirror (realism cross-check; real connections, real pool);
* ``simulated`` -- the in-memory engine behind a deterministic per-probe
  latency (the wall-clock analogue of a networked DBMS round-trip).

Factories import their engine lazily so registering a backend never
drags its dependencies in, and third-party engines (a PostgreSQL
backend, say) can :func:`register_backend` themselves without touching
this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.backends.base import AlivenessBackend, BackendCapabilities

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database

BackendFactory = Callable[..., AlivenessBackend]


class BackendRegistryError(ValueError):
    """Unknown backend name or conflicting registration."""


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: its name, factory, and capabilities."""

    name: str
    factory: BackendFactory
    capabilities: BackendCapabilities
    description: str = ""


_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: BackendFactory,
    capabilities: BackendCapabilities,
    description: str = "",
    replace: bool = False,
) -> BackendSpec:
    """Register ``factory`` under ``name``; refuses silent overwrites."""
    if not replace and name in _REGISTRY:
        raise BackendRegistryError(f"backend {name!r} is already registered")
    spec = BackendSpec(name, factory, capabilities, description)
    _REGISTRY[name] = spec
    return spec


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend_spec(name: str) -> BackendSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(known_name) for known_name in backend_names())
        raise BackendRegistryError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None


def create_backend(
    name: str, database: "Database", **options: Any
) -> AlivenessBackend:
    """Build the named backend for ``database``.

    ``options`` are passed to the factory; every built-in factory accepts
    (and ignores what it does not need from) ``tuple_set_provider``,
    ``cost_model``, ``latency``, ``pool_size``, and ``recycle_after``.
    """
    return get_backend_spec(name).factory(database, **options)


# ------------------------------------------------------ built-in factories
def _memory_factory(database: "Database", **options: Any) -> AlivenessBackend:
    from repro.relational.engine import InMemoryEngine

    return InMemoryEngine(
        database,
        tuple_set_provider=options.get("tuple_set_provider"),
        streaming_source=options.get("streaming_source"),
        materialization_cap=options.get("materialization_cap"),
    )


def _sqlite_factory(database: "Database", **options: Any) -> AlivenessBackend:
    from repro.backends.pool import DEFAULT_POOL_SIZE
    from repro.relational.sqlite_backend import SqliteEngine

    return SqliteEngine(
        database,
        pool_size=options.get("pool_size", DEFAULT_POOL_SIZE),
        recycle_after=options.get("recycle_after"),
    )


def _simulated_factory(database: "Database", **options: Any) -> AlivenessBackend:
    from repro.parallel.latency import DEFAULT_LATENCY, SimulatedLatencyBackend
    from repro.relational.engine import InMemoryEngine

    inner = InMemoryEngine(
        database,
        tuple_set_provider=options.get("tuple_set_provider"),
        streaming_source=options.get("streaming_source"),
        materialization_cap=options.get("materialization_cap"),
    )
    cost_model = options.get("cost_model")
    return SimulatedLatencyBackend(
        inner,
        latency=options.get("latency", DEFAULT_LATENCY),
        cost_model=cost_model,
        cost_scale=options.get("cost_scale", 0.0),
    )


register_backend(
    "memory",
    _memory_factory,
    BackendCapabilities(thread_safe=True, enumeration=True),
    "in-memory Yannakakis engine (default)",
)
register_backend(
    "sqlite",
    _sqlite_factory,
    BackendCapabilities(thread_safe=True, enumeration=True, pooling=True),
    "stdlib sqlite3 mirror behind a bounded connection pool",
)
register_backend(
    "simulated",
    _simulated_factory,
    BackendCapabilities(thread_safe=True, deterministic_latency=True),
    "in-memory engine plus a deterministic per-probe latency",
)
