"""Backend protocols and declared capabilities.

The paper's system is backend-agnostic by construction: every traversal
strategy talks to an :class:`AlivenessBackend` ("does this query return a
tuple?") through the instrumented evaluator, and nothing else about the
engine leaks upward.  This module is the contract layer: the protocols
every backend implements, plus a :class:`BackendCapabilities` record each
registered backend declares so callers (the parallel executor, the CLI,
the conformance suite) can check what an engine supports *before*
relying on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.relational.jointree import BoundQuery


@runtime_checkable
class AlivenessBackend(Protocol):
    """Anything that can answer "does this query return a tuple?"."""

    def is_alive(self, query: BoundQuery) -> bool:  # pragma: no cover - protocol
        ...


@runtime_checkable
class EnumeratingBackend(Protocol):
    """A backend that can also enumerate (a bounded number of) results."""

    def is_alive(self, query: BoundQuery) -> bool:  # pragma: no cover - protocol
        ...

    def count(
        self, query: BoundQuery, limit: int | None = None
    ) -> int:  # pragma: no cover - protocol
        ...


class ProbeStore(Protocol):
    """A persistent aliveness store (the L2 tier under the evaluator's LRU).

    Implemented by :class:`repro.cache.ProbeCache`; the protocol lives
    here so ``repro.relational`` needs no import of the cache machinery.
    ``get`` returns ``None`` on a miss; ``put`` must be idempotent.
    """

    def get(self, query: BoundQuery) -> bool | None:  # pragma: no cover - protocol
        ...

    def put(self, query: BoundQuery, alive: bool) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class BackendCapabilities:
    """What one registered backend supports, declared not probed.

    * ``thread_safe`` -- concurrent :meth:`is_alive` calls are allowed
      (required for the backend to sit under a
      :class:`~repro.parallel.ParallelProbeExecutor`);
    * ``enumeration`` -- implements :class:`EnumeratingBackend`
      (``count``/``fetch``), needed for witnesses and answer display;
    * ``pooling`` -- holds real per-connection resources behind a
      :class:`~repro.backends.pool.ConnectionPool` (exposes
      ``pool_stats``);
    * ``deterministic_latency`` -- wall time per probe is a deterministic
      function of the query (the simulated-latency stand-in), so timing
      benchmarks against it are reproducible.
    """

    thread_safe: bool = False
    enumeration: bool = False
    pooling: bool = False
    deterministic_latency: bool = False

    def describe(self) -> str:
        flags = [
            name
            for name, value in (
                ("thread-safe", self.thread_safe),
                ("enumeration", self.enumeration),
                ("pooling", self.pooling),
                ("deterministic-latency", self.deterministic_latency),
            )
            if value
        ]
        return ", ".join(flags) if flags else "(none)"
