"""Crash-safe file writing shared by every artifact producer.

Every persistent artifact the system emits -- saved lattices, debug
reports, JSON-lines traces, bench payloads -- goes through
:func:`atomic_write_text`: content lands in a temporary file in the
target directory first and is moved into place with :func:`os.replace`,
so a crash mid-save leaves either the old artifact or the new one, never
a truncated file.  The resource-leak linter (``RES003``) flags write-mode
``open()`` calls anywhere else in the tree, which keeps this module the
single place the discipline has to be right.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, content: str) -> None:
    """Write ``content`` to ``path`` via a same-directory temp + rename.

    ``os.replace`` is atomic on POSIX and Windows when source and target
    share a filesystem, which the same-directory temp file guarantees.
    """
    target = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=target.parent if str(target.parent) else ".",
        prefix=f".{target.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
