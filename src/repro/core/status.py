"""Node status bookkeeping with the paper's classification rules.

* **R1**: a node is alive ⇒ all of its descendants are alive.
* **R2**: a node is dead ⇒ all of its ancestors are dead.

The store keeps two bitsets over an :class:`ExplorationGraph` and applies
R1/R2 closure on every explicit classification, so "possibly alive" nodes
(the paper's term for unclassified nodes) are exactly the bits set in
neither mask.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.mtn import ExplorationGraph


class Status(enum.Enum):
    POSSIBLY_ALIVE = "possibly_alive"
    ALIVE = "alive"
    DEAD = "dead"


class InconsistentStatusError(RuntimeError):
    """A node was classified both alive and dead.

    This can only happen if the evaluation backend violates monotonicity
    (a sub-query empty while a super-query is not), so it indicates a bug in
    the backend, never in the traversal.
    """


@dataclass(frozen=True)
class StatusDelta:
    """A store's classifications as three bitsets, ready to ship elsewhere.

    This is the unit of exchange between a shard worker and the merge
    coordinator (see :mod:`repro.parallel.sharded`): three Python ints --
    trivially picklable, cheap to move over a queue or socket -- that
    carry everything a :class:`StatusStore` learned.  The masks are
    R1/R2-closed *within the exporting store's domain*; closure across
    the full graph (a dead node's ancestors may live in another shard's
    cone) is re-derived by :meth:`StatusStore.apply_delta`.
    """

    alive_mask: int
    dead_mask: int
    evaluated_mask: int

    @property
    def empty(self) -> bool:
        return not (self.alive_mask | self.dead_mask)


class StatusStore:
    """Alive/dead bitsets with R1/R2 closure over an exploration graph."""

    def __init__(self, graph: ExplorationGraph, domain: int | None = None):
        self.graph = graph
        # Restrict bookkeeping to ``domain`` (a bitset) for per-MTN runs of
        # the non-reuse strategies; None means the whole graph.
        self.domain = domain if domain is not None else (1 << len(graph)) - 1
        self.alive_mask = 0
        self.dead_mask = 0
        self.evaluated_mask = 0

    # ------------------------------------------------------------ updates
    def mark_alive(self, index: int, evaluated: bool) -> None:
        """Record aliveness; R1 marks all descendants alive too."""
        added = (self.graph.desc_plus(index)) & self.domain
        if added & self.dead_mask:
            raise InconsistentStatusError(
                f"node {index} alive but a descendant is dead"
            )
        self.alive_mask |= added
        if evaluated:
            self.evaluated_mask |= 1 << index

    def mark_dead(self, index: int, evaluated: bool) -> None:
        """Record deadness; R2 marks all ancestors dead too."""
        added = (self.graph.asc_plus(index)) & self.domain
        if added & self.alive_mask:
            raise InconsistentStatusError(
                f"node {index} dead but an ancestor is alive"
            )
        self.dead_mask |= added
        if evaluated:
            self.evaluated_mask |= 1 << index

    def record(self, index: int, alive: bool, evaluated: bool = True) -> None:
        if alive:
            self.mark_alive(index, evaluated)
        else:
            self.mark_dead(index, evaluated)

    # -------------------------------------------------------------- deltas
    def export_delta(self) -> StatusDelta:
        """Snapshot this store's classifications for transport/merging."""
        return StatusDelta(self.alive_mask, self.dead_mask, self.evaluated_mask)

    def apply_delta(self, delta: StatusDelta) -> None:
        """Merge another store's classifications through rules R1/R2.

        The delta's masks are only guaranteed closed within the exporting
        store's (possibly narrower) domain, so closure is re-applied
        here: alive bits pull in their descendants (R1), dead bits their
        ancestors (R2) -- restricted to this store's own domain.  As in
        :meth:`mark_alive`/:meth:`mark_dead`, a conflict means the
        evaluation backend violated monotonicity and raises
        :class:`InconsistentStatusError`; merging answers from consistent
        backends can never conflict, whatever order deltas arrive in.
        """
        for index in self.graph.bits(delta.alive_mask & ~self.alive_mask):
            added = self.graph.desc_plus(index) & self.domain
            if added & self.dead_mask:
                raise InconsistentStatusError(
                    f"delta marks node {index} alive but a descendant is dead"
                )
            self.alive_mask |= added
        for index in self.graph.bits(delta.dead_mask & ~self.dead_mask):
            added = self.graph.asc_plus(index) & self.domain
            if added & self.alive_mask:
                raise InconsistentStatusError(
                    f"delta marks node {index} dead but an ancestor is alive"
                )
            self.dead_mask |= added
        self.evaluated_mask |= delta.evaluated_mask & self.domain

    # ------------------------------------------------------------- queries
    def status(self, index: int) -> Status:
        bit = 1 << index
        if self.alive_mask & bit:
            return Status.ALIVE
        if self.dead_mask & bit:
            return Status.DEAD
        return Status.POSSIBLY_ALIVE

    def is_known(self, index: int) -> bool:
        return bool((self.alive_mask | self.dead_mask) & (1 << index))

    @property
    def unknown_mask(self) -> int:
        return self.domain & ~(self.alive_mask | self.dead_mask)

    @property
    def evaluated_count(self) -> int:
        return self.evaluated_mask.bit_count()

    # ---------------------------------------------------------------- MPANs
    def mpans_of(self, mtn_index: int) -> list[int]:
        """Maximal partially-alive nodes of a dead MTN (§2.4).

        Alive strict descendants of the MTN with no alive strict ancestor
        among the MTN's descendants.  Requires the MTN's search space to be
        fully classified (every traversal guarantees that for dead MTNs).
        """
        desc = self.graph.desc_mask[mtn_index] & self.domain
        alive_desc = desc & self.alive_mask
        mpans = []
        for index in self.graph.bits(alive_desc):
            if not (self.graph.asc_mask[index] & desc & self.alive_mask):
                mpans.append(index)
        return mpans
