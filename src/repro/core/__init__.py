"""The paper's primary contribution: lattice-based non-answer debugging.

Phases (Figure 3 of the paper):

* Phase 0 (offline): :mod:`repro.core.lattice` -- generate the lattice of
  join-query templates over relation copies (Algorithm 1), deduplicated via
  canonical labeling (:mod:`repro.core.canonical`, Algorithm 2).
* Phase 1: :mod:`repro.core.binding` -- map keywords to relation copies and
  prune the lattice.
* Phase 2: :mod:`repro.core.mtn` -- find minimal-total nodes (MTNs) and build
  the exploration graph of their descendants.
* Phase 3: :mod:`repro.core.traversal` -- classify MTNs dead/alive and find
  MPANs with one of five strategies (BU, TD, BUWR, TDWR, SBH).

:class:`repro.core.debugger.NonAnswerDebugger` wires the phases together and
is the main entry point of the library.
"""

from repro.core.canonical import canonical_code, canonical_string
from repro.core.lattice import Lattice, LatticeNode, LatticeStats, generate_lattice
from repro.core.binding import KeywordBinder, PrunedLattice
from repro.core.mtn import ExplorationGraph, build_exploration_graph, find_mtns
from repro.core.status import Status, StatusStore
from repro.core.traversal import (
    BottomUpStrategy,
    ScoreBasedStrategy,
    TopDownStrategy,
    TraversalResult,
    get_strategy,
)
from repro.core.baselines import ReturnEverything, ReturnNothing
from repro.core.constraints import SearchConstraints
from repro.core.debugger import DebugReport, NonAnswerDebugger
from repro.core.diagnosis import Cause, Diagnosis, diagnose
from repro.core.freecopies import free_instance, normalize_free_ranks
from repro.core.persistence import load_lattice, save_lattice, save_report
from repro.core.ranking import ExplanationRanker
from repro.core.session import DebugSession

__all__ = [
    "canonical_code",
    "canonical_string",
    "Lattice",
    "LatticeNode",
    "LatticeStats",
    "generate_lattice",
    "KeywordBinder",
    "PrunedLattice",
    "ExplorationGraph",
    "build_exploration_graph",
    "find_mtns",
    "Status",
    "StatusStore",
    "BottomUpStrategy",
    "TopDownStrategy",
    "ScoreBasedStrategy",
    "TraversalResult",
    "get_strategy",
    "ReturnNothing",
    "ReturnEverything",
    "DebugReport",
    "NonAnswerDebugger",
    "SearchConstraints",
    "Cause",
    "Diagnosis",
    "diagnose",
    "free_instance",
    "normalize_free_ranks",
    "DebugSession",
    "ExplanationRanker",
    "save_lattice",
    "load_lattice",
    "save_report",
]
