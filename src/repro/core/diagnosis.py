"""Root-cause diagnosis of non-answers: minimal dead sub-queries + fixes.

MPANs show how far a non-answer *works*; their dual shows exactly where it
*breaks*: the **minimal dead sub-queries** -- dead sub-networks all of whose
own sub-networks are alive.  These are the paper's "frontier causes" seen
from below (cf. Chapman & Jagadish's frontier picky manipulations, which the
paper cites as its inspiration).  For Example 1's q1 the single minimal dead
sub-query is ``C^saffron ⋈ I^scented``: both sides return rows, the join
returns none -- which is precisely why the paper's suggested fix is a
vocabulary change on the Color side.

Built on the statuses a traversal already computed: diagnosis costs **zero
additional SQL**.

The classifier buckets each non-answer by the shape of its frontier:

* ``EMPTY_TABLE`` -- some single free table in the network has no rows at
  all: a data-loading problem.
* ``DEAD_KEYWORD_PAIR`` -- a minimal dead sub-query carries two or more
  keywords: the keywords never co-occur under this relationship.  Both of
  Example 1's q1 and q2 are of this shape; whether the right reaction is a
  vocabulary fix (q1: add ``saffron`` as a color synonym) or merchandising
  insight (q2: the store simply has no saffron-scented candles) depends on
  the data, as the paper's footnote 1 points out -- the suggestion spells
  out both options.
* ``EMPTY_JOIN`` -- a minimal dead sub-query is a join carrying at most one
  keyword: the keyword side returns rows and the free side returns rows,
  but no foreign key links them; check the FK data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.debugger import DebugReport
from repro.core.status import Status, StatusStore
from repro.core.traversal.base import TraversalResult
from repro.relational.jointree import BoundQuery


class Cause(enum.Enum):
    EMPTY_TABLE = "empty_table"
    EMPTY_JOIN = "empty_join"
    DEAD_KEYWORD_PAIR = "dead_keyword_pair"


@dataclass(frozen=True)
class Diagnosis:
    """Everything the developer needs about one non-answer."""

    non_answer: BoundQuery
    mpans: tuple[BoundQuery, ...]
    minimal_dead: tuple[BoundQuery, ...]
    cause: Cause
    suggestion: str

    def render(self) -> str:
        lines = [f"non-answer: {self.non_answer.describe()}"]
        lines.append(f"  cause: {self.cause.value}")
        for dead in self.minimal_dead:
            lines.append(f"  breaks at: {dead.describe()}")
        for mpan in self.mpans:
            lines.append(f"  works up to: {mpan.describe()}")
        lines.append(f"  suggestion: {self.suggestion}")
        return "\n".join(lines)


def minimal_dead_nodes(
    result: TraversalResult, mtn_index: int
) -> list[int]:
    """Dead nodes in the MTN's space whose every sub-network is alive."""
    graph = result.graph
    store: StatusStore = result.stores[mtn_index]
    space = graph.desc_plus(mtn_index)
    dead = space & store.dead_mask
    minimal = []
    for index in graph.bits(dead):
        if not (graph.desc_mask[index] & store.dead_mask):
            minimal.append(index)
    return minimal


def _classify(graph, minimal: list[int]) -> Cause:
    for index in minimal:
        node = graph.node(index)
        if node.level == 1 and not node.query.bindings:
            return Cause.EMPTY_TABLE
    for index in minimal:
        if len(graph.node(index).query.keywords) >= 2:
            return Cause.DEAD_KEYWORD_PAIR
    return Cause.EMPTY_JOIN


def _suggest(graph, cause: Cause, minimal: list[int]) -> str:
    if cause is Cause.EMPTY_TABLE:
        empties = sorted(
            {
                next(iter(graph.node(index).tree.instances)).relation
                for index in minimal
                if graph.node(index).level == 1
            }
        )
        return (
            f"table(s) {', '.join(empties)} contain no rows; load data "
            "before debugging further"
        )
    if cause is Cause.EMPTY_JOIN:
        frontier = graph.node(minimal[0]).query
        return (
            f"the join {frontier.describe()} is empty although each side "
            "returns rows; no foreign key links the matching rows -- check "
            "the key-foreign-key data"
        )
    pairs = sorted(
        {
            " + ".join(sorted(graph.node(index).query.keywords))
            for index in minimal
            if len(graph.node(index).query.keywords) >= 2
        }
    )
    return (
        f"the keyword combination(s) {'; '.join(pairs)} never co-occur "
        "under this relationship; if they should, add one keyword as a "
        "synonym of values the other side already links to (the paper's "
        "saffron-as-a-color fix); otherwise the partial matches above are "
        "the best the store can offer (merchandising opportunity)"
    )


def diagnose(report: DebugReport) -> list[Diagnosis]:
    """One :class:`Diagnosis` per non-answer of a finished debug report."""
    if report.traversal is None:
        return []
    result = report.traversal
    graph = result.graph
    diagnoses = []
    for mtn_index in result.dead_mtns:
        store = result.stores[mtn_index]
        assert store.status(mtn_index) is Status.DEAD
        minimal = minimal_dead_nodes(result, mtn_index)
        cause = _classify(graph, minimal)
        diagnoses.append(
            Diagnosis(
                non_answer=graph.node(mtn_index).query,
                mpans=tuple(result.mpan_queries(mtn_index)),
                minimal_dead=tuple(
                    graph.node(index).query for index in minimal
                ),
                cause=cause,
                suggestion=_suggest(graph, cause, minimal),
            )
        )
    return diagnoses


def render_diagnoses(report: DebugReport) -> str:
    diagnoses = diagnose(report)
    if not diagnoses:
        return "no non-answers to diagnose"
    return "\n\n".join(d.render() for d in diagnoses)
