"""Multiple free copies per relation -- an extension beyond the paper.

The paper maintains exactly one free copy ``R0`` per relation (§2.2-2.3).
That makes some relationships inexpressible until many joins are allowed:
connecting two people through a *shared publication* needs **two** instances
of ``Writes`` (``P1 - Writes - Pub - Writes - P2``), so with a single free
``Writes`` the query only becomes answerable through longer detours -- this
is visible in the paper's own Q3 numbers and reproduced in ours.

This module generalizes the direct (lattice-free) pipeline to ``f >= 1``
free copies per relation.  Free copies are interchangeable placeholders, so
two new concerns appear, both handled here:

* **generation symmetry** -- growing trees over ranks ``f0..f(k)`` would
  produce rank-permuted twins; generation therefore only ever attaches the
  lowest absent rank (callers use :func:`next_free_instance`);
* **sub-query symmetry** -- a subtree of a candidate network can still
  carry a non-canonical rank pattern (e.g. ``Writes[f1]`` alone after its
  sibling was cut away), and two such subtrees are the *same SQL query*.
  :func:`normalize_free_ranks` relabels every query to a canonical rank
  assignment (AHU codes with ranks masked decide the order; automorphic
  instances are interchangeable by definition), so the exploration graph
  interns each semantic sub-query exactly once.

With ``free_copies=1`` every function here is the identity and the system
behaves exactly as the paper describes; the extension is validated by
``tests/test_freecopies.py`` and the ``ablation-free-count`` experiment.
"""

from __future__ import annotations

from repro.relational.jointree import (
    BoundQuery,
    JoinEdge,
    JoinTree,
    RelationInstance,
)


def free_instance(relation: str, rank: int) -> RelationInstance:
    """The free instance of ``relation`` with the given rank (0-based)."""
    return RelationInstance(relation, rank, free=True)


def free_instances(relation: str, count: int) -> list[RelationInstance]:
    return [free_instance(relation, rank) for rank in range(count)]


def next_free_instance(
    tree: JoinTree, relation: str, max_free: int
) -> RelationInstance | None:
    """The lowest-rank free instance of ``relation`` absent from ``tree``.

    Attaching only this rank (never a higher one) makes tree generation
    blind to rank permutations; ``None`` when the budget is exhausted.
    """
    used = {
        instance.copy
        for instance in tree.instances
        if instance.free and instance.relation == relation
    }
    for rank in range(max_free):
        if rank not in used:
            return free_instance(relation, rank)
    return None


def _masked_code(
    tree: JoinTree, node: RelationInstance, parent: RelationInstance | None
) -> tuple:
    """AHU code of the tree rooted at ``node`` with free ranks masked."""
    label = (node.relation, node.free, -1 if node.free else node.copy)
    children = []
    for edge in tree.edges_of(node):
        neighbour = edge.other(node)
        if neighbour == parent:
            continue
        children.append((edge.fk, _masked_code(tree, neighbour, node)))
    children.sort()
    return (label, tuple(children))


def normalize_free_ranks(query: BoundQuery) -> BoundQuery:
    """Canonical free-rank relabeling of a bound query.

    Free instances of each relation receive ranks ``0..j-1`` following the
    lexicographic order of their masked rooted AHU codes (ties are true
    automorphisms, for which any order yields the same query).  Identity
    whenever every relation has at most one free instance.
    """
    tree = query.tree
    by_relation: dict[str, list[RelationInstance]] = {}
    for instance in tree.instances:
        if instance.free:
            by_relation.setdefault(instance.relation, []).append(instance)
    if all(len(instances) <= 1 for instances in by_relation.values()):
        needs_rank_fix = any(
            instances[0].copy != 0
            for instances in by_relation.values()
            if instances
        )
        if not needs_rank_fix:
            return query

    renaming: dict[RelationInstance, RelationInstance] = {}
    for relation, instances in by_relation.items():
        ordered = sorted(
            instances,
            key=lambda instance: (
                _masked_code(tree, instance, None),
                instance.copy,
            ),
        )
        for rank, instance in enumerate(ordered):
            if instance.copy != rank:
                renaming[instance] = free_instance(relation, rank)
    if not renaming:
        return query

    def rename(instance: RelationInstance) -> RelationInstance:
        return renaming.get(instance, instance)

    new_instances = frozenset(rename(instance) for instance in tree.instances)
    new_edges = frozenset(
        JoinEdge(edge.fk, rename(edge.a), edge.a_column, rename(edge.b), edge.b_column)
        for edge in tree.edges
    )
    new_tree = JoinTree(new_instances, new_edges)
    new_bindings = frozenset(
        (rename(instance), keyword) for instance, keyword in query.bindings
    )
    return BoundQuery(new_tree, new_bindings, query.mode)
