"""Persistence for the offline artifacts and for debug reports.

Phase 0 is "computed offline ... a one-time cost" (§3.1): a production
deployment generates the lattice once and serves queries from it.  This
module round-trips the lattice to JSON so deployments can do exactly that,
and serializes :class:`~repro.core.debugger.DebugReport` objects so the
debugging output can feed dashboards and regression suites.

Formats are plain JSON with a version tag; loaders validate against the
provided schema graph, so a lattice file cannot silently be applied to a
different database.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.debugger import DebugReport
from repro.core.lattice import Lattice, LatticeStats
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.schema import SchemaGraph

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Raised on malformed or mismatched artifact files."""


# ----------------------------------------------------------- tree encoding
def encode_tree(tree: JoinTree) -> dict[str, Any]:
    return {
        "instances": [
            [i.relation, i.copy, i.free] for i in tree.sorted_instances()
        ],
        "edges": [
            [edge.fk, edge.a.relation, edge.a.copy, edge.a.free, edge.a_column,
             edge.b.relation, edge.b.copy, edge.b.free, edge.b_column]
            for edge in sorted(
                tree.edges, key=lambda e: (e.a, e.a_column, e.b, e.b_column)
            )
        ],
    }


def decode_tree(payload: dict[str, Any]) -> JoinTree:
    try:
        instances = frozenset(
            RelationInstance(relation, copy, free)
            for relation, copy, free in payload["instances"]
        )
        edges = frozenset(
            JoinEdge(
                fk,
                RelationInstance(a_rel, a_copy, a_free),
                a_col,
                RelationInstance(b_rel, b_copy, b_free),
                b_col,
            )
            for fk, a_rel, a_copy, a_free, a_col,
                b_rel, b_copy, b_free, b_col in payload["edges"]
        )
        return JoinTree(instances, edges)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed join tree payload: {exc}") from exc


def encode_query(query: BoundQuery) -> dict[str, Any]:
    return {
        "tree": encode_tree(query.tree),
        "bindings": [
            [instance.relation, instance.copy, keyword]
            for instance, keyword in sorted(query.bindings)
        ],  # bound instances are never free, so no flag is needed here
        "mode": query.mode.value,
    }


# -------------------------------------------------------- lattice save/load
def save_lattice(lattice: Lattice, path: str | Path) -> None:
    """Write a lattice (nodes, adjacency, stats, config) as JSON."""
    stats = lattice.stats
    payload = {
        "format": FORMAT_VERSION,
        "kind": "lattice",
        "max_joins": lattice.max_joins,
        "max_keywords": lattice.max_keywords,
        "distinct_slots": lattice.distinct_slots,
        "free_copies": lattice.free_copies,
        "relations": sorted(lattice.schema.relations),
        "foreign_keys": sorted(lattice.schema.foreign_keys),
        "nodes": [
            {
                "tree": encode_tree(node.tree),
                "parents": sorted(node.parents),
            }
            for node in lattice.nodes
        ],
        "stats": {
            "levels": stats.levels,
            "nodes_per_level": stats.nodes_per_level,
            "duplicates_per_level": stats.duplicates_per_level,
            "time_per_level": stats.time_per_level,
        }
        if stats
        else None,
    }
    Path(path).write_text(json.dumps(payload))


def load_lattice(path: str | Path, schema: SchemaGraph) -> Lattice:
    """Read a lattice saved by :func:`save_lattice` and re-link it.

    The file's relation/foreign-key names must match ``schema`` exactly;
    node ids and adjacency are preserved.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "lattice" or payload.get("format") != FORMAT_VERSION:
        raise PersistenceError(f"{path} is not a v{FORMAT_VERSION} lattice file")
    if payload["relations"] != sorted(schema.relations) or payload[
        "foreign_keys"
    ] != sorted(schema.foreign_keys):
        raise PersistenceError(
            f"{path} was generated for a different schema graph"
        )
    lattice = Lattice(
        schema,
        payload["max_joins"],
        max_keywords=payload["max_keywords"],
        distinct_slots=payload["distinct_slots"],
        free_copies=payload["free_copies"],
    )
    for entry in payload["nodes"]:
        tree = decode_tree(entry["tree"])
        node_id, duplicate = lattice._add(tree)
        if duplicate:
            raise PersistenceError(f"duplicate node in {path}")
    # Parent links in a second pass, once all ids exist.
    for node_id, entry in enumerate(payload["nodes"]):
        for parent_id in entry["parents"]:
            if parent_id >= len(lattice.nodes):
                raise PersistenceError(f"dangling parent id in {path}")
            lattice._link(node_id, parent_id)
    stats = payload.get("stats")
    if stats:
        lattice.stats = LatticeStats(
            stats["levels"],
            stats["nodes_per_level"],
            stats["duplicates_per_level"],
            stats["time_per_level"],
        )
    return lattice


# -------------------------------------------------------- report export
def report_to_dict(report: DebugReport) -> dict[str, Any]:
    """A JSON-ready summary of one debugging run."""
    payload: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": "debug_report",
        "query": report.query,
        "keywords": list(report.mapping.keywords),
        "missing_keywords": list(report.mapping.missing_keywords),
        "aborted": report.aborted,
        "interpretations": len(report.mapping.interpretations),
        "mtn_count": report.mtn_count,
        "timings": {
            "keyword_mapping": report.timings.keyword_mapping,
            "lattice_pruning": report.timings.lattice_pruning,
            "mtn_discovery": report.timings.mtn_discovery,
            "traversal": report.timings.traversal,
        },
    }
    if report.traversal is not None:
        payload["answers"] = [encode_query(q) for q in report.answers()]
        payload["non_answers"] = [
            {
                "query": encode_query(query),
                "mpans": [encode_query(m) for m in mpans],
            }
            for query, mpans in report.explanations()
        ]
        payload["sql_queries_executed"] = report.traversal.stats.queries_executed
        payload["strategy"] = report.traversal.strategy
    return payload


def save_report(report: DebugReport, path: str | Path) -> None:
    Path(path).write_text(json.dumps(report_to_dict(report), indent=2))
