"""Persistence for the offline artifacts and for debug reports.

Phase 0 is "computed offline ... a one-time cost" (§3.1): a production
deployment generates the lattice once and serves queries from it.  This
module round-trips the lattice to JSON so deployments can do exactly that,
and serializes :class:`~repro.core.debugger.DebugReport` objects so the
debugging output can feed dashboards and regression suites.

Formats are plain JSON with a version tag; loaders validate against the
provided schema graph, so a lattice file cannot silently be applied to a
different database.

Writes are **atomic**: content goes to a temporary file in the target
directory first and is moved into place with :func:`os.replace`, so a
crash mid-save leaves either the old artifact or the new one, never a
truncated JSON file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.debugger import DebugReport
from repro.ioutil import atomic_write_text as _atomic_write_text
from repro.core.lattice import Lattice, LatticeStats
from repro.relational.jointree import (
    BoundQuery,
    JoinEdge,
    JoinTree,
    MatchMode,
    RelationInstance,
)
from repro.relational.schema import SchemaGraph

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Raised on malformed or mismatched artifact files."""


# ----------------------------------------------------------- tree encoding
def encode_tree(tree: JoinTree) -> dict[str, Any]:
    return {
        "instances": [
            [i.relation, i.copy, i.free] for i in tree.sorted_instances()
        ],
        "edges": [
            [edge.fk, edge.a.relation, edge.a.copy, edge.a.free, edge.a_column,
             edge.b.relation, edge.b.copy, edge.b.free, edge.b_column]
            for edge in sorted(
                tree.edges, key=lambda e: (e.a, e.a_column, e.b, e.b_column)
            )
        ],
    }


def decode_tree(payload: dict[str, Any]) -> JoinTree:
    try:
        instances = frozenset(
            RelationInstance(relation, copy, free)
            for relation, copy, free in payload["instances"]
        )
        edges = frozenset(
            JoinEdge(
                fk,
                RelationInstance(a_rel, a_copy, a_free),
                a_col,
                RelationInstance(b_rel, b_copy, b_free),
                b_col,
            )
            for fk, a_rel, a_copy, a_free, a_col,
                b_rel, b_copy, b_free, b_col in payload["edges"]
        )
        return JoinTree(instances, edges)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed join tree payload: {exc}") from exc


def encode_query(query: BoundQuery) -> dict[str, Any]:
    return {
        "tree": encode_tree(query.tree),
        "bindings": [
            [instance.relation, instance.copy, keyword]
            for instance, keyword in sorted(query.bindings)
        ],  # bound instances are never free, so no flag is needed here
        "mode": query.mode.value,
    }


def decode_query(payload: dict[str, Any]) -> BoundQuery:
    """Inverse of :func:`encode_query`; raises :class:`PersistenceError`."""
    try:
        tree = decode_tree(payload["tree"])
        bindings = frozenset(
            (RelationInstance(relation, copy), keyword)
            for relation, copy, keyword in payload["bindings"]
        )
        mode = MatchMode(payload["mode"])
        return BoundQuery(tree, bindings, mode)
    except PersistenceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed bound query payload: {exc}") from exc


# -------------------------------------------------------- lattice save/load
def save_lattice(lattice: Lattice, path: str | Path) -> None:
    """Write a lattice (nodes, adjacency, stats, config) as JSON."""
    stats = lattice.stats
    payload = {
        "format": FORMAT_VERSION,
        "kind": "lattice",
        "max_joins": lattice.max_joins,
        "max_keywords": lattice.max_keywords,
        "distinct_slots": lattice.distinct_slots,
        "free_copies": lattice.free_copies,
        "relations": sorted(lattice.schema.relations),
        "foreign_keys": sorted(lattice.schema.foreign_keys),
        "nodes": [
            {
                "tree": encode_tree(node.tree),
                "parents": sorted(node.parents),
            }
            for node in lattice.nodes
        ],
        "stats": {
            "levels": stats.levels,
            "nodes_per_level": stats.nodes_per_level,
            "duplicates_per_level": stats.duplicates_per_level,
            "time_per_level": stats.time_per_level,
        }
        if stats
        else None,
    }
    _atomic_write_text(path, json.dumps(payload))


def load_lattice(path: str | Path, schema: SchemaGraph) -> Lattice:
    """Read a lattice saved by :func:`save_lattice` and re-link it.

    The file's relation/foreign-key names must match ``schema`` exactly;
    node ids and adjacency are preserved.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "lattice" or payload.get("format") != FORMAT_VERSION:
        raise PersistenceError(f"{path} is not a v{FORMAT_VERSION} lattice file")
    if payload["relations"] != sorted(schema.relations) or payload[
        "foreign_keys"
    ] != sorted(schema.foreign_keys):
        raise PersistenceError(
            f"{path} was generated for a different schema graph"
        )
    stats = payload.get("stats")
    try:
        return Lattice.from_parts(
            schema,
            payload["max_joins"],
            nodes=[
                (decode_tree(entry["tree"]), entry["parents"])
                for entry in payload["nodes"]
            ],
            max_keywords=payload["max_keywords"],
            distinct_slots=payload["distinct_slots"],
            free_copies=payload["free_copies"],
            stats=LatticeStats(
                stats["levels"],
                stats["nodes_per_level"],
                stats["duplicates_per_level"],
                stats["time_per_level"],
            )
            if stats
            else None,
        )
    except PersistenceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"corrupt lattice file {path}: {exc}") from exc


# -------------------------------------------------------- report export
def report_to_dict(report: DebugReport) -> dict[str, Any]:
    """A JSON-ready summary of one debugging run."""
    payload: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": "debug_report",
        "query": report.query,
        "keywords": list(report.mapping.keywords),
        "missing_keywords": list(report.mapping.missing_keywords),
        "aborted": report.aborted,
        "interpretations": len(report.mapping.interpretations),
        "mtn_count": report.mtn_count,
        "timings": {
            "keyword_mapping": report.timings.keyword_mapping,
            "lattice_pruning": report.timings.lattice_pruning,
            "mtn_discovery": report.timings.mtn_discovery,
            "traversal": report.timings.traversal,
        },
    }
    if report.traversal is not None:
        payload["answers"] = [encode_query(q) for q in report.answers()]
        payload["non_answers"] = [
            {
                "query": encode_query(query),
                "mpans": [encode_query(m) for m in mpans],
            }
            for query, mpans in report.explanations()
        ]
        payload["sql_queries_executed"] = report.traversal.stats.queries_executed
        payload["strategy"] = report.traversal.strategy
    return payload


def save_report(report: DebugReport, path: str | Path) -> None:
    _atomic_write_text(path, json.dumps(report_to_dict(report), indent=2))


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report saved by :func:`save_report`.

    Returns the payload dict with every embedded query decoded in place:
    ``answers`` becomes a list of :class:`BoundQuery`, and each
    ``non_answers`` entry becomes ``{"query": BoundQuery, "mpans":
    [BoundQuery, ...]}``.  Raises :class:`PersistenceError` on anything
    that is not a well-formed current-version debug report, so a
    round-trip failure is loud.
    """
    raw = Path(path).read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise PersistenceError(f"{path} is not a JSON object")
    if (
        payload.get("kind") != "debug_report"
        or payload.get("format") != FORMAT_VERSION
    ):
        raise PersistenceError(
            f"{path} is not a v{FORMAT_VERSION} debug report file"
        )
    for key in (
        "query",
        "keywords",
        "missing_keywords",
        "aborted",
        "interpretations",
        "mtn_count",
        "timings",
    ):
        if key not in payload:
            raise PersistenceError(f"{path} is missing report field {key!r}")
    if "answers" in payload:
        payload["answers"] = [decode_query(q) for q in payload["answers"]]
    if "non_answers" in payload:
        payload["non_answers"] = [
            {
                "query": decode_query(entry["query"]),
                "mpans": [decode_query(m) for m in entry["mpans"]],
            }
            for entry in payload["non_answers"]
        ]
    return payload
