"""Interactive debugging sessions (§5, future work).

The paper notes that *"debugging is often an interactive process and it is
worth studying how to combine the search for MPANs with user intervention."*
A :class:`DebugSession` supports exactly that workflow: the developer sees
the list of candidate networks, classifies cheap ones on demand, asks for
explanations only where they care, and dismisses uninteresting candidates --
all over **one shared status store and evaluation cache**, so every action
benefits from everything learned before it (rules R1/R2 included).

Sessions inherit the debugger's persistent probe cache automatically:
when the :class:`NonAnswerDebugger` was opened with a ``cache_dir``, the
evaluator built here carries it as the L2 tier, so a session over a
previously debugged (and unchanged) database starts warm -- classifying
an already-probed candidate costs zero SQL queries even in a fresh
process.

Example::

    session = DebugSession(debugger, "saffron scented candle")
    for mtn in session.overview():          # no SQL yet
        print(mtn)
    session.classify(0)                     # 1 SQL query (or 0 if inferred)
    session.explain(0)                      # resolves just that search space
    session.dismiss(1)                      # never spend SQL on this one
    print(session.progress())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import UNCONSTRAINED, SearchConstraints
from repro.core.debugger import NonAnswerDebugger
from repro.core.status import Status, StatusStore
from repro.core.traversal.base import seed_base_levels
from repro.obs.budget import ProbeBudget, ProbeBudgetExhausted
from repro.obs.trace import ProbeTracer
from repro.relational.jointree import BoundQuery


class SessionError(RuntimeError):
    """Raised on invalid session operations (unknown or aborted queries)."""


@dataclass(frozen=True)
class MtnView:
    """One candidate network as shown to the interactive user."""

    position: int
    query: BoundQuery
    status: Status
    dismissed: bool
    explained: bool

    def __str__(self) -> str:
        flags = [self.status.value]
        if self.dismissed:
            flags.append("dismissed")
        if self.explained:
            flags.append("explained")
        return f"[{self.position}] {self.query.describe()} ({', '.join(flags)})"


class DebugSession:
    """Incremental, user-driven exploration of one keyword query."""

    def __init__(
        self,
        debugger: NonAnswerDebugger,
        query: str,
        constraints: SearchConstraints = UNCONSTRAINED,
        budget: ProbeBudget | None = None,
        tracer: ProbeTracer | None = None,
    ):
        self.debugger = debugger
        self.query = query
        mapping = debugger.map_keywords(query)
        if not mapping.complete or not mapping.keywords:
            missing = ", ".join(mapping.missing_keywords) or "(empty query)"
            raise SessionError(
                f"cannot open a session: keywords not in the database: {missing}"
            )
        self.mapping = mapping
        self.graph = debugger.build_graph(debugger.prune(mapping), constraints)
        self.budget = budget
        self.evaluator = debugger.make_evaluator(
            use_cache=True, budget=budget, tracer=tracer
        )
        self.store = StatusStore(self.graph)
        seed_base_levels(self.graph, self.store, debugger.database)
        # Warm start: replay persisted classification facts (exact or
        # monotonically repaired after a mutation) through R1/R2 closure,
        # so previously learned statuses cost zero SQL this session.
        self.preloaded = debugger.preload_session_store(
            self.mapping, self.graph, self.store, tracer=tracer
        )
        self._dismissed: set[int] = set()
        self._explained: dict[int, list[int]] = {}
        # Flipped when the budget refuses a probe; every action after that
        # degrades to "report what is already known" instead of failing.
        self.exhausted = False
        self._closed = False

    # -------------------------------------------------------------- reading
    def overview(self) -> list[MtnView]:
        """All candidate networks with their current knowledge (no SQL)."""
        views = []
        for position, mtn_index in enumerate(self.graph.mtn_indexes):
            views.append(
                MtnView(
                    position,
                    self.graph.node(mtn_index).query,
                    self.store.status(mtn_index),
                    mtn_index in self._dismissed,
                    mtn_index in self._explained,
                )
            )
        return views

    def progress(self) -> str:
        classified = sum(
            1
            for mtn_index in self.graph.mtn_indexes
            if self.store.is_known(mtn_index)
        )
        suffix = " [budget exhausted]" if self.exhausted else ""
        return (
            f"{classified}/{len(self.graph.mtn_indexes)} candidate networks "
            f"classified, {len(self._explained)} explained, "
            f"{len(self._dismissed)} dismissed; {self.evaluator.stats}{suffix}"
        )

    def _mtn_index(self, position: int) -> int:
        try:
            return self.graph.mtn_indexes[position]
        except IndexError:
            raise SessionError(
                f"no candidate network #{position}; the session has "
                f"{len(self.graph.mtn_indexes)}"
            ) from None

    # -------------------------------------------------------------- actions
    def classify(self, position: int) -> Status:
        """Classify one candidate network with the least possible work.

        Costs one SQL query unless its status is already implied by earlier
        answers (shared store) or by the evaluation cache.  When the probe
        budget is exhausted the candidate stays ``POSSIBLY_ALIVE`` and the
        session is flagged :attr:`exhausted` instead of raising.
        """
        mtn_index = self._mtn_index(position)
        if not self.store.is_known(mtn_index):
            try:
                alive = self.evaluator.is_alive(self.graph.node(mtn_index).query)
            except ProbeBudgetExhausted:
                self.exhausted = True
                return self.store.status(mtn_index)
            self.store.record(mtn_index, alive)
        return self.store.status(mtn_index)

    def explain(self, position: int) -> list[BoundQuery]:
        """MPANs of one candidate network, resolving only its search space.

        Alive candidates have no explanation (they *are* answers) and return
        an empty list.  The resolution sweeps the candidate's descendants
        top-down through the shared store, so overlapping spaces of other
        candidates get classified for free.  If the probe budget runs out
        mid-resolution the partial knowledge is kept in the shared store,
        nothing is cached as "explained", and an empty list is returned --
        a later call with a fresh budget picks up where this one stopped.
        """
        mtn_index = self._mtn_index(position)
        if self.classify(position) is not Status.DEAD:
            return []
        if mtn_index not in self._explained:
            domain = self.graph.desc_plus(mtn_index)
            try:
                for level in range(self.graph.node(mtn_index).level - 1, 0, -1):
                    unknown = self.store.unknown_mask & domain
                    if not unknown:
                        break
                    for index in self.graph.level_indexes(level):
                        if (unknown >> index) & 1 and not self.store.is_known(index):
                            alive = self.evaluator.is_alive(
                                self.graph.node(index).query
                            )
                            self.store.record(index, alive)
            except ProbeBudgetExhausted:
                self.exhausted = True
                return []
            self._explained[mtn_index] = self.store.mpans_of(mtn_index)
        return [
            self.graph.node(index).query for index in self._explained[mtn_index]
        ]

    def dismiss(self, position: int) -> None:
        """Mark a candidate as uninteresting; bulk operations skip it."""
        self._dismissed.add(self._mtn_index(position))

    def explain_all(self) -> dict[int, list[BoundQuery]]:
        """Explain every non-dismissed candidate network.

        Stops early (with whatever was completed) once the probe budget is
        exhausted; :attr:`exhausted` tells the caller the dict is partial.
        """
        explanations = {}
        for position, mtn_index in enumerate(self.graph.mtn_indexes):
            if mtn_index in self._dismissed:
                continue
            if self.exhausted:
                break
            mpans = self.explain(position)
            if (
                self.store.status(mtn_index) is Status.DEAD
                and mtn_index in self._explained
            ):
                explanations[position] = mpans
        # Persist what this session learned (complete or not): the next
        # session over byte-identical content preloads it for free.
        self.debugger.save_session_status(
            self.mapping, self.graph, self.store, exhausted=self.exhausted
        )
        return explanations

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """End the session, persisting everything it learned.

        Partial knowledge is saved too -- the next session over
        byte-identical content preloads it through R1/R2 replay, so no
        probe this session paid for is ever re-executed.  Idempotent,
        and safe after :meth:`explain_all` (the status cache keeps the
        newest facts for the workload either way).  The session borrows
        the debugger's backend and caches, so nothing else needs
        releasing here.
        """
        if self._closed:
            return
        self._closed = True
        self.debugger.save_session_status(
            self.mapping, self.graph, self.store, exhausted=self.exhausted
        )

    def __enter__(self) -> "DebugSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
