"""Post-processing of debugging output: filters and priority ordering.

§1 of the paper observes that the number of sub-queries can be large and
suggests letting the developer *"define various filters or a priority
hierarchy on the returned sub-queries"* on top of the core machinery.  This
module provides that layer.  Nothing here affects the search itself (use
:mod:`repro.core.constraints` for pushdown); these are presentation-time
transforms over a finished :class:`~repro.core.debugger.DebugReport`.

Rankers are plain scoring callables; higher scores sort first.  The built-in
rankers order MPANs by how much of the original query they preserve --
keyword coverage first, then size -- which surfaces the most informative
frontier causes (e.g. ``I^scented ⋈ A^saffron`` before the trivial
``C^saffron``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.debugger import DebugReport
from repro.relational.jointree import BoundQuery

MpanScorer = Callable[[BoundQuery, BoundQuery], float]
MpanFilter = Callable[[BoundQuery, BoundQuery], bool]


def keyword_coverage(mpan: BoundQuery, non_answer: BoundQuery) -> float:
    """Fraction of the non-answer's keywords the MPAN still carries."""
    total = len(non_answer.keywords)
    if not total:
        return 0.0
    return len(mpan.keywords & non_answer.keywords) / total


def relative_size(mpan: BoundQuery, non_answer: BoundQuery) -> float:
    """Fraction of the non-answer's join tree the MPAN preserves."""
    return mpan.tree.size / non_answer.tree.size


def default_scorer(mpan: BoundQuery, non_answer: BoundQuery) -> float:
    """Coverage-first, size-second (coverage dominates via weighting)."""
    return 10.0 * keyword_coverage(mpan, non_answer) + relative_size(mpan, non_answer)


def only_bound(mpan: BoundQuery, non_answer: BoundQuery) -> bool:
    """Keep MPANs that carry at least one keyword (drop free-only frontiers)."""
    return bool(mpan.keywords)


@dataclass(frozen=True)
class RankedExplanation:
    """One non-answer with its filtered, priority-ordered MPANs."""

    non_answer: BoundQuery
    mpans: tuple[BoundQuery, ...]
    scores: tuple[float, ...]

    def top(self, k: int) -> list[BoundQuery]:
        return list(self.mpans[:k])


@dataclass
class ExplanationRanker:
    """Configurable filter + priority hierarchy over a report's explanations."""

    scorer: MpanScorer = field(default=default_scorer)
    filters: tuple[MpanFilter, ...] = ()
    top_k: int | None = None

    def rank_mpans(
        self, non_answer: BoundQuery, mpans: list[BoundQuery]
    ) -> RankedExplanation:
        kept = [
            mpan
            for mpan in mpans
            if all(keep(mpan, non_answer) for keep in self.filters)
        ]
        scored = sorted(
            ((self.scorer(mpan, non_answer), mpan) for mpan in kept),
            key=lambda pair: (-pair[0], pair[1].describe()),
        )
        if self.top_k is not None:
            scored = scored[: self.top_k]
        return RankedExplanation(
            non_answer,
            tuple(mpan for _, mpan in scored),
            tuple(score for score, _ in scored),
        )

    def rank_report(self, report: DebugReport) -> list[RankedExplanation]:
        """Rank every non-answer's MPANs; non-answers with the most keyword
        interpretations ruled out come first."""
        ranked = [
            self.rank_mpans(non_answer, mpans)
            for non_answer, mpans in report.explanations()
        ]
        ranked.sort(
            key=lambda explanation: (
                -(max(explanation.scores, default=0.0)),
                explanation.non_answer.describe(),
            )
        )
        return ranked

    def render(self, report: DebugReport, max_items: int = 5) -> str:
        """Human-readable prioritized summary."""
        lines = [f'Prioritized explanations for "{report.query}":']
        for explanation in self.rank_report(report)[:max_items]:
            lines.append(f"  - {explanation.non_answer.describe()}")
            for score, mpan in zip(explanation.scores, explanation.mpans):
                lines.append(f"      {score:5.2f}  {mpan.describe()}")
        return "\n".join(lines)
