"""Bottom-up traversals: BU (per MTN) and BUWR (all MTNs, with reuse)."""

from __future__ import annotations

from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusStore
from repro.core.traversal.base import (
    TraversalResult,
    TraversalStrategy,
    extract_level_frontier,
    probe_frontier,
    seed_base_levels,
)
from repro.obs.budget import ProbeBudgetExhausted
from repro.relational.database import Database
from repro.relational.evaluator import BatchExecutor, InstrumentedEvaluator


def _sweep_up(
    graph: ExplorationGraph,
    store: StatusStore,
    evaluator: InstrumentedEvaluator,
    max_level: int,
    executor: BatchExecutor | None = None,
) -> None:
    """Evaluate unknown in-domain nodes level by level, lowest first.

    Dead nodes kill their ancestors (R2), so higher levels shrink as the
    sweep climbs; alive nodes point upward only, so nothing below is saved --
    the paper's reason BU struggles when answers sit high in the lattice.
    Each level's unknown nodes form one implication-independent frontier
    (probing one cannot classify another at the same level), evaluated as
    a batch -- concurrently when an ``executor`` is given.
    """
    for level in range(2, max_level + 1):
        if not store.unknown_mask:
            return
        frontier = extract_level_frontier(graph, store, level)
        probe_frontier(graph, store, evaluator, frontier, executor)


class BottomUpStrategy(TraversalStrategy):
    """BU (§2.5.1): each MTN's sub-lattice is swept independently.

    Common descendants of different MTNs are re-evaluated for every MTN --
    no reuse -- which is exactly what Figure 11/Table 4 measure for "BU".
    """

    name = "bu"
    uses_reuse = False

    def _run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        result: TraversalResult,
        executor: BatchExecutor | None = None,
    ) -> None:
        for mtn_index in graph.mtn_indexes:
            store = StatusStore(graph, domain=graph.desc_plus(mtn_index))
            seed_base_levels(graph, store, database)
            try:
                _sweep_up(
                    graph, store, evaluator, graph.node(mtn_index).level, executor
                )
            except ProbeBudgetExhausted:
                # Keep what this MTN's partial sweep implied, then stop;
                # later MTNs would need probes the budget no longer allows.
                result.exhausted = True
                self._collect(
                    store, result, mtn_index, partial=True, tracer=evaluator.tracer
                )
                return
            self._collect(store, result, mtn_index, tracer=evaluator.tracer)


class BottomUpWithReuseStrategy(TraversalStrategy):
    """BUWR (§2.5.2, Algorithm 3): one shared sweep over all MTNs."""

    name = "buwr"
    uses_reuse = True

    def _run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        result: TraversalResult,
        executor: BatchExecutor | None = None,
    ) -> None:
        store = StatusStore(graph)
        seed_base_levels(graph, store, database)
        try:
            _sweep_up(graph, store, evaluator, graph.max_level, executor)
        except ProbeBudgetExhausted:
            result.exhausted = True
        for mtn_index in graph.mtn_indexes:
            self._collect(
                store,
                result,
                mtn_index,
                partial=result.exhausted,
                tracer=evaluator.tracer,
            )
