"""SBH: the score-based greedy traversal heuristic (§2.5.3).

Each unevaluated node ``n`` gets the score of Equation (1):

    Score(n) = sum_i [ p_a * |S_a(m_i)| + (1 - p_a) * |S_d(m_i)| ]

where ``S(m_i)`` is the current search space of MTN ``m_i`` (its
still-unclassified descendants), ``S_a``/``S_d`` are the spaces remaining if
``n`` turns out alive/dead, and ``p_a`` is the prior probability that a node
is alive.  The node with the minimum score -- the largest expected reduction
of the remaining search space -- is evaluated next.

Using the paper's expansion of the score (end of §2.5.3), with
``w[j] = #{i : j in S(m_i)}``:

    Score(n) = T - p_a * sum_{j in Desc+(n)} w[j]
                 - (1 - p_a) * sum_{j in Asc+(n)} w[j]

``T = sum_i |S(m_i)|`` is constant across candidates, so the greedy choice
maximizes ``p_a * WD(n) + (1 - p_a) * WA(n)``.  ``WD``/``WA`` are computed
for every candidate at once as two sparse matrix-vector products
(``scipy.sparse``), which keeps each greedy step linear in the number of
(node, descendant) pairs.

Bookkeeping facts that make the update cheap (proved in ``tests``):
``S(m_i)`` is always ``unknown ∩ Desc+(m_i)`` (dead MTNs keep their space
until it is fully classified; an alive MTN's space empties automatically
because R1 classifies all of its descendants), so ``w`` only ever changes by
zeroing entries of newly classified nodes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusStore
from repro.core.traversal.base import (
    TraversalResult,
    TraversalStrategy,
    probe_frontier,
    seed_base_levels,
)
from repro.obs.budget import ProbeBudgetExhausted
from repro.relational.database import Database
from repro.relational.evaluator import BatchExecutor, InstrumentedEvaluator

DEFAULT_PROBABILITY_ALIVE = 0.5


def _closure_matrix(graph: ExplorationGraph, masks: list[int]) -> sparse.csr_matrix:
    """CSR matrix M with M[n, j] = 1 iff j is in the (self-inclusive) mask of n."""
    indptr = [0]
    indices: list[int] = []
    for index in range(len(graph)):
        members = graph.bits(masks[index] | (1 << index))
        indices.extend(members)
        indptr.append(len(indices))
    data = np.ones(len(indices), dtype=np.float64)
    size = len(graph)
    return sparse.csr_matrix(
        (data, np.array(indices, dtype=np.int64), np.array(indptr, dtype=np.int64)),
        shape=(size, size),
    )


class ScoreBasedStrategy(TraversalStrategy):
    """SBH: greedily evaluate the node with the minimum expected search space."""

    name = "sbh"
    uses_reuse = True

    def __init__(self, probability_alive: float = DEFAULT_PROBABILITY_ALIVE):
        if not 0.0 <= probability_alive <= 1.0:
            raise ValueError("probability_alive must be within [0, 1]")
        self.probability_alive = probability_alive

    def _run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        result: TraversalResult,
        executor: BatchExecutor | None = None,
    ) -> None:
        store = StatusStore(graph)
        seed_base_levels(graph, store, database)

        size = len(graph)
        # w[j] = number of MTN search spaces containing node j.
        weight = np.zeros(size, dtype=np.float64)
        for mtn_index in graph.mtn_indexes:
            for member in graph.bits(graph.desc_plus(mtn_index)):
                weight[member] += 1.0
        known = store.alive_mask | store.dead_mask
        self._zero_bits(weight, graph, known)

        desc_matrix = _closure_matrix(graph, graph.desc_mask)
        asc_matrix = _closure_matrix(graph, graph.asc_mask)
        p_alive = self.probability_alive

        try:
            while True:
                candidates = np.flatnonzero(weight)
                if candidates.size == 0:
                    break
                # argmin Score == argmax p_a*WD + (1-p_a)*WA (see module docstring)
                gain = p_alive * (desc_matrix @ weight) + (1.0 - p_alive) * (
                    asc_matrix @ weight
                )
                best = int(candidates[np.argmax(gain[candidates])])
                # SBH's next choice depends on this probe's answer, so its
                # frontier is a singleton: no speedup from workers, but the
                # probe count and classifications stay byte-identical.
                probe_frontier(graph, store, evaluator, [best], executor)
                now_known = store.alive_mask | store.dead_mask
                self._zero_bits(weight, graph, now_known & ~known)
                known = now_known
        except ProbeBudgetExhausted:
            result.exhausted = True

        for mtn_index in graph.mtn_indexes:
            self._collect(
                store,
                result,
                mtn_index,
                partial=result.exhausted,
                tracer=evaluator.tracer,
            )

    @staticmethod
    def _zero_bits(weight: np.ndarray, graph: ExplorationGraph, mask: int) -> None:
        """Zero the weight of every node whose bit is set in ``mask``."""
        if mask:
            weight[graph.bits(mask)] = 0.0
