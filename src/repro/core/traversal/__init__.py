"""Phase-3 lattice traversal strategies (§2.5 of the paper).

Five strategies, one shared semantics: classify every MTN as alive or dead
and, for each dead MTN, find its MPANs, while minimizing the number of SQL
queries executed.

* ``bu`` / ``td`` -- bottom-up / top-down, one MTN at a time, no sharing
  (§2.5.1);
* ``buwr`` / ``tdwr`` -- the same sweeps over all MTNs simultaneously with a
  shared status store and evaluation cache (§2.5.2, Algorithm 3);
* ``sbh`` -- the score-based greedy heuristic (§2.5.3, Equation 1).

All strategies produce identical classifications and MPAN sets (a property
test asserts this); they differ only in how many queries they execute.
"""

from repro.core.traversal.base import (
    TraversalResult,
    TraversalStrategy,
    seed_base_levels,
)
from repro.core.traversal.bottom_up import BottomUpStrategy, BottomUpWithReuseStrategy
from repro.core.traversal.top_down import TopDownStrategy, TopDownWithReuseStrategy
from repro.core.traversal.score import ScoreBasedStrategy
from repro.core.traversal.sharding import (
    SHARDABLE_STRATEGIES,
    Shard,
    ShardFailure,
    ShardSweepOutcome,
    extract_shards,
    run_shard_traversal,
)

_STRATEGIES = {
    "bu": BottomUpStrategy,
    "td": TopDownStrategy,
    "buwr": BottomUpWithReuseStrategy,
    "tdwr": TopDownWithReuseStrategy,
    "sbh": ScoreBasedStrategy,
}

STRATEGY_NAMES = tuple(_STRATEGIES)


def get_strategy(name: str, **kwargs: object) -> TraversalStrategy:
    """Instantiate a traversal strategy by its paper acronym."""
    try:
        cls = _STRATEGIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "TraversalResult",
    "TraversalStrategy",
    "seed_base_levels",
    "BottomUpStrategy",
    "BottomUpWithReuseStrategy",
    "TopDownStrategy",
    "TopDownWithReuseStrategy",
    "ScoreBasedStrategy",
    "STRATEGY_NAMES",
    "get_strategy",
    "SHARDABLE_STRATEGIES",
    "Shard",
    "ShardFailure",
    "ShardSweepOutcome",
    "extract_shards",
    "run_shard_traversal",
]
