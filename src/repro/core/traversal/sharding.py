"""Shard extraction for distributed lattice exploration.

The exploration graph decomposes naturally along the query structure:
every MTN owns a connected descendant subtree (its search space), and a
traversal classifies an MTN using only probes inside that cone.  A
**shard** is a set of MTNs plus the union of their cones -- a closed
sub-domain a worker process can sweep against a read-only snapshot of
the database with *zero* coordination, because

* R1 closure (alive => descendants alive) stays inside the cone, and
* R2 closure (dead => ancestors dead) escapes the cone only upward into
  other MTNs' cones, which the coordinator re-derives when it merges the
  shard's :class:`~repro.core.status.StatusDelta` (in deterministic
  shard order, so merged stores are byte-identical across runs).

Shard assignment is deterministic: MTNs are sorted by descending cone
size (ties by index) and placed greedily on the least-loaded shard
(LPT scheduling), so the same graph always produces the same shards and
a re-run -- parallel or serial -- reproduces the same merged result.

Sharding trades *reuse* for *parallelism*: cones overlap, and a node
shared by two shards is probed once per shard (the per-shard evaluator
caches never talk to each other).  Classifications are unaffected --
aliveness is ground truth -- which is exactly why the sharded run stays
byte-identical to serial in classifications and MPANs while its
executed-query count may exceed a shared-cache serial sweep's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusStore
from repro.core.traversal.base import seed_base_levels
from repro.obs.budget import ProbeBudgetExhausted
from repro.relational.database import Database
from repro.relational.evaluator import InstrumentedEvaluator

#: Strategies whose sweeps decompose along MTN cones.  SBH's greedy
#: choice depends on every previous answer across the whole graph, so it
#: stays coordinator-side (its frontier is a singleton by design).
SHARDABLE_STRATEGIES: tuple[str, ...] = ("bu", "td", "buwr", "tdwr")


@dataclass(frozen=True)
class Shard:
    """One unit of distributable traversal work."""

    shard_id: int
    mtn_indexes: tuple[int, ...]
    #: Union of ``desc_plus`` over the shard's MTNs -- the node bitset a
    #: worker's :class:`~repro.core.status.StatusStore` is restricted to.
    domain: int

    @property
    def node_count(self) -> int:
        return self.domain.bit_count()

    @property
    def mtn_count(self) -> int:
        return len(self.mtn_indexes)


@dataclass
class ShardFailure:
    """A structured record of one shard that did not complete remotely.

    Never silently dropped: the coordinator retries the shard serially
    (once) and records whether that recovery succeeded, so a crash or
    timeout degrades to reduced parallelism, not to missing MTNs.
    """

    shard_id: int
    kind: str  # "crash" | "timeout" | "error"
    message: str
    retried: bool = False
    recovered: bool = False
    traceback_text: str = ""

    def render(self) -> str:
        state = "recovered serially" if self.recovered else "NOT recovered"
        return f"shard {self.shard_id} {self.kind} ({state}): {self.message}"


def extract_shards(graph: ExplorationGraph, shard_count: int) -> list[Shard]:
    """Partition the graph's MTNs into at most ``shard_count`` shards.

    Deterministic LPT balancing on cone size: big search spaces spread
    first, ties broken by MTN index, shard load compared by (node count,
    shard id).  Every MTN lands in exactly one shard and the shard
    domains jointly cover every exploration node (cones may overlap).
    Fewer MTNs than ``shard_count`` yields fewer (non-empty) shards.
    """
    if shard_count <= 0:
        raise ValueError("shard_count must be positive")
    mtns = sorted(
        graph.mtn_indexes,
        key=lambda index: (-graph.desc_plus(index).bit_count(), index),
    )
    count = min(shard_count, len(mtns))
    members: list[list[int]] = [[] for _ in range(count)]
    loads = [0] * count
    for mtn_index in mtns:
        target = min(range(count), key=lambda shard: (loads[shard], shard))
        members[target].append(mtn_index)
        loads[target] += graph.desc_plus(mtn_index).bit_count()
    shards = []
    for shard_id, mtn_indexes in enumerate(members):
        domain = 0
        for mtn_index in mtn_indexes:
            domain |= graph.desc_plus(mtn_index)
        shards.append(Shard(shard_id, tuple(sorted(mtn_indexes)), domain))
    return shards


@dataclass
class ShardSweepOutcome:
    """What one shard's local traversal learned."""

    store: StatusStore
    exhausted: bool = False
    #: Per-MTN stores for the non-reuse strategies (BU/TD); empty for the
    #: shared-store sweeps.  Only the merged masks travel off-process.
    per_mtn: dict[int, StatusStore] = field(default_factory=dict)


def run_shard_traversal(
    graph: ExplorationGraph,
    database: Database,
    strategy_name: str,
    shard: Shard,
    evaluator: InstrumentedEvaluator,
) -> ShardSweepOutcome:
    """Sweep one shard's cone with the named strategy's probe order.

    Mirrors the serial strategies exactly, restricted to the shard: BU/TD
    sweep each MTN's cone independently (fresh store, no reuse), BUWR/
    TDWR run one shared sweep over the whole shard domain.  A budget
    refusal stops the sweep cleanly; everything classified so far is
    kept (anytime semantics), and the outcome is flagged ``exhausted``.
    """
    from repro.core.traversal.bottom_up import _sweep_up
    from repro.core.traversal.top_down import _sweep_down

    if strategy_name not in SHARDABLE_STRATEGIES:
        raise ValueError(
            f"strategy {strategy_name!r} is not shardable; "
            f"choose from {SHARDABLE_STRATEGIES}"
        )
    upward = strategy_name in ("bu", "buwr")
    sweep = _sweep_up if upward else _sweep_down
    merged = StatusStore(graph, domain=shard.domain)
    outcome = ShardSweepOutcome(store=merged)
    if strategy_name in ("bu", "td"):
        for mtn_index in shard.mtn_indexes:
            store = StatusStore(graph, domain=graph.desc_plus(mtn_index))
            seed_base_levels(graph, store, database)
            try:
                sweep(graph, store, evaluator, graph.node(mtn_index).level)
            except ProbeBudgetExhausted:
                outcome.exhausted = True
                outcome.per_mtn[mtn_index] = store
                merged.apply_delta(store.export_delta())
                return outcome
            outcome.per_mtn[mtn_index] = store
            merged.apply_delta(store.export_delta())
        return outcome
    seed_base_levels(graph, merged, database)
    max_level = max(
        (graph.node(index).level for index in shard.mtn_indexes), default=0
    )
    try:
        sweep(graph, merged, evaluator, max_level)
    except ProbeBudgetExhausted:
        outcome.exhausted = True
    return outcome
