"""Top-down traversals: TD (per MTN) and TDWR (all MTNs, with reuse)."""

from __future__ import annotations

from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusStore
from repro.core.traversal.base import (
    TraversalResult,
    TraversalStrategy,
    extract_level_frontier,
    probe_frontier,
    seed_base_levels,
)
from repro.obs.budget import ProbeBudgetExhausted
from repro.relational.database import Database
from repro.relational.evaluator import BatchExecutor, InstrumentedEvaluator


def _sweep_down(
    graph: ExplorationGraph,
    store: StatusStore,
    evaluator: InstrumentedEvaluator,
    max_level: int,
    executor: BatchExecutor | None = None,
) -> None:
    """Evaluate unknown in-domain nodes level by level, highest first.

    Alive nodes mark their whole descendant cone alive (R1), which is why TD
    wins when answers/MPANs sit high in the lattice: an alive MTN costs a
    single query.  As in the bottom-up sweep, each level's unknown nodes are
    one implication-independent frontier evaluated as a batch.
    """
    for level in range(max_level, 0, -1):
        if not store.unknown_mask:
            return
        frontier = extract_level_frontier(graph, store, level)
        probe_frontier(graph, store, evaluator, frontier, executor)


class TopDownStrategy(TraversalStrategy):
    """TD (§2.5.1): each MTN's sub-lattice is swept independently."""

    name = "td"
    uses_reuse = False

    def _run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        result: TraversalResult,
        executor: BatchExecutor | None = None,
    ) -> None:
        for mtn_index in graph.mtn_indexes:
            store = StatusStore(graph, domain=graph.desc_plus(mtn_index))
            seed_base_levels(graph, store, database)
            try:
                _sweep_down(
                    graph, store, evaluator, graph.node(mtn_index).level, executor
                )
            except ProbeBudgetExhausted:
                result.exhausted = True
                self._collect(
                    store, result, mtn_index, partial=True, tracer=evaluator.tracer
                )
                return
            self._collect(store, result, mtn_index, tracer=evaluator.tracer)


class TopDownWithReuseStrategy(TraversalStrategy):
    """TDWR (§2.5.2): one shared top-down sweep over all MTNs."""

    name = "tdwr"
    uses_reuse = True

    def _run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        result: TraversalResult,
        executor: BatchExecutor | None = None,
    ) -> None:
        store = StatusStore(graph)
        seed_base_levels(graph, store, database)
        try:
            _sweep_down(graph, store, evaluator, graph.max_level, executor)
        except ProbeBudgetExhausted:
            result.exhausted = True
        for mtn_index in graph.mtn_indexes:
            self._collect(
                store,
                result,
                mtn_index,
                partial=result.exhausted,
                tracer=evaluator.tracer,
            )
