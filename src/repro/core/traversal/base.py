"""Shared machinery for the Phase-3 traversal strategies.

Frontier batching lives here too: :func:`extract_level_frontier` yields
the still-unknown nodes of one lattice level -- probes whose R1/R2
implication cones are disjoint (aliveness classifies strictly lower
levels, deadness strictly higher ones, so same-level probes can never
classify each other) -- and :func:`probe_frontier` evaluates such a batch
through :meth:`~repro.relational.evaluator.InstrumentedEvaluator.probe_many`,
applying the answers to the :class:`~repro.core.status.StatusStore` in
deterministic submission order.  Handing the optional ``executor`` (a
:class:`~repro.parallel.ParallelProbeExecutor`) to ``run`` overlaps the
batch's backend round-trips without changing a single classification.
"""

from __future__ import annotations

import abc
import time
import typing
from dataclasses import dataclass, field

from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusStore
from repro.obs.budget import ProbeBudgetExhausted
from repro.relational.database import Database
from repro.relational.evaluator import (
    BatchExecutor,
    EvaluationStats,
    InstrumentedEvaluator,
)
from repro.relational.jointree import BoundQuery

if typing.TYPE_CHECKING:
    from repro.core.traversal.sharding import ShardFailure
    from repro.obs.trace import ProbeTracer


@dataclass
class TraversalResult:
    """Outcome of one Phase-3 run over an exploration graph.

    ``exhausted=True`` marks a *partial* result: the probe budget bound
    before the sweep finished.  Every classification present is identical
    to what an unbudgeted run reports (R1/R2 closure never guesses); MTNs
    absent from both lists stayed possibly-alive, and a dead MTN appears
    in ``mpans`` only once its search space was fully resolved (partial
    MPAN sets could falsely claim maximality).
    """

    strategy: str
    graph: ExplorationGraph
    alive_mtns: list[int] = field(default_factory=list)
    dead_mtns: list[int] = field(default_factory=list)
    mpans: dict[int, list[int]] = field(default_factory=dict)
    stats: EvaluationStats = field(default_factory=EvaluationStats)
    elapsed: float = 0.0
    exhausted: bool = False
    # The status store that classified each MTN (one shared store for the
    # reuse strategies, one per MTN for BU/TD).  Diagnosis reads minimal
    # dead sub-queries out of these after the fact.
    stores: dict[int, StatusStore] = field(default_factory=dict)
    # Shards that failed remotely during a sharded (multiprocessing) run,
    # with whether their serial retry recovered them.  Empty for serial
    # and thread-executor runs.
    shard_failures: list[ShardFailure] = field(default_factory=list)

    @property
    def classified_mtn_count(self) -> int:
        return len(self.alive_mtns) + len(self.dead_mtns)

    @property
    def unclassified_mtns(self) -> list[int]:
        """MTNs left possibly-alive (nonempty only when ``exhausted``)."""
        known = set(self.alive_mtns) | set(self.dead_mtns)
        return [index for index in self.graph.mtn_indexes if index not in known]

    @property
    def mpan_pair_count(self) -> int:
        """Number of (dead MTN, MPAN) pairs -- the paper's MPAN count."""
        return sum(len(indexes) for indexes in self.mpans.values())

    @property
    def unique_mpan_count(self) -> int:
        distinct: set[int] = set()
        for indexes in self.mpans.values():
            distinct.update(indexes)
        return len(distinct)

    def answer_queries(self) -> list[BoundQuery]:
        return [self.graph.node(index).query for index in self.alive_mtns]

    def non_answer_queries(self) -> list[BoundQuery]:
        return [self.graph.node(index).query for index in self.dead_mtns]

    def mpan_queries(self, mtn_index: int) -> list[BoundQuery]:
        return [
            self.graph.node(index).query for index in self.mpans.get(mtn_index, [])
        ]

    def classification_signature(self) -> tuple:
        """Canonical summary for cross-strategy equivalence checks."""
        return (
            tuple(sorted(self.alive_mtns)),
            tuple(sorted(self.dead_mtns)),
            tuple(
                (mtn, tuple(sorted(indexes)))
                for mtn, indexes in sorted(self.mpans.items())
            ),
        )


def seed_base_levels(
    graph: ExplorationGraph, store: StatusStore, database: Database
) -> None:
    """Classify level-1 nodes without SQL (Algorithm 3's ``GetBaseNodes``).

    A keyword-bound base node is alive by construction -- the interpretation
    only binds a keyword to relations the inverted index found it in.  A free
    base node is alive iff its table is non-empty, a catalog lookup.  Neither
    costs an SQL query.
    """
    for index in graph.level_indexes(1):
        if store.is_known(index) or not (store.domain >> index) & 1:
            continue
        node = graph.node(index)
        (instance,) = node.tree.instances
        if node.query.bindings:
            store.mark_alive(index, evaluated=False)
        else:
            table = database.table(instance.relation)
            store.record(index, alive=len(table) > 0, evaluated=False)


def extract_level_frontier(
    graph: ExplorationGraph, store: StatusStore, level: int
) -> list[int]:
    """Unknown in-domain nodes of ``level``: one implication-independent batch.

    All returned nodes sit on the same lattice level, so no probe's R1
    closure (descendants, strictly lower levels) or R2 closure (ancestors,
    strictly higher levels) can touch another -- evaluating them in any
    order, or concurrently, classifies exactly the same nodes.
    """
    unknown = store.unknown_mask
    return [
        index
        for index in graph.level_indexes(level)
        if (unknown >> index) & 1
    ]


def probe_frontier(
    graph: ExplorationGraph,
    store: StatusStore,
    evaluator: InstrumentedEvaluator,
    frontier: list[int],
    executor: BatchExecutor | None = None,
) -> None:
    """Evaluate one frontier batch and fold the answers into ``store``.

    Results are applied in deterministic submission order at the batch
    barrier; when the probe budget truncated the batch, the answered
    prefix is applied first (those classifications are exactly what the
    serial loop would have kept) and ``ProbeBudgetExhausted`` is raised
    after, preserving the serial control flow.
    """
    if not frontier:
        return
    queries = [graph.node(index).query for index in frontier]
    batch = evaluator.probe_many(queries, executor=executor)
    for index, alive in zip(frontier, batch.results):
        store.record(index, alive)
    if batch.exhausted:
        assert evaluator.budget is not None
        raise ProbeBudgetExhausted(evaluator.budget)


class TraversalStrategy(abc.ABC):
    """Interface of the five traversal strategies.

    ``uses_reuse`` tells the caller whether to hand this strategy a caching
    evaluator (BUWR/TDWR/SBH) or a non-caching one (BU/TD re-execute common
    sub-queries per MTN, as measured in the paper).
    """

    name: str = "base"
    uses_reuse: bool = True

    @abc.abstractmethod
    def _run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        result: TraversalResult,
        executor: BatchExecutor | None = None,
    ) -> None:
        """Classify all MTNs and fill ``result`` (template method)."""

    def run(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        database: Database,
        executor: BatchExecutor | None = None,
    ) -> TraversalResult:
        started = time.perf_counter()
        before = evaluator.stats.snapshot()
        result = TraversalResult(self.name, graph)
        tracer = evaluator.tracer
        if tracer is not None:
            tracer.set_context(strategy=self.name)
            tracer.record_event(
                "traversal_start",
                strategy=self.name,
                nodes=len(graph),
                mtns=len(graph.mtn_indexes),
            )
        try:
            self._run(graph, evaluator, database, result, executor)
        except ProbeBudgetExhausted:
            # Safety net for strategies that do not degrade themselves;
            # the built-in ones all catch earlier and collect partially.
            result.exhausted = True
        finally:
            if tracer is not None:
                tracer.set_context(strategy=None)
        result.alive_mtns.sort()
        result.dead_mtns.sort()
        result.stats = evaluator.stats.diff(before)
        result.elapsed = time.perf_counter() - started
        if tracer is not None:
            tracer.record_event(
                "traversal_end",
                strategy=self.name,
                queries_executed=result.stats.queries_executed,
                cache_hits=result.stats.cache_hits,
                classified=result.classified_mtn_count,
                exhausted=result.exhausted,
            )
        return result

    def _collect(
        self,
        store: StatusStore,
        result: TraversalResult,
        mtn_index: int,
        partial: bool = False,
        tracer: "ProbeTracer | None" = None,
    ) -> None:
        """Record one classified MTN (and its MPANs if dead) into the result.

        With ``partial=True`` (a budget-exhausted sweep) an unclassified
        MTN is skipped instead of being an error, and a dead MTN's MPANs
        are reported only if its whole search space was resolved --
        otherwise an unknown node could still be the true maximal one.

        When a ``tracer`` is attached, each MTN's resolution is announced
        as it happens -- an ``mtn_resolved`` event, plus ``mpan_available``
        once a dead MTN's maximal alive sub-queries are known -- so a
        streaming consumer can surface classifications before the sweep
        finishes.
        """
        from repro.core.status import Status

        status = store.status(mtn_index)
        if partial and status is Status.POSSIBLY_ALIVE:
            return
        result.stores[mtn_index] = store
        if status is Status.ALIVE:
            result.alive_mtns.append(mtn_index)
            if tracer is not None:
                tracer.record_event(
                    "mtn_resolved", mtn_index=mtn_index, alive=True
                )
        elif status is Status.DEAD:
            result.dead_mtns.append(mtn_index)
            if tracer is not None:
                tracer.record_event(
                    "mtn_resolved", mtn_index=mtn_index, alive=False
                )
            unresolved = (
                store.unknown_mask & store.graph.desc_mask[mtn_index]
                if partial
                else 0
            )
            if not unresolved:
                result.mpans[mtn_index] = store.mpans_of(mtn_index)
                if tracer is not None:
                    tracer.record_event(
                        "mpan_available",
                        mtn_index=mtn_index,
                        count=len(result.mpans[mtn_index]),
                    )
        else:  # pragma: no cover - defended against by every strategy
            raise RuntimeError(f"MTN {mtn_index} left unclassified")
