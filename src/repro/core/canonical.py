"""Canonical labeling of join trees (Algorithm 2 of the paper).

Candidate join-query networks are trees, so isomorphism testing reduces to
computing a canonical form in linear time (the paper adapts Aho, Hopcroft &
Ullman).  Vertices are labeled with ``(relation id, copy index)`` and edges
with the schema-edge id; the code of a vertex is its id followed by the
sorted codes of its children, and the canonical label of the tree is the
minimum code over the minimum-id root(s).

Because every ``(relation, copy)`` pair occurs at most once per tree, the
canonical label of a copy-labeled tree is equal iff the trees are equal as
(instance set, edge set) pairs; the lattice exploits this for fast
deduplication, and a property test pins the equivalence down.
"""

from __future__ import annotations

from repro.relational.jointree import JoinTree, RelationInstance
from repro.relational.schema import SchemaGraph

# A code is a nested tuple: (vertex_id, ((edge_id, child_code), ...)).
Code = tuple


def _vertex_id(
    instance: RelationInstance, schema: SchemaGraph
) -> tuple[int, int, int]:
    return (
        schema.relation_id(instance.relation),
        1 if instance.free else 0,
        instance.copy,
    )


def _get_code(
    tree: JoinTree,
    schema: SchemaGraph,
    node: RelationInstance,
    parent: RelationInstance | None,
) -> Code:
    """The recursive ``GetCode`` of Algorithm 2 (tuples instead of strings)."""
    child_codes = []
    for edge in tree.edges_of(node):
        neighbour = edge.other(node)
        if neighbour == parent:
            continue
        child_codes.append(
            (schema.edge_id(edge.fk), _get_code(tree, schema, neighbour, node))
        )
    child_codes.sort()
    return (_vertex_id(node, schema), tuple(child_codes))


def canonical_code(tree: JoinTree, schema: SchemaGraph) -> Code:
    """Canonical label of ``tree``: hashable, isomorphism-invariant.

    Follows Algorithm 2: root at every vertex with the minimum vertex id and
    take the lexicographically smallest code.  In copy-labeled trees the
    minimum-id vertex is unique, but the general form is kept so the function
    is also correct for vertex-label collisions (exercised in tests).
    """
    minimum = min(_vertex_id(instance, schema) for instance in tree.instances)
    roots = [
        instance
        for instance in tree.instances
        if _vertex_id(instance, schema) == minimum
    ]
    return min(_get_code(tree, schema, root, None) for root in roots)


def _render(code: Code, schema_names: dict[tuple[int, int], str]) -> str:
    vertex, children = code
    name = schema_names.get(vertex, str(vertex))
    if not children:
        return f"[{name}]"
    inner = "".join(
        f"e{edge_id}{_render(child, schema_names)}" for edge_id, child in children
    )
    return f"[{name}|{inner}]"


def canonical_string(tree: JoinTree, schema: SchemaGraph) -> str:
    """The paper's bracketed string form, e.g. ``[v1|e1[v2]e2[v3]]``."""
    names = {
        _vertex_id(instance, schema): str(instance)
        for instance in tree.instances
    }
    return _render(canonical_code(tree, schema), names)
