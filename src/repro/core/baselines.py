"""The two alternatives the paper compares against (§3.8).

* **Return Nothing (RN)** -- the standard KWS-S behaviour: non-answers are
  silently dropped, so a developer debugging a non-answer re-submits every
  keyword subset and the system evaluates every candidate network of every
  submission from scratch.

* **Return Everything (RE)** -- no lattice: evaluate each candidate network,
  and for every dead one issue one SQL query per descendant sub-query, with
  no status inference and no reuse across candidate networks.

Both report the same instrumentation as the lattice traversals so Figures 14
and 15 can be regenerated; RE additionally yields ground-truth MPANs that the
property tests compare against every traversal strategy.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core.debugger import NonAnswerDebugger
from repro.core.mtn import ExplorationGraph
from repro.core.status import StatusStore
from repro.relational.evaluator import EvaluationStats, InstrumentedEvaluator


@dataclass
class BaselineResult:
    """Instrumentation of one baseline run."""

    name: str
    query: str
    stats: EvaluationStats = field(default_factory=EvaluationStats)
    elapsed: float = 0.0
    detail: dict = field(default_factory=dict)
    mpans: dict[int, list[int]] = field(default_factory=dict)
    alive_mtns: list[int] = field(default_factory=list)
    dead_mtns: list[int] = field(default_factory=list)


class ReturnNothing:
    """RN: re-submit every keyword subset through the classic pipeline."""

    name = "rn"

    def __init__(self, debugger: NonAnswerDebugger):
        self.debugger = debugger

    def run(self, query: str) -> BaselineResult:
        """Evaluate all MTNs of every nonempty keyword subset.

        Each submission is an independent query to the KWS-S system: no
        cache survives between submissions (a production system would not
        share ad-hoc state across user queries either).
        """
        started = time.perf_counter()
        result = BaselineResult(self.name, query)
        keywords = self.debugger.mapper.parse(query)
        total_stats = EvaluationStats()
        submissions = []
        for size in range(len(keywords), 0, -1):
            for subset in itertools.combinations(keywords, size):
                subquery = " ".join(subset)
                evaluator = self.debugger.make_evaluator(use_cache=False)
                mapping = self.debugger.map_keywords(subquery)
                alive = dead = 0
                if mapping.complete and mapping.keywords:
                    pruned = self.debugger.prune(mapping)
                    graph = self.debugger.build_graph(pruned)
                    for node in graph.mtns():
                        if evaluator.is_alive(node.query):
                            alive += 1
                        else:
                            dead += 1
                submissions.append(
                    {
                        "subset": subquery,
                        "alive_mtns": alive,
                        "dead_mtns": dead,
                        "queries": evaluator.stats.queries_executed,
                    }
                )
                total_stats.queries_executed += evaluator.stats.queries_executed
                total_stats.wall_time += evaluator.stats.wall_time
                total_stats.simulated_time += evaluator.stats.simulated_time
        result.stats = total_stats
        result.detail["submissions"] = submissions
        result.elapsed = time.perf_counter() - started
        return result


class ReturnEverything:
    """RE: evaluate every descendant of every dead candidate network."""

    name = "re"

    def __init__(self, debugger: NonAnswerDebugger):
        self.debugger = debugger

    def run(self, query: str) -> BaselineResult:
        started = time.perf_counter()
        result = BaselineResult(self.name, query)
        evaluator = self.debugger.make_evaluator(use_cache=False)
        mapping = self.debugger.map_keywords(query)
        if mapping.complete and mapping.keywords:
            pruned = self.debugger.prune(mapping)
            graph = self.debugger.build_graph(pruned)
            self._explore(graph, evaluator, result)
        result.stats = evaluator.stats.snapshot()
        result.elapsed = time.perf_counter() - started
        return result

    def run_on_graph(
        self, graph: ExplorationGraph, evaluator: InstrumentedEvaluator
    ) -> BaselineResult:
        """RE over a prebuilt exploration graph (used by tests/benches)."""
        started = time.perf_counter()
        result = BaselineResult(self.name, "<graph>")
        self._explore(graph, evaluator, result)
        result.stats = evaluator.stats.snapshot()
        result.elapsed = time.perf_counter() - started
        return result

    def _explore(
        self,
        graph: ExplorationGraph,
        evaluator: InstrumentedEvaluator,
        result: BaselineResult,
    ) -> None:
        for mtn_index in graph.mtn_indexes:
            alive = evaluator.is_alive(graph.node(mtn_index).query)
            if alive:
                result.alive_mtns.append(mtn_index)
                continue
            result.dead_mtns.append(mtn_index)
            # One SQL query per descendant; statuses are recorded through a
            # per-MTN store (so MPAN extraction is uniform) but *without*
            # saving any queries: every descendant is still executed.
            store = StatusStore(graph, domain=graph.desc_plus(mtn_index))
            store.record(mtn_index, alive=False)
            for index in graph.bits(graph.desc_mask[mtn_index]):
                descendant_alive = evaluator.is_alive(graph.node(index).query)
                # Record without closure so the count reflects "no inference":
                # the store is only used to collect statuses for extraction.
                if descendant_alive:
                    store.alive_mask |= 1 << index
                else:
                    store.dead_mask |= 1 << index
            result.mpans[mtn_index] = store.mpans_of(mtn_index)
