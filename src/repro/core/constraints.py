"""User-defined constraint pushdown (§5, future work).

The paper closes with: *"pushing user-defined constraints into the search
procedure might greatly prune the search space and therefore significantly
improve the efficiency."*  This module implements that: a
:class:`SearchConstraints` object restricts which candidate networks are
investigated and which sub-queries are explored as explanation candidates,
*before* any SQL runs.

Soundness requirement: sub-query constraints must be **subtree-closed**
(if a tree satisfies the constraint, so does every connected subtree), so
the retained nodes still form a lattice and the R1/R2 inference masks stay
exact.  The built-in constraints (relation exclusion, level cap) are
subtree-closed by construction; custom predicates are spot-checked at build
time.

CN-level constraints (``mtn_predicate``) may be arbitrary: dropping a whole
candidate network never affects the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.relational.jointree import JoinTree


class ConstraintError(ValueError):
    """Raised when a custom sub-query constraint is not subtree-closed."""


@dataclass(frozen=True)
class SearchConstraints:
    """Declarative restrictions pushed into the Phase-2/3 search.

    ``exclude_relations``
        Sub-queries (and candidate networks) touching any of these relations
        are never explored.  Use it to mute schema regions the developer has
        already ruled out.
    ``max_explanation_level``
        Cap on the size (instance count) of explored sub-queries.  Candidate
        networks larger than the cap are still classified, but their
        explanations are reported at this granularity or finer.
    ``tree_predicate``
        Custom subtree-closed predicate on :class:`JoinTree`.
    ``mtn_predicate``
        Arbitrary predicate selecting which candidate networks to
        investigate at all.
    """

    exclude_relations: frozenset[str] = frozenset()
    max_explanation_level: int | None = None
    tree_predicate: Callable[[JoinTree], bool] | None = field(default=None)
    mtn_predicate: Callable[[JoinTree], bool] | None = field(default=None)

    def admits_mtn(self, tree: JoinTree) -> bool:
        """Should this candidate network be investigated?"""
        if self.exclude_relations and tree.relations() & self.exclude_relations:
            return False
        if self.mtn_predicate is not None and not self.mtn_predicate(tree):
            return False
        return True

    def admits_subquery(self, tree: JoinTree) -> bool:
        """May this sub-query enter the exploration graph?"""
        if self.exclude_relations and tree.relations() & self.exclude_relations:
            return False
        if (
            self.max_explanation_level is not None
            and tree.size > self.max_explanation_level
        ):
            return False
        if self.tree_predicate is not None and not self.tree_predicate(tree):
            return False
        return True

    def validate_closure(self, tree: JoinTree) -> None:
        """Spot-check subtree-closure of a custom predicate on one tree.

        Called by the graph builder on every admitted multi-instance tree:
        each immediate subtree must be admitted too.  This catches
        non-closed predicates at build time instead of corrupting masks.
        """
        if self.tree_predicate is None:
            return
        for child in tree.child_subtrees():
            if not self.admits_subquery(child):
                raise ConstraintError(
                    "tree_predicate is not subtree-closed: "
                    f"{tree.describe()} admitted but {child.describe()} not; "
                    "apply non-closed filters to the report instead "
                    "(repro.core.ranking)"
                )


UNCONSTRAINED = SearchConstraints()
