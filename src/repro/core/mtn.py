"""Minimal-total nodes and the exploration graph (Phase 2, §2.4).

A retained node is **total** if it contains the copy bound to every keyword
and **minimal-total** (MTN) if no descendant is total -- equivalently, every
leaf of its join tree is a keyword-bound copy (removing a free leaf would
preserve totality).  MTNs correspond exactly to DISCOVER's candidate
networks; a property test checks that correspondence against the independent
generator in :mod:`repro.kws`.

The **exploration graph** is the union of every MTN's descendant
sub-lattice: all connected subtrees of all MTN trees, deduplicated, with

* immediate parent/child edges (one leaf removed),
* transitive descendant/ancestor sets as Python-int bitsets (cheap
  ``&``/``|``/popcount at the sizes the paper reports), and
* the instantiated :class:`~repro.relational.jointree.BoundQuery` per node.

Every Phase-3 traversal strategy and both baselines run over this structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.binding import KeywordBinding, PrunedLattice, bind_tree
from repro.core.constraints import UNCONSTRAINED, SearchConstraints
from repro.core.freecopies import normalize_free_ranks
from repro.relational.jointree import BoundQuery, JoinTree
from repro.relational.predicates import MatchMode


def is_minimal_total(tree: JoinTree, binding: KeywordBinding) -> bool:
    """True iff ``tree`` is total and all of its leaves are keyword-bound."""
    bound = binding.instances
    if not bound <= tree.instances:
        return False
    return all(leaf in bound for leaf in tree.leaves())


def find_mtns(pruned: PrunedLattice) -> list[JoinTree]:
    """The minimal-total trees of a pruned lattice (deterministic order)."""
    binding = pruned.binding
    mtns = [
        tree
        for tree in pruned.retained
        if is_minimal_total(tree, binding)
    ]
    return sorted(mtns, key=lambda tree: (tree.size, tree.describe()))


@dataclass
class ExplorationNode:
    """One node of the exploration graph."""

    index: int
    tree: JoinTree
    query: BoundQuery
    level: int
    is_mtn: bool = False
    parents: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " MTN" if self.is_mtn else ""
        return f"ExplorationNode({self.index}, {self.query.describe()}{flag})"


class ExplorationGraph:
    """MTNs plus all their sub-networks, with fast ancestry bitsets."""

    def __init__(
        self,
        mode: MatchMode = MatchMode.TOKEN,
        constraints: SearchConstraints = UNCONSTRAINED,
    ):
        self.mode = mode
        self.constraints = constraints
        self.nodes: list[ExplorationNode] = []
        self.mtn_indexes: list[int] = []
        self._by_query: dict[BoundQuery, int] = {}
        # Bitsets (Python ints); bit i refers to self.nodes[i].
        self.desc_mask: list[int] = []  # strict descendants
        self.asc_mask: list[int] = []  # strict ancestors
        # Exact descendant sets recorded per MTN during enumeration; they
        # bridge the gap a max_explanation_level constraint opens between an
        # over-cap MTN and its retained sub-queries.
        self._mtn_desc: dict[int, int] = {}
        self.build_time: float = 0.0

    # ------------------------------------------------------------ building
    def _intern(self, query: BoundQuery) -> int:
        # Keyed by the *bound query*, not the bare tree: the same tree can
        # carry different keywords in different interpretations (e.g. two
        # keywords that both occur in Person), and those are distinct SQL
        # queries with distinct aliveness.  Free ranks are normalized first
        # so rank-permuted twins (multi-free-copy extension) collapse into
        # one node; with a single free copy this is the identity.
        query = normalize_free_ranks(query)
        index = self._by_query.get(query)
        if index is not None:
            return index
        index = len(self.nodes)
        node = ExplorationNode(index, query.tree, query, query.tree.size)
        self.nodes.append(node)
        self._by_query[query] = index
        return index

    def add_mtn(self, query: BoundQuery) -> int | None:
        """Add one MTN and every admitted connected subtree of its join tree.

        Returns ``None`` when the search constraints rule the candidate
        network out entirely.
        """
        if not self.constraints.admits_mtn(query.tree):
            return None
        mtn_index = self._intern(query)
        if not self.nodes[mtn_index].is_mtn:
            self.nodes[mtn_index].is_mtn = True
            self.mtn_indexes.append(mtn_index)
        desc_bits = self._mtn_desc.get(mtn_index, 0)
        for subtree in query.tree.connected_subtrees():
            if subtree.instances == query.tree.instances:
                continue
            if not self.constraints.admits_subquery(subtree):
                continue
            self.constraints.validate_closure(subtree)
            desc_bits |= 1 << self._intern(query.subquery(subtree))
        self._mtn_desc[mtn_index] = desc_bits
        return mtn_index

    def finalize(self) -> "ExplorationGraph":
        """Wire parent/child edges and compute ancestry bitsets."""
        started = time.perf_counter()
        for node in self.nodes:
            if node.tree.size == 1:
                continue
            for child_tree in node.tree.child_subtrees():
                child_index = self._by_query.get(
                    normalize_free_ranks(node.query.subquery(child_tree))
                )
                if child_index is None:
                    # Only possible for an MTN whose immediate subtrees were
                    # dropped by a max_explanation_level constraint; the
                    # recorded per-MTN descendant set bridges the gap below.
                    continue
                node.children.append(child_index)
                self.nodes[child_index].parents.append(node.index)
        order = sorted(range(len(self.nodes)), key=lambda i: self.nodes[i].level)
        self.desc_mask = [0] * len(self.nodes)
        for index in order:  # ascending level: children first
            mask = 0
            for child in self.nodes[index].children:
                mask |= (1 << child) | self.desc_mask[child]
            self.desc_mask[index] = mask
        for mtn_index, recorded in self._mtn_desc.items():
            self.desc_mask[mtn_index] |= recorded
        self.asc_mask = [0] * len(self.nodes)
        for index in reversed(order):  # descending level: parents first
            mask = 0
            for parent in self.nodes[index].parents:
                mask |= (1 << parent) | self.asc_mask[parent]
            self.asc_mask[index] = mask
        for mtn_index in self.mtn_indexes:
            bit = 1 << mtn_index
            for member in self.bits(self.desc_mask[mtn_index]):
                self.asc_mask[member] |= bit
        self.mtn_indexes.sort()
        self.build_time += time.perf_counter() - started
        return self

    # --------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def max_level(self) -> int:
        return max((node.level for node in self.nodes), default=0)

    def node(self, index: int) -> ExplorationNode:
        return self.nodes[index]

    def mtns(self) -> list[ExplorationNode]:
        return [self.nodes[index] for index in self.mtn_indexes]

    def level_indexes(self, level: int) -> list[int]:
        return [node.index for node in self.nodes if node.level == level]

    def desc_plus(self, index: int) -> int:
        """Bitset of ``Desc+(n) = {n} | Desc(n)``."""
        return self.desc_mask[index] | (1 << index)

    def asc_plus(self, index: int) -> int:
        return self.asc_mask[index] | (1 << index)

    def bits(self, mask: int) -> list[int]:
        """Indexes of the set bits of ``mask`` (ascending)."""
        result = []
        while mask:
            low = mask & -mask
            result.append(low.bit_length() - 1)
            mask ^= low
        return result

    # ----------------------------------------------------------- statistics
    def descendant_counts(self) -> tuple[int, int]:
        """``(total, unique)`` descendant counts over all MTNs (Fig. 10/13).

        *total* counts each MTN's strict descendants with multiplicity across
        MTNs; *unique* counts distinct nodes.  The paper's reuse percentage
        is ``100 * (1 - unique / total)``.
        """
        total = 0
        union = 0
        for mtn_index in self.mtn_indexes:
            mask = self.desc_mask[mtn_index]
            total += mask.bit_count()
            union |= mask
        return total, union.bit_count()

    def reuse_percentage(self) -> float:
        total, unique = self.descendant_counts()
        return 100.0 * (1.0 - unique / total) if total else 0.0


def build_exploration_graph(
    pruned_lattices: list[PrunedLattice],
    mode: MatchMode = MatchMode.TOKEN,
    constraints: SearchConstraints = UNCONSTRAINED,
) -> ExplorationGraph:
    """Phase 2 for a whole keyword query: MTNs of every interpretation.

    Sub-queries shared between interpretations (or between MTNs of one
    interpretation) become a single node, which is exactly the overlap the
    reuse-based traversals exploit.  ``constraints`` push user-defined
    restrictions into the search (§5 future work).
    """
    graph = ExplorationGraph(mode, constraints)
    for pruned in pruned_lattices:
        for tree in find_mtns(pruned):
            graph.add_mtn(bind_tree(tree, pruned.binding, mode))
    return graph.finalize()
