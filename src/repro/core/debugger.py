"""The end-to-end system: all four phases behind one facade.

:class:`NonAnswerDebugger` owns the offline artifacts (inverted index,
lattice) and, per keyword query, runs

* Phase 1 -- keyword mapping and lattice pruning,
* Phase 2 -- MTN discovery and exploration-graph construction,
* Phase 3 -- a traversal strategy classifying MTNs and extracting MPANs,

returning a :class:`DebugReport` with the paper's three outputs: answer
queries, non-answer queries, and the maximal nonempty sub-queries (MPANs) of
every non-answer, plus all the instrumentation the evaluation section plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.backends import create_backend
from repro.cache import ProbeCache, StatusCache, StatusFact, query_cache_key, workload_cache_key
from repro.core.binding import KeywordBinder, PrunedLattice
from repro.core.constraints import UNCONSTRAINED, SearchConstraints
from repro.core.lattice import Lattice, generate_lattice
from repro.core.mtn import ExplorationGraph, build_exploration_graph
from repro.core.status import InconsistentStatusError, Status, StatusStore
from repro.core.traversal import (
    SHARDABLE_STRATEGIES,
    TraversalResult,
    TraversalStrategy,
    get_strategy,
)
from repro.index import IndexBackend, create_index, get_index_spec
from repro.index.mapper import KeywordMapper, KeywordMapping
from repro.obs.budget import ProbeBudget
from repro.obs.trace import ProbeTracer
from repro.relational.database import Database
from repro.relational.engine import DEFAULT_MATERIALIZATION_CAP, InMemoryEngine
from repro.relational.evaluator import (
    BatchExecutor,
    InstrumentedEvaluator,
    QueryCostModel,
)
from repro.relational.jointree import BoundQuery
from repro.relational.predicates import MatchMode


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each online phase."""

    keyword_mapping: float = 0.0
    lattice_pruning: float = 0.0
    mtn_discovery: float = 0.0
    traversal: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.keyword_mapping
            + self.lattice_pruning
            + self.mtn_discovery
            + self.traversal
        )


@dataclass
class DebugReport:
    """Everything the system reports for one keyword query."""

    query: str
    mapping: KeywordMapping
    pruned_lattices: list[PrunedLattice] = field(default_factory=list)
    graph: ExplorationGraph | None = None
    traversal: TraversalResult | None = None
    timings: PhaseTimings = field(default_factory=PhaseTimings)

    # ------------------------------------------------------------- contents
    @property
    def aborted(self) -> bool:
        """True when some keyword occurs nowhere ("and" semantics, §2.3)."""
        return not self.mapping.complete

    @property
    def exhausted(self) -> bool:
        """True when the probe budget bound and the traversal is partial."""
        return bool(self.traversal and self.traversal.exhausted)

    @property
    def mtn_count(self) -> int:
        return len(self.graph.mtn_indexes) if self.graph else 0

    @property
    def retained_nodes(self) -> int:
        """Union size of nodes retained across interpretations (Phase 1)."""
        retained: set[int] = set()
        for pruned in self.pruned_lattices:
            retained.update(pruned.retained)
        return len(retained)

    def answers(self) -> list[BoundQuery]:
        return self.traversal.answer_queries() if self.traversal else []

    def non_answers(self) -> list[BoundQuery]:
        return self.traversal.non_answer_queries() if self.traversal else []

    def explanations(self) -> list[tuple[BoundQuery, list[BoundQuery]]]:
        """``(non-answer, its MPANs)`` pairs -- the debugging output."""
        if not self.traversal:
            return []
        pairs = []
        for mtn_index in self.traversal.dead_mtns:
            pairs.append(
                (
                    self.graph.node(mtn_index).query,
                    self.traversal.mpan_queries(mtn_index),
                )
            )
        return pairs

    # -------------------------------------------------------------- display
    @staticmethod
    def _labels(queries: list[BoundQuery]) -> dict[BoundQuery, str]:
        """Display labels, using the join-level form only on collisions."""
        seen: dict[str, int] = {}
        for query in queries:
            text = query.describe()
            seen[text] = seen.get(text, 0) + 1
        return {
            query: (
                query.describe_full()
                if seen[query.describe()] > 1
                else query.describe()
            )
            for query in queries
        }

    def render(self, max_items: int = 10) -> str:
        lines = [f'Keyword query: "{self.query}"']
        if self.aborted:
            missing = ", ".join(self.mapping.missing_keywords)
            lines.append(f"  keywords not found anywhere in the database: {missing}")
            lines.append("  (no further exploration; 'and' semantics)")
            return "\n".join(lines)
        lines.append(
            f"  interpretations: {len(self.mapping.interpretations)}, "
            f"MTNs: {self.mtn_count}, exploration nodes: "
            f"{len(self.graph) if self.graph else 0}"
        )
        answers = self.answers()
        answer_labels = self._labels(answers)
        lines.append(f"  answer queries ({len(answers)}):")
        for query in answers[:max_items]:
            lines.append(f"    + {answer_labels[query]}")
        if len(answers) > max_items:
            lines.append(f"    ... and {len(answers) - max_items} more")
        explanations = self.explanations()
        non_answer_labels = self._labels([query for query, _ in explanations])
        lines.append(f"  non-answer queries ({len(explanations)}):")
        for query, mpans in explanations[:max_items]:
            lines.append(f"    - {non_answer_labels[query]}")
            for mpan in mpans[:max_items]:
                lines.append(f"        maximal alive sub-query: {mpan.describe()}")
        if len(explanations) > max_items:
            lines.append(f"    ... and {len(explanations) - max_items} more")
        if self.exhausted and self.traversal:
            unclassified = len(self.traversal.unclassified_mtns)
            lines.append(
                f"  probe budget exhausted: partial result, "
                f"{unclassified} candidate network(s) left possibly-alive"
            )
        if self.traversal and self.traversal.shard_failures:
            for failure in self.traversal.shard_failures:
                lines.append(f"  shard failure: {failure.render()}")
        if self.traversal:
            lines.append(f"  SQL effort: {self.traversal.stats}")
        return "\n".join(lines)


class NonAnswerDebugger:
    """The paper's system: a KWS-S engine that explains its non-answers."""

    def __init__(
        self,
        database: Database,
        max_joins: int = 2,
        mode: MatchMode = MatchMode.TOKEN,
        strategy: str | TraversalStrategy = "sbh",
        backend: str = "memory",
        cost_model: QueryCostModel | None = None,
        lattice: Lattice | None = None,
        use_lattice: bool = True,
        max_keywords: int | None = None,
        free_copies: int = 1,
        max_interpretations: int = 256,
        tracer: ProbeTracer | None = None,
        cache_dir: str | Path | None = None,
        backend_options: dict[str, Any] | None = None,
        index_backend: str = "memory",
        index: IndexBackend | None = None,
    ):
        """Build the offline artifacts for ``database``.

        ``use_lattice=False`` skips Phase 0 and generates each query's
        retained sub-lattice directly (identical results, no offline cost);
        that is how the high-level experiments run.  ``max_keywords`` caps
        the number of keyword slots the lattice materializes (defaults to
        the paper's ``max_joins + 1``).  ``free_copies > 1`` enables the
        multi-free-copy extension (direct mode only; see
        :mod:`repro.core.freecopies`).

        ``backend`` is resolved through the :mod:`repro.backends` registry
        (``memory``, ``sqlite``, ``simulated``, or anything registered);
        ``backend_options`` is forwarded to its factory.  ``cache_dir``
        attaches a persistent probe cache (:class:`repro.cache.ProbeCache`)
        keyed by the relation-fingerprint vector of each probed join path
        as the L2 tier of every reuse-enabled evaluator this debugger
        makes, plus a :class:`repro.cache.StatusCache` of whole-run
        classification facts: a second session over an unchanged database
        answers previously probed nodes with zero backend queries and
        skips Phase 3 entirely on an exact workload repeat; after a
        mutation the caches are repaired (monotone survivors kept), not
        discarded.

        ``index_backend`` is resolved through the :mod:`repro.index`
        registry (``memory`` or ``sqlite``): a persistent index backend
        lives inside ``cache_dir`` (next to the probe cache) and is
        repaired per relation on reopen, and a streaming one additionally
        arms the engine's bounded-materialization semi-join so tuple sets
        larger than the cap are streamed off disk instead of held in RAM.
        ``index`` injects a prebuilt index (the scale bench reuses one
        across phases); the debugger then does not own (or close) it.
        """
        self.database = database
        self.schema = database.schema
        self.mode = mode
        self.cost_model = cost_model
        # Default tracer stamped onto every evaluator this debugger makes;
        # one tracer can accumulate spans across many queries/strategies.
        self.tracer = tracer
        self.index_backend_name = index_backend
        index_spec = get_index_spec(index_backend)
        self.index_capabilities = index_spec.capabilities
        self._index_options: dict[str, Any] = {}
        if cache_dir is not None and index_spec.capabilities.persistent:
            self._index_options["cache_dir"] = cache_dir
        if index is not None:
            self.index: IndexBackend = index
            self._owns_index = False
        else:
            self.index = create_index(index_backend, database, **self._index_options)
            self._owns_index = True
        self.mapper = KeywordMapper(
            self.index, mode=mode, max_interpretations=max_interpretations
        )
        if free_copies > 1:
            use_lattice = False
            lattice = None
        if lattice is None and use_lattice:
            lattice = generate_lattice(self.schema, max_joins, max_keywords)
        if lattice is not None and lattice.schema is not self.schema:
            raise ValueError("lattice was generated for a different schema")
        self.lattice = lattice
        self.binder = KeywordBinder(
            lattice=lattice,
            schema=self.schema,
            max_joins=max_joins,
            max_keywords=max_keywords,
            mode=mode,
            free_copies=free_copies,
        )
        self.strategy = (
            strategy if isinstance(strategy, TraversalStrategy) else get_strategy(strategy)
        )
        options: dict[str, Any] = {
            "tuple_set_provider": self.index.provider,
            "cost_model": cost_model,
        }
        if index_spec.capabilities.streaming:
            # Arm the bounded-materialization semi-join: tuple sets over
            # the cap stream from the index instead of living on the heap.
            options["streaming_source"] = self.index
            options["materialization_cap"] = DEFAULT_MATERIALIZATION_CAP
        options.update(backend_options or {})
        # Kept so the sharded executor can rebuild an identical backend
        # inside each forked worker process (connections never cross forks).
        self.backend_name = backend
        self.backend_factory_options = options
        self.backend: Any = create_backend(backend, database, **options)
        # Remembered so refresh_after_mutation() can rebuild the
        # snapshot-bound pieces (index, mapper, backend) in place.
        self._max_interpretations = max_interpretations
        self.probe_cache: ProbeCache | None = None
        self.status_cache: StatusCache | None = None
        if cache_dir is not None:
            self.probe_cache = ProbeCache.open_dir(
                cache_dir, database, tracer=self.tracer
            )
            self.status_cache = StatusCache.open_dir(cache_dir, database)

    # ------------------------------------------------------------- pipeline
    def make_evaluator(
        self,
        use_cache: bool | None = None,
        budget: ProbeBudget | None = None,
        tracer: ProbeTracer | None = None,
    ) -> InstrumentedEvaluator:
        if use_cache is None:
            use_cache = self.strategy.uses_reuse
        return InstrumentedEvaluator(
            self.backend,
            cost_model=self.cost_model,
            use_cache=use_cache,
            budget=budget,
            tracer=tracer if tracer is not None else self.tracer,
            probe_cache=self.probe_cache,
        )

    def map_keywords(self, query: str) -> KeywordMapping:
        """Phase 1a: keyword -> relation mapping via the inverted index."""
        return self.mapper.map_query(query)

    def prune(self, mapping: KeywordMapping) -> list[PrunedLattice]:
        """Phase 1b: one pruned lattice per interpretation.

        With a materialized lattice this walks it upward; in direct mode it
        generates only the MTN-relevant trees (the rest of the pipeline
        needs nothing else; use ``binder.prune_direct`` for the complete
        retained set).
        """
        if self.lattice is not None:
            prune = self.binder.prune
        else:
            prune = self.binder.prune_for_mtns
        return [prune(interpretation) for interpretation in mapping.interpretations]

    def build_graph(
        self,
        pruned: list[PrunedLattice],
        constraints: SearchConstraints = UNCONSTRAINED,
    ) -> ExplorationGraph:
        """Phase 2: MTNs of every interpretation plus their sub-networks."""
        return build_exploration_graph(pruned, self.mode, constraints)

    # -------------------------------------------------- persisted status
    def workload_key(self, mapping: KeywordMapping) -> str:
        """Canonical key of one workload under this debugger's lattice shape."""
        return workload_cache_key(
            mapping.keywords,
            self.mode.value,
            self.binder.max_joins,
            self.binder.max_keywords,
            self.binder.free_copies,
        )

    def _node_key_index(self, graph: ExplorationGraph) -> dict[str, list[int]]:
        by_key: dict[str, list[int]] = {}
        for index in range(len(graph)):
            key = query_cache_key(graph.node(index).query, self.schema)
            by_key.setdefault(key, []).append(index)
        return by_key

    def _facts_from_result(self, result: TraversalResult) -> list[StatusFact]:
        """Merge every store's classifications into per-node facts."""
        return self._facts_from_stores(result.graph, result.stores.values())

    def _facts_from_stores(
        self, graph: ExplorationGraph, stores: "Iterable[StatusStore]"
    ) -> list[StatusFact]:
        merged: dict[int, tuple[bool, bool]] = {}
        for store in stores:
            known = (store.alive_mask | store.dead_mask) & store.domain
            for index in graph.bits(known):
                alive = bool((store.alive_mask >> index) & 1)
                evaluated = bool((store.evaluated_mask >> index) & 1)
                previous = merged.get(index)
                merged[index] = (
                    alive,
                    evaluated or (previous[1] if previous else False),
                )
        facts = []
        for index, (alive, evaluated) in sorted(merged.items()):
            node = graph.node(index)
            facts.append(
                StatusFact(
                    node_key=query_cache_key(node.query, self.schema),
                    relations=tuple(sorted(node.query.tree.relations())),
                    alive=alive,
                    evaluated=evaluated,
                )
            )
        return facts

    def _result_from_facts(
        self,
        graph: ExplorationGraph,
        facts: tuple[StatusFact, ...],
        strategy_name: str,
    ) -> TraversalResult | None:
        """Rebuild a complete traversal result from persisted facts.

        Returns None when the facts cannot fully resolve the graph (a
        defensive fallback -- an exact, complete run always can): the
        caller then traverses cold instead of reporting partial output.
        """
        store = StatusStore(graph)
        by_key = self._node_key_index(graph)
        try:
            for fact in facts:
                for index in by_key.get(fact.node_key, []):
                    if not store.is_known(index):
                        store.record(index, fact.alive, evaluated=fact.evaluated)
        except InconsistentStatusError:  # pragma: no cover - corrupt file
            return None
        result = TraversalResult(strategy_name, graph)
        for mtn_index in graph.mtn_indexes:
            status = store.status(mtn_index)
            if status is Status.POSSIBLY_ALIVE:
                return None
            result.stores[mtn_index] = store
            if status is Status.ALIVE:
                result.alive_mtns.append(mtn_index)
            else:
                if store.unknown_mask & graph.desc_mask[mtn_index]:
                    return None
                result.dead_mtns.append(mtn_index)
                result.mpans[mtn_index] = store.mpans_of(mtn_index)
        result.alive_mtns.sort()
        result.dead_mtns.sort()
        return result

    def preload_session_store(
        self,
        mapping: KeywordMapping,
        graph: ExplorationGraph,
        store: StatusStore,
        tracer: ProbeTracer | None = None,
    ) -> int:
        """Seed an interactive session's store from persisted facts.

        Exact facts load verbatim; stale ones arrive already repaired by
        :meth:`StatusCache.load` and are replayed through
        ``mark_alive``/``mark_dead``, so R1/R2 closure re-derives every
        implication on the survivors.  The replay happens on a scratch
        store first -- an inconsistency (corrupt file) discards the whole
        preload instead of poisoning the session.  Returns the number of
        nodes classified.
        """
        if self.status_cache is None:
            return 0
        load = self.status_cache.load(self.workload_key(mapping))
        if load is None or not load.facts:
            return 0
        scratch = StatusStore(graph)
        by_key = self._node_key_index(graph)
        applied = 0
        try:
            for fact in load.facts:
                for index in by_key.get(fact.node_key, []):
                    if not scratch.is_known(index):
                        scratch.record(index, fact.alive, evaluated=False)
                        applied += 1
            store.apply_delta(scratch.export_delta())
        except InconsistentStatusError:  # pragma: no cover - corrupt file
            return 0
        active = tracer if tracer is not None else self.tracer
        if active is not None:
            active.record_event(
                "status_preload",
                workload_key=load.workload_key,
                exact=load.exact,
                applied=applied,
                dropped=load.dropped,
                directions=dict(load.directions),
            )
        return applied

    def debug(
        self,
        query: str,
        strategy: str | TraversalStrategy | None = None,
        evaluator: InstrumentedEvaluator | None = None,
        constraints: SearchConstraints = UNCONSTRAINED,
        budget: ProbeBudget | None = None,
        workers: int = 0,
        executor: "BatchExecutor | None" = None,
        processes: int = 0,
        shards: int | None = None,
        tracer: ProbeTracer | None = None,
    ) -> DebugReport:
        """Run phases 1-3 for ``query`` and explain its non-answers.

        ``tracer`` overrides the debugger-wide tracer for this one call:
        every span and event of the run -- including the phase lifecycle
        events below -- lands there instead.  That is how the service
        layer gives each session its own gap-free event stream while many
        sessions share one debugger.  The run emits ``phase_started`` /
        ``phase_completed`` events around keyword mapping, lattice
        pruning, MTN discovery, and the traversal, so a consumer can
        follow the pipeline live rather than waiting for the final
        report.

        With a ``budget`` the traversal stops cleanly when the probe cap is
        reached and the report is partial (``report.exhausted``): every
        classification present matches an unbudgeted run, the rest stays
        possibly-alive.

        ``workers > 1`` evaluates each traversal frontier on a transient
        :class:`~repro.parallel.ParallelProbeExecutor` of that many threads
        (identical classifications and probe counts, overlapped backend
        round-trips); passing an ``executor`` reuses a caller-owned pool
        instead and takes precedence.

        ``processes > 1`` runs the traversal on a
        :class:`~repro.parallel.ShardedLatticeExecutor` instead: the
        exploration graph is split into per-MTN subtree shards
        (``shards`` of them, default = ``processes``) swept in forked
        worker processes -- the parallelism that escapes the GIL for
        CPU-bound backends.  Classifications and MPANs stay byte-identical
        to serial; executed-query counts can exceed a shared-cache serial
        sweep's for the reuse strategies because shard caches are private.
        Only the four shardable strategies use it (``sbh``'s greedy
        frontier is global by design and falls back to the
        coordinator-side path); a custom ``evaluator`` is not consulted
        on this path (workers build their own).
        """
        chosen = self.strategy
        if strategy is not None:
            chosen = (
                strategy
                if isinstance(strategy, TraversalStrategy)
                else get_strategy(strategy)
            )
        timings = PhaseTimings()
        active = tracer if tracer is not None else self.tracer

        def phase_event(name: str, phase: str, **attrs: Any) -> None:
            if active is not None:
                active.record_event(name, phase=phase, **attrs)

        phase_event("phase_started", "keyword_mapping")
        started = time.perf_counter()
        mapping = self.map_keywords(query)
        timings.keyword_mapping = time.perf_counter() - started
        report = DebugReport(query=query, mapping=mapping, timings=timings)
        phase_event(
            "phase_completed",
            "keyword_mapping",
            interpretations=len(mapping.interpretations),
            complete=mapping.complete,
        )
        if report.aborted or not mapping.keywords:
            return report

        phase_event("phase_started", "lattice_pruning")
        started = time.perf_counter()
        report.pruned_lattices = self.prune(mapping)
        timings.lattice_pruning = time.perf_counter() - started
        phase_event(
            "phase_completed", "lattice_pruning", retained_nodes=report.retained_nodes
        )

        phase_event("phase_started", "mtn_discovery")
        started = time.perf_counter()
        report.graph = self.build_graph(report.pruned_lattices, constraints)
        timings.mtn_discovery = time.perf_counter() - started
        phase_event(
            "phase_completed",
            "mtn_discovery",
            mtns=len(report.graph.mtn_indexes),
            nodes=len(report.graph),
        )

        # Exact repeat: the status cache holds a complete run of this very
        # workload against byte-identical content, so Phase 3 is implied
        # rather than recomputed -- zero probes, zero backend queries.
        if self.status_cache is not None and constraints is UNCONSTRAINED:
            load = self.status_cache.load(self.workload_key(mapping))
            if load is not None and load.exact and load.complete:
                started = time.perf_counter()
                rebuilt = self._result_from_facts(
                    report.graph, load.facts, chosen.name
                )
                if rebuilt is not None:
                    rebuilt.elapsed = time.perf_counter() - started
                    report.traversal = rebuilt
                    timings.traversal = rebuilt.elapsed
                    if active is not None:
                        active.record_event(
                            "phase3_skipped",
                            workload_key=load.workload_key,
                            strategy=chosen.name,
                            facts=len(load.facts),
                        )
                    return report

        # An out-of-core index holds a live sqlite connection that must not
        # be shared across forks (the workers would interleave on one file
        # descriptor); those runs stay on the coordinator-side path.
        fork_safe_index = not self.index_capabilities.out_of_core
        if processes > 1 and chosen.name in SHARDABLE_STRATEGIES and fork_safe_index:
            from repro.parallel import ShardedLatticeExecutor

            sharded = ShardedLatticeExecutor(processes=processes, shards=shards)
            phase_event("phase_started", "traversal", strategy=chosen.name)
            started = time.perf_counter()
            report.traversal = sharded.run(
                report.graph,
                self.database,
                chosen.name,
                backend=self.backend_name,
                backend_options=self.backend_factory_options,
                cost_model=self.cost_model,
                budget=budget,
                tracer=active,
                coordinator_backend=self.backend,
            )
            timings.traversal = time.perf_counter() - started
            phase_event(
                "phase_completed",
                "traversal",
                strategy=chosen.name,
                exhausted=report.traversal.exhausted,
            )
            self._maybe_save_status(mapping, report, constraints)
            return report

        if evaluator is None:
            evaluator = self.make_evaluator(
                use_cache=chosen.uses_reuse, budget=budget, tracer=active
            )
        elif budget is not None and evaluator.budget is None:
            evaluator.budget = budget
        owned_executor = None
        if executor is None and workers > 1:
            from repro.parallel import ParallelProbeExecutor

            executor = owned_executor = ParallelProbeExecutor(workers=workers)
        phase_event("phase_started", "traversal", strategy=chosen.name)
        started = time.perf_counter()
        try:
            report.traversal = chosen.run(
                report.graph, evaluator, self.database, executor=executor
            )
        finally:
            if owned_executor is not None:
                owned_executor.close()
        timings.traversal = time.perf_counter() - started
        phase_event(
            "phase_completed",
            "traversal",
            strategy=chosen.name,
            exhausted=report.traversal.exhausted,
        )
        self._maybe_save_status(mapping, report, constraints)
        return report

    def _maybe_save_status(
        self,
        mapping: KeywordMapping,
        report: DebugReport,
        constraints: SearchConstraints,
    ) -> None:
        """Persist a finished run's classifications for later repeats.

        Only complete, unconstrained runs are saved: an exhausted sweep
        may have unresolved search spaces and a constrained one explores
        a different graph, so neither licenses a future Phase-3 skip.
        """
        if (
            self.status_cache is None
            or constraints is not UNCONSTRAINED
            or report.traversal is None
            or report.traversal.exhausted
        ):
            return
        facts = self._facts_from_result(report.traversal)
        if facts:
            self.status_cache.save(self.workload_key(mapping), facts, complete=True)

    def _store_resolves_graph(
        self, graph: ExplorationGraph, store: StatusStore
    ) -> bool:
        """True when ``store`` fully classifies MTNs and dead cones."""
        for mtn_index in graph.mtn_indexes:
            status = store.status(mtn_index)
            if status is Status.POSSIBLY_ALIVE:
                return False
            if status is Status.DEAD and (
                store.unknown_mask & graph.desc_mask[mtn_index]
            ):
                return False
        return True

    def save_session_status(
        self,
        mapping: KeywordMapping,
        graph: ExplorationGraph,
        store: StatusStore,
        exhausted: bool = False,
    ) -> None:
        """Persist an interactive session's accumulated classifications.

        Partial knowledge is saved too (it preloads the next session);
        only a store that fully resolves every candidate network is
        marked *complete*, which is what licenses a later exact repeat
        to skip Phase 3 outright.
        """
        if self.status_cache is None:
            return
        facts = self._facts_from_stores(graph, [store])
        if not facts:
            return
        complete = not exhausted and self._store_resolves_graph(graph, store)
        self.status_cache.save(
            self.workload_key(mapping), facts, complete=complete
        )

    # ------------------------------------------------------------ utilities
    def refresh_after_mutation(self) -> None:
        """Rebuild the snapshot-bound pieces after the database changed.

        The inverted index, keyword mapper, and backend all read the
        dataset at construction time; a :meth:`Table.insert`/``delete``
        leaves them stale, so mutating callers must refresh before the
        next query.  The probe cache is *repaired* in place (monotone
        survivors re-keyed to the new fingerprints), not reopened, and
        the status cache needs nothing -- it repairs at load time.  A
        mutation-repair index backend (sqlite) likewise rebuilds only the
        relations whose fingerprint changed when it is recreated here.
        """
        if self._owns_index:
            self.index.close()
        self.index = create_index(
            self.index_backend_name, self.database, **self._index_options
        )
        self._owns_index = True
        self.mapper = KeywordMapper(
            self.index, mode=self.mode, max_interpretations=self._max_interpretations
        )
        closer = getattr(self.backend, "close", None)
        if closer is not None:
            closer()
        options = dict(self.backend_factory_options)
        options["tuple_set_provider"] = self.index.provider
        if "streaming_source" in options:
            options["streaming_source"] = self.index
        self.backend_factory_options = options
        self.backend = create_backend(self.backend_name, self.database, **options)
        if self.probe_cache is not None:
            self.probe_cache.refresh(self.tracer)

    def close(self) -> None:
        """Release backend resources (connection pool, probe cache).

        When a tracer is attached and the backend pools connections, a
        final ``pool_stats`` event is stamped into the trace first --
        ``repro trace check`` verifies from it that every pooled
        connection was checked back in (in_use == 0) and the peak stayed
        within the cap.
        """
        if self.tracer is not None:
            pool_stats = getattr(self.backend, "pool_stats", None)
            if callable(pool_stats):
                stats = pool_stats()
                self.tracer.record_event(
                    "pool_stats",
                    in_use=stats.in_use,
                    max_in_use=stats.max_in_use,
                    max_size=getattr(self.backend, "pool_size", stats.max_in_use),
                )
        closer = getattr(self.backend, "close", None)
        if closer is not None:
            closer()
        if self._owns_index:
            self.index.close()
        if self.probe_cache is not None:
            self.probe_cache.close()
        if self.status_cache is not None:
            self.status_cache.close()

    def __enter__(self) -> "NonAnswerDebugger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def witnesses(self, query: BoundQuery, limit: int = 5) -> list[dict]:
        """Sample result tuples of a (sub-)query, for display purposes."""
        if isinstance(self.backend, InMemoryEngine):
            rows = self.backend.evaluate(query, limit=limit)
            return [
                {str(instance): values for instance, values in row.items()}
                for row in rows
            ]
        fetched = self.backend.fetch(query, limit=limit)
        return [{"row": list(row)} for row in fetched]
