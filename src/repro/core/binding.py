"""Keyword-based lattice pruning (Phase 1, §2.3 of the paper).

For one *interpretation* (a relation choice per keyword, from
:class:`repro.index.mapper.KeywordMapper`):

1. bind the ``i``-th keyword to copy (keyword slot) ``i`` of its relation --
   the assignment is deterministic and shared sub-queries therefore coincide
   across interpretations and across the MTNs of one interpretation;
2. bind the empty keyword to ``R0`` of every relation (free tuple sets);
3. prune the lattice: keep exactly the nodes whose every instance is a bound
   or free copy.  Implemented as an upward walk from the retained base
   nodes, mirroring the paper's "prune base nodes, then their ancestors".

For lattice levels where materializing Phase 0 is not worthwhile, the same
retained set can be generated *directly* from the binding's alphabet
(:meth:`KeywordBinder.prune_direct`); a property test checks both paths
produce identical retained trees.

The result also knows how to *instantiate* any retained node into a
:class:`~repro.relational.jointree.BoundQuery` (the run-time WHERE clause).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.freecopies import free_instance, free_instances, next_free_instance
from repro.core.lattice import Lattice
from repro.index.mapper import Interpretation
from repro.relational.jointree import BoundQuery, JoinEdge, JoinTree, RelationInstance
from repro.relational.predicates import MatchMode
from repro.relational.schema import SchemaGraph


class BindingError(ValueError):
    """Raised when an interpretation cannot be bound to the lattice."""


@dataclass(frozen=True)
class KeywordBinding:
    """The copy assignment of one interpretation: keyword -> instance."""

    interpretation: Interpretation
    by_keyword: tuple[tuple[str, RelationInstance], ...]

    @property
    def instances(self) -> frozenset[RelationInstance]:
        """The keyword-bound copies (what totality is measured against)."""
        return frozenset(instance for _, instance in self.by_keyword)

    @property
    def keyword_map(self) -> dict[RelationInstance, str]:
        return {instance: keyword for keyword, instance in self.by_keyword}

    def describe(self) -> str:
        return ", ".join(f"{kw}->{inst}" for kw, inst in self.by_keyword)


@dataclass
class PrunedLattice:
    """The retained sub-lattice for one interpretation.

    ``retained`` maps join trees to lattice node ids when the walk ran over a
    materialized lattice, or to ``-1`` when the retained set was generated
    directly (both carry the same trees; nothing downstream needs the ids).
    ``complete`` is False when the set was produced by the MTN-targeted fast
    path (:meth:`KeywordBinder.prune_for_mtns`): it still contains every MTN
    but not every retained tree, so only MTN extraction may rely on it.
    """

    schema: SchemaGraph
    binding: KeywordBinding
    retained: dict[JoinTree, int]
    mode: MatchMode = MatchMode.TOKEN
    pruning_time: float = 0.0
    lattice_size: int | None = None
    complete: bool = True
    _bound_cache: dict[JoinTree, BoundQuery] = field(default_factory=dict, repr=False)

    @property
    def retained_count(self) -> int:
        return len(self.retained)

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the offline lattice removed by this keyword query."""
        if not self.lattice_size:
            return 0.0
        return (self.lattice_size - len(self.retained)) / self.lattice_size

    def retained_trees(self) -> list[JoinTree]:
        return list(self.retained)

    def instantiate(self, tree: JoinTree) -> BoundQuery:
        """The run-time SQL query of a retained node (keywords filled in)."""
        cached = self._bound_cache.get(tree)
        if cached is not None:
            return cached
        if tree not in self.retained:
            raise BindingError(f"tree {tree.describe()} was pruned")
        query = bind_tree(tree, self.binding, self.mode)
        self._bound_cache[tree] = query
        return query

    def is_total(self, tree: JoinTree) -> bool:
        """Total node: contains the copy bound to *every* keyword (§2.4)."""
        return self.binding.instances <= tree.instances


def bind_tree(
    tree: JoinTree, binding: KeywordBinding, mode: MatchMode = MatchMode.TOKEN
) -> BoundQuery:
    """Attach the binding's keywords to the matching instances of ``tree``."""
    keyword_map = binding.keyword_map
    bindings = {
        instance: keyword_map[instance]
        for instance in tree.instances
        if instance in keyword_map
    }
    return BoundQuery.from_mapping(tree, bindings, mode)


class KeywordBinder:
    """Binds interpretations to keyword slots and prunes the lattice.

    Construct it either from a materialized :class:`Lattice` (Phase-0 path)
    or from a bare schema plus ``max_joins`` (direct path); both paths
    produce identical :class:`PrunedLattice` contents.
    """

    def __init__(
        self,
        lattice: Lattice | None = None,
        schema: SchemaGraph | None = None,
        max_joins: int | None = None,
        max_keywords: int | None = None,
        mode: MatchMode = MatchMode.TOKEN,
        free_copies: int = 1,
    ):
        if free_copies < 1:
            raise BindingError("free_copies must be at least 1")
        if lattice is not None:
            if free_copies > 1:
                raise BindingError(
                    "multiple free copies are only supported in direct mode "
                    "(the paper's lattice maintains a single R0; build the "
                    "binder from schema/max_joins instead)"
                )
            self.schema = lattice.schema
            self.max_joins = lattice.max_joins
            self.max_keywords = lattice.max_keywords
        else:
            if schema is None or max_joins is None:
                raise BindingError(
                    "KeywordBinder needs a lattice, or a schema and max_joins"
                )
            self.schema = schema
            self.max_joins = max_joins
            self.max_keywords = (
                max_keywords if max_keywords is not None else max_joins + 1
            )
        self.lattice = lattice
        self.mode = mode
        self.free_copies = free_copies

    def bind(self, interpretation: Interpretation) -> KeywordBinding:
        """Assign the ``i``-th keyword to slot ``i`` of its relation."""
        assignments: list[tuple[str, RelationInstance]] = []
        for position, (keyword, relation) in enumerate(
            interpretation.assignments, start=1
        ):
            if relation not in self.schema.relations:
                raise BindingError(f"unknown relation {relation!r}")
            if position > self.max_keywords:
                raise BindingError(
                    f"query has more keywords than the lattice has slots "
                    f"({self.max_keywords}); regenerate with a larger "
                    f"max_keywords"
                )
            assignments.append((keyword, RelationInstance(relation, position)))
        return KeywordBinding(interpretation, tuple(assignments))

    def prune(self, interpretation: Interpretation) -> PrunedLattice:
        """Phase 1 over the materialized lattice (upward BFS from the base).

        Falls back to :meth:`prune_direct` when no lattice was materialized.
        """
        if self.lattice is None:
            return self.prune_direct(interpretation)
        started = time.perf_counter()
        binding = self.bind(interpretation)
        allowed = self._allowed_instances(binding)

        retained: dict[JoinTree, int] = {}
        frontier: list[int] = []
        for node in self.lattice.base_nodes():
            (instance,) = node.tree.instances
            if instance in allowed:
                retained[node.tree] = node.node_id
                frontier.append(node.node_id)
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for parent_id in self.lattice.node(current).parents:
                if parent_id in seen:
                    continue
                parent_tree = self.lattice.node(parent_id).tree
                if all(instance in allowed for instance in parent_tree.instances):
                    seen.add(parent_id)
                    retained[parent_tree] = parent_id
                    frontier.append(parent_id)
        return PrunedLattice(
            schema=self.schema,
            binding=binding,
            retained=retained,
            mode=self.mode,
            pruning_time=time.perf_counter() - started,
            lattice_size=len(self.lattice),
        )

    def prune_direct(self, interpretation: Interpretation) -> PrunedLattice:
        """Phase 1 without Phase 0: generate the retained set directly.

        Enumerates all join trees over the binding's alphabet (bound copies
        plus one free copy per relation) up to ``max_joins + 1`` instances.
        This produces exactly the trees the lattice walk retains -- the
        offline lattice's value is amortizing this work across queries, not
        changing its outcome -- and is how the level-7 experiments run
        without materializing a level-7 lattice.
        """
        return self._generate(interpretation, mtn_targeted=False)

    def prune_for_mtns(self, interpretation: Interpretation) -> PrunedLattice:
        """Direct generation restricted to subtrees of potential MTNs.

        Every subtree ``T`` of an MTN ``M`` satisfies ``|M| >= |T| +
        max(missing bound copies, free leaves of T)``: each free leaf of
        ``T`` must gain a distinct neighbour to become interior in ``M``
        (two free leaves sharing one new neighbour would close a cycle), and
        every missing bound copy still needs its own node.  Growing only
        trees within that budget therefore reaches every MTN while skipping
        retained trees that no candidate network contains.  The result is
        marked ``complete=False``; MTN extraction is unaffected (verified by
        a property test against :meth:`prune_direct`).
        """
        return self._generate(interpretation, mtn_targeted=True)

    def _generate(
        self, interpretation: Interpretation, mtn_targeted: bool
    ) -> PrunedLattice:
        started = time.perf_counter()
        binding = self.bind(interpretation)
        bound = binding.instances
        max_size = self.max_joins + 1
        bound_by_relation: dict[str, list[RelationInstance]] = {}
        for instance in sorted(bound):
            bound_by_relation.setdefault(instance.relation, []).append(instance)

        def over_budget(tree: JoinTree) -> bool:
            if not mtn_targeted:
                return False
            missing = len(bound - tree.instances)
            free_leaves = sum(1 for leaf in tree.leaves() if leaf.is_free)
            return tree.size + max(missing, free_leaves) > max_size

        def candidates(tree: JoinTree, relation: str) -> list[RelationInstance]:
            """Attachable instances of ``relation``: bound ones not yet in
            the tree, plus the lowest absent free rank (rank-permutation
            twins are never generated)."""
            found = [
                instance
                for instance in bound_by_relation.get(relation, ())
                if instance not in tree.instances
            ]
            next_free = next_free_instance(tree, relation, self.free_copies)
            if next_free is not None:
                found.append(next_free)
            return found

        retained: dict[JoinTree, int] = {}
        stack: list[JoinTree] = []
        seeds = sorted(bound) + [
            free_instance(name, 0) for name in sorted(self.schema.relations)
        ]
        for instance in seeds:
            if mtn_targeted and instance.is_free and max_size > 1:
                # A lone free node is over budget unless it can still grow
                # into an MTN; seed from bound instances only (every MTN
                # contains one) and let free nodes join as connectors.
                continue
            tree = JoinTree.single(instance)
            if over_budget(tree):
                continue
            retained[tree] = -1
            stack.append(tree)
        while stack:
            tree = stack.pop()
            if tree.size >= max_size:
                continue
            for instance in tree.sorted_instances():
                for fk in self.schema.edges_of(instance.relation):
                    other_relation = fk.other(instance.relation)
                    for candidate in candidates(tree, other_relation):
                        if fk.child == instance.relation:
                            edge = JoinEdge.from_fk(fk, instance, candidate)
                        else:
                            edge = JoinEdge.from_fk(fk, candidate, instance)
                        extended = tree.extend(edge, candidate)
                        if extended in retained or over_budget(extended):
                            continue
                        retained[extended] = -1
                        stack.append(extended)
        return PrunedLattice(
            schema=self.schema,
            binding=binding,
            retained=retained,
            mode=self.mode,
            pruning_time=time.perf_counter() - started,
            lattice_size=len(self.lattice) if self.lattice else None,
            complete=not mtn_targeted,
        )

    def _allowed_instances(self, binding: KeywordBinding) -> set[RelationInstance]:
        allowed = set(binding.instances)
        for relation in self.schema.relations:
            allowed.update(free_instances(relation, self.free_copies))
        return allowed
