"""The Figure-2 product database -- the paper's running example.

Four tables: ``Item`` (I) with foreign keys into ``ProductType`` (P),
``Color`` (C) and ``Attribute`` (A).  The data is copied row-for-row from
Figure 2, including the quirks the example depends on: no item has the
saffron color, item 3's description mentions "saffron scented", and item 1
(an oil, not a candle) is the only saffron-scented product.

With this data and the keyword query ``saffron scented candle``:

* q1 = P^candle ⋈ I^scented ⋈ C^saffron is dead; its MPANs are
  ``P^candle ⋈ I^scented`` and ``C^saffron``;
* q2 = P^candle ⋈ I^scented ⋈ A^saffron is dead; its MPANs are
  ``P^candle ⋈ I^scented`` and ``I^scented ⋈ A^saffron``;

exactly as derived in Example 1 (integration tests pin this down).
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)

_INT = AttributeType.INTEGER
_TEXT = AttributeType.TEXT
_REAL = AttributeType.REAL


def product_schema() -> SchemaGraph:
    """The Figure-2 schema: Item joining ProductType, Color, Attribute."""
    relations = [
        Relation(
            "ProductType",
            (Attribute("id", _INT), Attribute("name", _TEXT)),
        ),
        Relation(
            "Color",
            (
                Attribute("id", _INT),
                Attribute("name", _TEXT),
                Attribute("synonyms", _TEXT),
            ),
        ),
        Relation(
            "Attribute",
            (
                Attribute("id", _INT),
                Attribute("property", _TEXT),
                Attribute("value", _TEXT),
            ),
        ),
        Relation(
            "Item",
            (
                Attribute("id", _INT),
                Attribute("name", _TEXT),
                Attribute("ptype", _INT),
                Attribute("color", _INT),
                Attribute("attr", _INT),
                Attribute("cost", _REAL),
                Attribute("description", _TEXT),
            ),
        ),
    ]
    foreign_keys = [
        ForeignKey("item_ptype", "Item", "ptype", "ProductType", "id"),
        ForeignKey("item_color", "Item", "color", "Color", "id"),
        ForeignKey("item_attr", "Item", "attr", "Attribute", "id"),
    ]
    return SchemaGraph.build(relations, foreign_keys)


def product_database() -> Database:
    """The Figure-2 instance, loaded and integrity-checked."""
    database = Database(product_schema())
    database.load(
        {
            "ProductType": [
                (1, "oil"),
                (2, "candle"),
                (3, "incense"),
            ],
            "Color": [
                (1, "red", "crimson, orange"),
                (2, "yellow", "golden, lemon"),
                (3, "pink", "peach, salmon"),
                (4, "saffron", "yellow, orange"),
            ],
            "Attribute": [
                (1, "scent", "saffron"),
                (2, "scent", "vanilla"),
                (3, "pattern", "floral"),
                (4, "pattern", "checkered"),
            ],
            "Item": [
                (1, "saffron scented oil", 1, None, 1, 4.99,
                 "3.4 oz. burns without fumes."),
                (2, "vanilla scented candle", 2, 2, 2, 5.99,
                 "burn time 50 hrs. 6.4 oz. 2pck."),
                (3, "crimson scented candle", 2, 1, 3, 3.99,
                 "hand-made. saffron scented. 2pck."),
                (4, "red checkered candle", 2, 1, 4, 3.99,
                 "rose scented. made from essential oils."),
            ],
        }
    )
    database.validate()
    return database
