"""A seeded synthetic stand-in for the DBLife snapshot (§3 of the paper).

The real DBLife crawl (801,189 tuples, 40 MB, 2009) is not publicly
archived, so the evaluation runs on a generator that reproduces the
*structural* properties the experiments depend on:

* the same schema shape: 5 entity tables (``Person``, ``Publication``,
  ``Conference``, ``Organization``, ``Topic``) that carry all the text, and
  9 relationship tables with no text attributes, star-shaped around
  ``Person`` (Figure 8);
* keyword -> table containment patterns of the workload (Table 2): person
  names occur only in ``Person``, ``Washington`` occurs in ``Person``,
  ``Publication`` and ``Organization``, topic terms occur in ``Topic`` and
  ``Publication``, and so on;
* connectivity that is sparse at low join depths and denser at high depths,
  which is what concentrates MTNs/MPANs at the higher lattice levels
  (Table 3) and makes top-down traversals win (§3.5).

``scale`` multiplies every table's cardinality; ``seed`` fixes the RNG, so
a (seed, scale) pair is a reproducible snapshot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.database import Database
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)

_INT = AttributeType.INTEGER
_TEXT = AttributeType.TEXT

# --------------------------------------------------------------------- vocab
# Famous surnames used by the Table-2 workload.  They only ever occur in
# Person.name.
WORKLOAD_SURNAMES = (
    "Widom", "Hristidis", "Agrawal", "Chaudhuri", "Das",
    "DeRose", "Gray", "DeWitt",
)

FILLER_SURNAMES = (
    "Almeida", "Brickell", "Castano", "Dumas", "Eltabakh", "Fontoura",
    "Ganti", "Hellerman", "Ivanova", "Jagadeesh", "Koudas", "Lomet",
    "Melnik", "Nestorov", "Olston", "Polyzotis", "Quass", "Ramakrishna",
    "Srivastava", "Theobald", "Upadhyaya", "Vianu", "Yerneni", "Zilio",
)

FIRST_NAMES = (
    "Jennifer", "Vagelis", "Rakesh", "Surajit", "Gautam", "Pedro", "Jim",
    "David", "Ana", "Boris", "Carla", "Dmitri", "Elena", "Frank", "Grace",
    "Hector", "Irene", "Jorge", "Karen", "Luis", "Mona", "Nikos", "Olga",
    "Paulo", "Rita", "Stefan", "Tanya", "Umar", "Vera", "Walter",
)

# The one ambiguous workload term: a surname, a university, and a benchmark.
AMBIGUOUS_TERM = "Washington"

CONFERENCES = (
    "VLDB", "SIGMOD", "ICDE", "EDBT", "CIDR",
    "KDD", "CIKM", "PODS", "WebDB", "SSDBM",
)

ORGANIZATIONS = (
    f"University of {AMBIGUOUS_TERM}",
    "University of Wisconsin",
    "Stanford University",
    "IBM Research",
    "Microsoft Research",
    "AT&T Labs",
    "Bell Laboratories",
    "Cornell University",
    "ETH Zurich",
    "Max Planck Institute",
    "Google Research",
    "Yahoo Research",
)

# Topic vocabulary; the workload terms keyword/search/probabilistic/data/
# xml/stream/histograms/trio all live here (and leak into titles below).
TOPICS = (
    "keyword search",
    "probabilistic data",
    "trio lineage",
    "xml processing",
    "stream processing",
    "histograms",
    "data integration",
    "query optimization",
    "information extraction",
    "schema matching",
    "provenance",
    "skyline queries",
    "entity resolution",
    "sensor networks",
    "approximate answering",
    "data cleaning",
)

TITLE_PATTERNS = (
    "A Study of {topic}",
    "Efficient {topic} in Relational Systems",
    "On the Complexity of {topic}",
    "Scalable {topic} for the Web",
    "Adaptive {topic} Revisited",
    "Towards Practical {topic}",
    "{topic} over Uncertain Databases",
    "Indexing Techniques for {topic}",
)

TUTORIAL_PATTERN = "A Tutorial on {topic}"
BENCHMARK_TITLE = f"The {AMBIGUOUS_TERM} Benchmark for Probabilistic Data"


@dataclass(frozen=True)
class DBLifeConfig:
    """Size and determinism knobs of the generator."""

    seed: int = 42
    scale: int = 1
    persons: int = 60
    publications: int = 150
    organizations: int = len(ORGANIZATIONS)
    conferences: int = len(CONFERENCES)
    topics: int = len(TOPICS)

    def count(self, base: int) -> int:
        return base * self.scale


def dblife_schema() -> SchemaGraph:
    """The 14-table DBLife schema: 5 entity + 9 relationship tables."""

    def entity(name: str, text_column: str) -> Relation:
        return Relation(name, (Attribute("id", _INT), Attribute(text_column, _TEXT)))

    def link(name: str, left: str, right: str) -> Relation:
        return Relation(
            name,
            (
                Attribute("id", _INT),
                Attribute(left, _INT),
                Attribute(right, _INT),
            ),
        )

    relations = [
        entity("Person", "name"),
        entity("Publication", "title"),
        entity("Conference", "name"),
        entity("Organization", "name"),
        entity("Topic", "name"),
        link("Writes", "person_id", "pub_id"),
        link("Coauthor", "person1_id", "person2_id"),
        link("Affiliation", "person_id", "org_id"),
        link("ServesOn", "person_id", "conf_id"),
        link("GaveTalk", "person_id", "org_id"),
        link("GaveTutorial", "person_id", "conf_id"),
        link("WorksOn", "person_id", "topic_id"),
        link("PublishedIn", "pub_id", "conf_id"),
        link("About", "pub_id", "topic_id"),
    ]
    foreign_keys = [
        ForeignKey("writes_person", "Writes", "person_id", "Person", "id"),
        ForeignKey("writes_pub", "Writes", "pub_id", "Publication", "id"),
        ForeignKey("coauthor_p1", "Coauthor", "person1_id", "Person", "id"),
        ForeignKey("coauthor_p2", "Coauthor", "person2_id", "Person", "id"),
        ForeignKey("affiliation_person", "Affiliation", "person_id", "Person", "id"),
        ForeignKey("affiliation_org", "Affiliation", "org_id", "Organization", "id"),
        ForeignKey("serveson_person", "ServesOn", "person_id", "Person", "id"),
        ForeignKey("serveson_conf", "ServesOn", "conf_id", "Conference", "id"),
        ForeignKey("gavetalk_person", "GaveTalk", "person_id", "Person", "id"),
        ForeignKey("gavetalk_org", "GaveTalk", "org_id", "Organization", "id"),
        ForeignKey("gavetutorial_person", "GaveTutorial", "person_id", "Person", "id"),
        ForeignKey("gavetutorial_conf", "GaveTutorial", "conf_id", "Conference", "id"),
        ForeignKey("workson_person", "WorksOn", "person_id", "Person", "id"),
        ForeignKey("workson_topic", "WorksOn", "topic_id", "Topic", "id"),
        ForeignKey("publishedin_pub", "PublishedIn", "pub_id", "Publication", "id"),
        ForeignKey("publishedin_conf", "PublishedIn", "conf_id", "Conference", "id"),
        ForeignKey("about_pub", "About", "pub_id", "Publication", "id"),
        ForeignKey("about_topic", "About", "topic_id", "Topic", "id"),
    ]
    return SchemaGraph.build(relations, foreign_keys)


class SyntheticGenerator:
    """Stateful helper that fills the tables; one instance per snapshot.

    Determinism contract (relied on by ``repro bench scale`` and the
    cross-process property test): the output is a pure function of the
    :class:`DBLifeConfig` -- every random draw comes from the seeded
    ``random.Random``, and the only ``set`` iterations are membership
    checks or ``discard`` loops whose order cannot reach the output, so
    hash randomization across processes cannot perturb the snapshot.
    """

    def __init__(self, config: DBLifeConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.database = Database(dblife_schema())
        # entity name -> list of integer ids (1-based like the paper's toy DB)
        self.ids: dict[str, list[int]] = {}
        self.person_by_surname: dict[str, int] = {}
        self.conference_by_name: dict[str, int] = {}
        self.topic_by_name: dict[str, int] = {}
        self.tutorial_pubs: list[int] = []
        self._link_seen: dict[str, set[tuple[int, int]]] = {}

    # ------------------------------------------------------------- entities
    def _add_entity(self, relation: str, text: str) -> int:
        rows = self.ids.setdefault(relation, [])
        new_id = len(rows) + 1
        self.database.insert(relation, (new_id, text))
        rows.append(new_id)
        return new_id

    def _add_link(self, relation: str, left: int, right: int) -> None:
        seen = self._link_seen.setdefault(relation, set())
        if (left, right) in seen:
            return
        seen.add((left, right))
        table = self.database.table(relation)
        self.database.insert(relation, (len(table) + 1, left, right))

    def generate(self) -> Database:
        self._persons()
        self._conferences()
        self._organizations()
        self._topics()
        self._publications()
        self._relationships()
        self._workload_targets()
        self.database.validate()
        return self.database

    def _persons(self) -> None:
        config = self.config
        for surname in WORKLOAD_SURNAMES:
            first = self.rng.choice(FIRST_NAMES)
            self.person_by_surname[surname] = self._add_entity(
                "Person", f"{first} {surname}"
            )
        # One person surnamed Washington (the ambiguous term).
        self.person_by_surname[AMBIGUOUS_TERM] = self._add_entity(
            "Person", f"Nora {AMBIGUOUS_TERM}"
        )
        fillers = config.count(config.persons) - len(self.person_by_surname)
        for index in range(max(fillers, 0)):
            first = self.rng.choice(FIRST_NAMES)
            surname = FILLER_SURNAMES[index % len(FILLER_SURNAMES)]
            self._add_entity("Person", f"{first} {surname}")

    def _conferences(self) -> None:
        for name in CONFERENCES:
            self.conference_by_name[name] = self._add_entity(
                "Conference", f"{name} Conference"
            )

    def _organizations(self) -> None:
        for name in ORGANIZATIONS:
            self._add_entity("Organization", name)

    def _topics(self) -> None:
        for name in TOPICS:
            self.topic_by_name[name] = self._add_entity("Topic", name)

    def _publications(self) -> None:
        config = self.config
        total = config.count(config.publications)
        # A fixed slice of titles are tutorials (the Q6 keyword) and one title
        # carries the ambiguous Washington term (Q8).
        self._add_entity("Publication", BENCHMARK_TITLE)
        for index in range(total - 1):
            topic = TOPICS[index % len(TOPICS)]
            if index % 17 == 0:
                title = TUTORIAL_PATTERN.format(topic=topic.title())
                pub_id = self._add_entity("Publication", title)
                self.tutorial_pubs.append(pub_id)
            else:
                pattern = self.rng.choice(TITLE_PATTERNS)
                self._add_entity("Publication", pattern.format(topic=topic.title()))

    # -------------------------------------------------------- relationships
    def _relationships(self) -> None:
        rng = self.rng
        config = self.config
        persons = self.ids["Person"]
        pubs = self.ids["Publication"]
        confs = self.ids["Conference"]
        orgs = self.ids["Organization"]
        topics = self.ids["Topic"]

        # Every publication appears in exactly one conference and is about
        # one or two topics.
        for pub in pubs:
            self._add_link("PublishedIn", pub, rng.choice(confs))
            for topic in rng.sample(topics, rng.randint(1, 2)):
                self._add_link("About", pub, topic)

        # Authorship: 1-3 authors per publication; coauthorship follows.
        for pub in pubs:
            authors = rng.sample(persons, rng.randint(1, 3))
            for author in authors:
                self._add_link("Writes", author, pub)
            for left in authors:
                for right in authors:
                    if left < right:
                        self._add_link("Coauthor", left, right)

        # Sparse person-side relationships (low join depths stay sparse,
        # which pushes answers to higher lattice levels, §3.5).
        for person in persons:
            if rng.random() < 0.8:
                self._add_link("Affiliation", person, rng.choice(orgs))
            if rng.random() < 0.5:
                self._add_link("ServesOn", person, rng.choice(confs))
            if rng.random() < 0.3:
                self._add_link("GaveTalk", person, rng.choice(orgs))
            if rng.random() < 0.15:
                self._add_link("GaveTutorial", person, rng.choice(confs))
            for topic in rng.sample(topics, rng.randint(1, 3)):
                self._add_link("WorksOn", person, topic)

    def _workload_targets(self) -> None:
        """Pin down the alive/dead structure the Table-2 queries rely on.

        Each adjustment below removes or adds specific links so that the
        workload queries have the paper's qualitative shape: some maximal
        sub-queries die at low levels while relationships with more hops
        stay alive (Q4/Q6), and well-connected people produce many answer
        networks (Q1/Q3).
        """
        by_surname = self.person_by_surname
        confs = self.conference_by_name
        topics = self.topic_by_name
        rng = self.rng

        # Q1: Widom works on trio lineage (alive at level 3).
        self._add_link("WorksOn", by_surname["Widom"], topics["trio lineage"])
        trio_pub = self._pub_about("trio lineage")
        self._add_link("Writes", by_surname["Widom"], trio_pub)

        # Q2: Hristidis works on keyword search and wrote a paper about it.
        self._add_link("WorksOn", by_surname["Hristidis"], topics["keyword search"])
        self._add_link("Writes", by_surname["Hristidis"], self._pub_about("keyword search"))

        # Q3: the Agrawal-Chaudhuri-Das triangle of coauthors.
        trio = [by_surname["Agrawal"], by_surname["Chaudhuri"], by_surname["Das"]]
        shared_pub = self._pub_about("query optimization")
        for person in trio:
            self._add_link("Writes", person, shared_pub)
        for left in trio:
            for right in trio:
                if left < right:
                    self._add_link("Coauthor", left, right)

        # Q4: DeRose has *no* direct VLDB relationship (dead at level 3) but
        # coauthors with Gray, who serves on the VLDB committee (alive
        # further out).
        derose = by_surname["DeRose"]
        self._drop_links("ServesOn", derose, confs["VLDB"])
        self._drop_links("GaveTutorial", derose, confs["VLDB"])
        self._drop_person_conf_pubs(derose, confs["VLDB"])
        self._add_link("Coauthor", min(derose, by_surname["Gray"]),
                       max(derose, by_surname["Gray"]))
        self._add_link("ServesOn", by_surname["Gray"], confs["VLDB"])

        # Q5: Gray serves on SIGMOD (alive at level 3).
        self._add_link("ServesOn", by_surname["Gray"], confs["SIGMOD"])

        # Q6: DeWitt wrote no tutorial himself, but a coauthor did.  All
        # tutorial authorships are dropped in one table pass: one rebuild
        # per tutorial publication made generation quadratic in scale
        # (thousands of full Writes rebuilds on a 10^6-tuple snapshot).
        dewitt = by_surname["DeWitt"]
        self._drop_links_to_many("Writes", dewitt, set(self.tutorial_pubs))
        partner = by_surname["Gray"]
        if self.tutorial_pubs:
            self._add_link("Writes", partner, rng.choice(self.tutorial_pubs))
        self._add_link("Coauthor", min(dewitt, partner), max(dewitt, partner))

        # Q8: Nora Washington works on probabilistic data.
        self._add_link(
            "WorksOn", by_surname[AMBIGUOUS_TERM], topics["probabilistic data"]
        )

    # ------------------------------------------------------------- plumbing
    def _pub_about(self, topic_name: str) -> int:
        """Some publication already linked to ``topic_name``."""
        topic_id = self.topic_by_name[topic_name]
        about = self.database.table("About")
        for row in about:
            if row[2] == topic_id:
                return row[1]
        # No publication covers the topic yet: link the first one.
        pub_id = self.ids["Publication"][0]
        self._add_link("About", pub_id, topic_id)
        return pub_id

    def _drop_links(self, relation: str, left: int, right: int) -> None:
        """Remove all (left, right) rows of a link table (rebuilds the table)."""
        table = self.database.table(relation)
        kept = [row for row in table if not (row[1] == left and row[2] == right)]
        self._rebuild(relation, kept)
        seen = self._link_seen.setdefault(relation, set())
        seen.discard((left, right))

    def _drop_links_to_many(
        self, relation: str, left: int, rights: set[int]
    ) -> None:
        """Remove every ``(left, r in rights)`` row in a single rebuild."""
        table = self.database.table(relation)
        kept = [
            row for row in table if not (row[1] == left and row[2] in rights)
        ]
        self._rebuild(relation, kept)
        seen = self._link_seen.setdefault(relation, set())
        for right in rights:
            seen.discard((left, right))

    def _drop_person_conf_pubs(self, person: int, conf: int) -> None:
        """Detach ``person`` from every publication of conference ``conf``."""
        published = self.database.table("PublishedIn")
        conf_pubs = {row[1] for row in published if row[2] == conf}
        writes = self.database.table("Writes")
        kept = [
            row for row in writes if not (row[1] == person and row[2] in conf_pubs)
        ]
        self._rebuild("Writes", kept)
        seen = self._link_seen.setdefault("Writes", set())
        for pub in conf_pubs:
            seen.discard((person, pub))

    def _rebuild(self, relation: str, rows: list) -> None:
        from repro.relational.table import Table

        self.database.tables[relation] = Table(
            self.database.schema.relation(relation), rows
        )


# Backwards-compatible alias (the class predates its public name).
_Generator = SyntheticGenerator


def dblife_database(config: DBLifeConfig | None = None) -> Database:
    """Generate a synthetic DBLife snapshot (deterministic per config)."""
    return SyntheticGenerator(config or DBLifeConfig()).generate()


def scale_for_tuples(target: int, seed: int = 42) -> int:
    """The ``scale`` whose snapshot lands closest to ``target`` tuples.

    Generates a scale-1 snapshot (~a millisecond) to learn the per-unit
    tuple yield instead of hard-coding it against the generator's knobs.
    """
    unit = len(dblife_database(DBLifeConfig(seed=seed, scale=1)))
    return max(1, round(target / unit))
