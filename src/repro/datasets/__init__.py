"""Datasets: the paper's running example and the evaluation corpus.

* :mod:`repro.datasets.products` -- the Figure-2 product database, verbatim,
  so Example 1's q1/q2 and their MPANs reproduce exactly.
* :mod:`repro.datasets.dblife` -- a seeded synthetic stand-in for the DBLife
  snapshot (5 entity + 9 relationship tables, star-shaped around ``Person``)
  used by every evaluation experiment.  See DESIGN.md, substitution #1.
"""

from repro.datasets.products import product_database, product_schema
from repro.datasets.dblife import DBLifeConfig, dblife_database, dblife_schema

__all__ = [
    "product_database",
    "product_schema",
    "DBLifeConfig",
    "dblife_database",
    "dblife_schema",
]
