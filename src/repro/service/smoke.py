"""End-to-end service smoke test: Table 2 through a live HTTP socket.

Starts a real :class:`~repro.service.server.ServiceServer` on an
ephemeral port, replays the paper's Q1-Q10 workload twice as an HTTP
client (``http.client``, nothing in-process), and asserts the serving
contract:

* pass 1 (cold): every session streams a gap-free event log over
  chunked JSON-lines and reaches a terminal event;
* pass 2 (warm, the acceptance criterion): every non-aborted repeat
  observes ``phase3_skipped`` through the HTTP layer and executes **zero**
  backend queries -- the persisted status cache answers the whole run;
* classification signatures are byte-identical across passes;
* after a drained shutdown, the exported combined event log passes
  ``repro trace check`` (terminal events, per-session seq gaps, pool
  release, cache-hit accounting).

Run directly (CI does)::

    python -m repro.service.smoke --event-log service-events.jsonl
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
import time
from typing import Any, Sequence

from repro.datasets.dblife import DBLifeConfig, dblife_database
from repro.datasets.products import product_database
from repro.service.app import ServiceApp
from repro.service.manager import SessionManager
from repro.service.server import ServiceServer
from repro.workloads.queries import TABLE2_QUERIES

#: Ceiling on how long one session may take to turn terminal, seconds.
SESSION_DEADLINE_SECONDS = 120.0


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
) -> tuple[int, bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {} if payload is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
) -> dict[str, Any]:
    status, raw = _request(host, port, method, path, body)
    document = json.loads(raw.decode("utf-8"))
    if status >= 400:
        raise RuntimeError(f"{method} {path} -> {status}: {document}")
    assert isinstance(document, dict)
    return document


def stream_session_events(
    host: str, port: int, session_id: str
) -> list[dict[str, Any]]:
    """Read one session's full event stream over chunked JSON-lines.

    Blocks until the server ends the stream at the session's terminal
    event; ``http.client`` undoes the chunked framing transparently.
    """
    connection = http.client.HTTPConnection(host, port, timeout=300)
    try:
        connection.request("GET", f"/sessions/{session_id}/stream")
        response = connection.getresponse()
        if response.status != 200:
            raise RuntimeError(
                f"stream of {session_id} -> {response.status}"
            )
        records = []
        while True:
            line = response.readline()
            if not line:
                break
            records.append(json.loads(line.decode("utf-8")))
        return records
    finally:
        connection.close()


def poll_session_events(
    host: str, port: int, session_id: str
) -> list[dict[str, Any]]:
    """Read one session's events by long-polling until terminal."""
    records: list[dict[str, Any]] = []
    cursor = -1
    deadline = time.perf_counter() + SESSION_DEADLINE_SECONDS
    while True:
        status, raw = _request(
            host,
            port,
            "GET",
            f"/sessions/{session_id}/events?after={cursor}&wait=5",
        )
        if status != 200:
            raise RuntimeError(f"events of {session_id} -> {status}")
        fresh = [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]
        records.extend(fresh)
        if fresh:
            cursor = int(fresh[-1]["seq"])
        if any(
            record.get("kind") == "event"
            and str(record.get("name", "")).startswith("session_")
            and record.get("name")
            in ("session_completed", "session_failed", "session_cancelled")
            for record in fresh
        ):
            return records
        if time.perf_counter() > deadline:
            raise RuntimeError(f"session {session_id} never turned terminal")


def run_pass(
    host: str,
    port: int,
    queries: Sequence[str],
    use_stream: bool,
) -> list[dict[str, Any]]:
    """Submit every query, collect events + result, return per-query rows."""
    rows = []
    for text in queries:
        submitted = _request_json(
            host, port, "POST", "/sessions", {"query": text}
        )
        session_id = str(submitted["session_id"])
        if use_stream:
            events = stream_session_events(host, port, session_id)
        else:
            events = poll_session_events(host, port, session_id)
        result = _request_json(
            host, port, "GET", f"/sessions/{session_id}/result"
        )
        executed_spans = sum(
            1
            for record in events
            if record.get("kind") == "span" and not record.get("cache_hit")
        )
        rows.append(
            {
                "query": text,
                "session_id": session_id,
                "state": result["state"],
                "aborted": bool(result.get("aborted")),
                "signature": result.get("signature"),
                "queries_executed": int(result.get("queries_executed", 0)),
                "executed_spans": executed_spans,
                "event_names": sorted(
                    {
                        str(record["name"])
                        for record in events
                        if record.get("kind") == "event"
                    }
                ),
            }
        )
    return rows


def run_smoke(
    dataset: str = "dblife",
    backend: str = "memory",
    cache_dir: str | None = None,
    event_log: str | None = None,
    workers: int = 2,
    scale: int = 1,
    seed: int = 42,
) -> dict[str, Any]:
    """Run the two-pass Q1-Q10 smoke workload; returns the gate payload."""
    from repro.obs.invariants import check_trace_file

    if dataset == "products":
        database = product_database()
    else:
        database = dblife_database(DBLifeConfig(seed=seed, scale=scale))
    queries = [query.text for query in TABLE2_QUERIES]

    with tempfile.TemporaryDirectory() as scratch:
        from repro.core.debugger import NonAnswerDebugger

        debugger = NonAnswerDebugger(
            database,
            max_joins=2,
            use_lattice=False,
            backend=backend,
            cache_dir=cache_dir or scratch,
        )
        manager = SessionManager(debugger, workers=workers)
        server = ServiceServer(ServiceApp(manager))
        server.start()
        try:
            health = _request_json(server.host, server.port, "GET", "/healthz")
            assert health["status"] == "ok"
            pass1 = run_pass(server.host, server.port, queries, use_stream=True)
            pass2 = run_pass(
                server.host, server.port, queries, use_stream=False
            )
            stats = _request_json(
                server.host, server.port, "GET", "/admin/stats"
            )
        finally:
            server.stop()
            manager.shutdown(drain=True, export_path=event_log)

        violations = (
            [v.render() for v in check_trace_file(event_log)]
            if event_log is not None
            else []
        )

    checks = {
        "all_terminal": all(
            row["state"] == "completed" for row in pass1 + pass2
        ),
        "signatures_identical": all(
            first["signature"] == second["signature"]
            for first, second in zip(pass1, pass2)
        ),
        # A repeat must skip Phase 3 whenever there was one: the cold run
        # classified at least one candidate network (queries with zero
        # MTNs at this join level have no facts to persist, and nothing
        # to skip -- they execute zero probes either way).
        "warm_pass_skips_phase3": all(
            "phase3_skipped" in second["event_names"]
            for first, second in zip(pass1, pass2)
            if not second["aborted"]
            and first["signature"]
            and (first["signature"][0] or first["signature"][1])
        ),
        "warm_pass_zero_backend_queries": sum(
            row["queries_executed"] + row["executed_spans"] for row in pass2
        )
        == 0,
        "some_phase3_skips": any(
            "phase3_skipped" in row["event_names"] for row in pass2
        ),
        "trace_check_clean": not violations,
    }
    return {
        "dataset": dataset,
        "backend": backend,
        "queries": len(queries),
        "pass1_executed": sum(row["executed_spans"] for row in pass1),
        "pass2_executed": sum(row["executed_spans"] for row in pass2),
        "sessions_served": stats["sessions_submitted"],
        "violations": violations,
        "checks": checks,
        "passed": all(checks.values()),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="drive Q1-Q10 through a live repro service over HTTP"
    )
    parser.add_argument("--dataset", choices=("products", "dblife"), default="dblife")
    parser.add_argument("--backend", default="memory")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--event-log", default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    payload = run_smoke(
        dataset=args.dataset,
        backend=args.backend,
        cache_dir=args.cache_dir,
        event_log=args.event_log,
        workers=args.workers,
        scale=args.scale,
        seed=args.seed,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
