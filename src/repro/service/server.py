"""Stdlib-only async HTTP server around :class:`~repro.service.app.ServiceApp`.

An ``asyncio.start_server`` loop runs on a dedicated thread; each
connection serves one HTTP/1.1 request (``Connection: close``
semantics -- simple, and exactly what the polling/streaming protocol
needs).  Application handlers are blocking by design (they sit on
condition variables and run traversals), so every ``app.handle`` call --
and every pull on a streaming response iterator -- is shipped to the
loop's default thread executor, keeping the event loop free to accept
and serve other clients concurrently.  Sized responses go out with
``Content-Length``; streams go out with ``Transfer-Encoding: chunked``,
one chunk per JSON line, flushed as the session produces events.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Iterator
from urllib.parse import parse_qsl, urlsplit

from repro.service.app import Response, ServiceApp

#: Hard cap on request head + body sizes: this is an ops/debugging
#: service, not a general proxy target.
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Sentinel returned by the executor-side iterator pull at exhaustion.
_STREAM_DONE = object()


class ServiceServer:
    """Serve one :class:`ServiceApp` over HTTP on a background loop.

    ``port=0`` binds an ephemeral port; the bound address is available
    as :attr:`host`/:attr:`port` after :meth:`start` returns.  The
    server owns only the socket/loop -- shutting down the
    :class:`~repro.service.manager.SessionManager` (draining sessions,
    final trace events) is the caller's job, in that order: stop the
    listener first so no new sessions race the drain.
    """

    def __init__(self, app: ServiceApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Bind and serve on a background thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to bind {self.host}:{self.port}"
            ) from self._startup_error

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection, self.host, self.port
                    )
                )
            except OSError as error:
                self._startup_error = error
                return
            self._server = server
            sockets = server.sockets or []
            if sockets:
                self.port = sockets[0].getsockname()[1]
            self._started.set()
            loop.run_forever()
            # stop() closed the listener; let in-flight handlers finish.
            loop.run_until_complete(server.wait_closed())
        finally:
            self._started.set()
            asyncio.set_event_loop(None)
            loop.close()

    def stop(self) -> None:
        """Close the listener and join the loop thread (idempotent)."""
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None or not thread.is_alive():
            return

        def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
            assert loop is not None
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        thread.join()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------- serving
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, params, body = request
            loop = asyncio.get_running_loop()
            try:
                response = await loop.run_in_executor(
                    None, self.app.handle, method, path, params, body
                )
            except Exception as error:  # defensive: app.handle maps its own
                response = Response(
                    500,
                    body=f'{{"error": "{type(error).__name__}"}}\n'.encode(),
                )
            await self._write_response(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request head + sized body."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(head) > MAX_HEAD_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        request_line = lines[0].split(" ")
        if len(request_line) != 3:
            return None
        method, target, _version = request_line
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        params = dict(parse_qsl(split.query))
        return method.upper(), split.path, params, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            "Connection: close",
        ]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        if response.stream is None:
            head.append(f"Content-Length: {len(response.body)}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
            )
            writer.write(response.body)
            await writer.drain()
            return
        head.append("Transfer-Encoding: chunked")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        loop = asyncio.get_running_loop()
        stream = response.stream
        while True:
            chunk = await loop.run_in_executor(None, _next_chunk, stream)
            if chunk is _STREAM_DONE:
                break
            assert isinstance(chunk, bytes)
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
            writer.write(chunk)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


def _next_chunk(stream: Iterator[bytes]) -> Any:
    """Blocking pull of one chunk (runs on the executor thread)."""
    try:
        return next(stream)
    except StopIteration:
        return _STREAM_DONE
