"""Non-answer debugging as a service (ROADMAP: "library" -> "system").

The paper frames debugging as an interactive investigation; this package
is the serving half of that claim.  The event-driven core
(:mod:`repro.service.events`) turns each run's
:class:`~repro.obs.trace.ProbeTracer` stream into a typed, gap-free
per-session event log; :class:`~repro.service.manager.SessionManager`
runs many such sessions concurrently over one shared backend, probe
cache, and status cache; :class:`~repro.service.app.ServiceApp` exposes
the whole thing over HTTP (stdlib-only asyncio server in
:mod:`repro.service.server`); and :mod:`repro.service.smoke` drives the
paper's Table-2 workload end to end through a live socket, the CI gate.
"""

from repro.service.app import Response, ServiceApp
from repro.service.events import TERMINAL_EVENTS, SessionEventLog
from repro.service.manager import (
    ServiceClosed,
    SessionHandle,
    SessionManager,
    UnknownSession,
)
from repro.service.server import ServiceServer

__all__ = [
    "Response",
    "ServiceApp",
    "ServiceClosed",
    "ServiceServer",
    "SessionEventLog",
    "SessionHandle",
    "SessionManager",
    "TERMINAL_EVENTS",
    "UnknownSession",
]
