"""Per-session event streams: the event-driven face of the core.

Each service session owns a :class:`~repro.obs.trace.ProbeTracer` whose
listener hook feeds a :class:`SessionEventLog`.  The log therefore sees
*every* record the run produced -- phase transitions, per-probe spans,
MTN resolutions, MPAN availability, budget exhaustion -- in sequence
order, even when the tracer's bounded ring wraps, which is what makes
the per-session stream gap-free (``repro trace check`` verifies exactly
that).  Records are the existing trace schema
(:data:`~repro.obs.trace.SPAN_SCHEMA` / ``EVENT_SCHEMA``), re-validated
on append so a malformed emitter fails loudly at the producer, not in
some consumer half a network away.

A session's stream ends with exactly one *terminal* event --
``session_completed``, ``session_failed``, or ``session_cancelled`` --
after which the log is immutable and every waiter is released.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Iterator, cast

from repro.obs.trace import TraceRecord, validate_trace_record

#: Event names that end a session's stream.  Exactly one of these is the
#: last record of every submitted session (``repro trace check``'s
#: ``session-terminal`` invariant).
TERMINAL_EVENTS = frozenset(
    {"session_completed", "session_failed", "session_cancelled"}
)

#: Wait granularity for :meth:`SessionEventLog.follow`: how often a
#: streaming consumer re-checks for new records when none arrive.
_FOLLOW_POLL_SECONDS = 0.5


class SessionEventLog:
    """Append-only, thread-safe record log of one service session.

    The producer is the session's tracer listener (called under the
    tracer lock, so appends arrive in seq order); consumers are HTTP
    handler threads polling :meth:`events_after` or streaming
    :meth:`follow`.  The log never drops: unlike the tracer ring it is
    unbounded, sized by the session's actual output, and sessions are
    evicted whole (:class:`~repro.service.manager.SessionManager` TTL).
    """

    def __init__(self, session_id: str):
        self.session_id = session_id
        self._cond = threading.Condition()
        self._records: list[dict[str, object]] = []  # guarded-by: _cond
        self._terminal = False  # guarded-by: _cond

    # ------------------------------------------------------------ producer
    def append(self, record: TraceRecord) -> None:
        """Tracer listener: fold one span/event into the log.

        Runs under the tracer's lock; it must not (and does not) call
        back into the tracer.  The serialized form is schema-validated
        here so every line a client ever streams is known-well-formed.
        """
        payload = record.to_dict()
        validate_trace_record(payload)
        with self._cond:
            if self._terminal:
                # A terminal event ends the stream; late stragglers would
                # break the "terminal event is last" contract.  None are
                # expected (the manager emits the terminal event last),
                # so this is a loud failure, not a silent drop.
                raise RuntimeError(
                    f"record after terminal event in session "
                    f"{self.session_id!r}: {payload!r}"
                )
            self._records.append(payload)
            if (
                payload.get("kind") == "event"
                and payload.get("name") in TERMINAL_EVENTS
            ):
                self._terminal = True
            self._cond.notify_all()

    # ------------------------------------------------------------ consumer
    @property
    def terminal(self) -> bool:
        """True once the session's final event has been logged."""
        with self._cond:
            return self._terminal

    def __len__(self) -> int:
        with self._cond:
            return len(self._records)

    def snapshot(self) -> list[dict[str, object]]:
        """All records so far, in seq order."""
        with self._cond:
            return list(self._records)

    def events_after(
        self, after_seq: int = -1, wait_seconds: float = 0.0
    ) -> tuple[list[dict[str, object]], bool]:
        """Records with ``seq > after_seq`` plus the terminal flag.

        With ``wait_seconds > 0`` the call blocks (bounded) until at
        least one new record arrives or the stream turns terminal --
        long-polling for clients that would otherwise busy-loop.
        """
        deadline = time.perf_counter() + max(0.0, wait_seconds)
        with self._cond:
            while (
                not self._terminal
                and not self._newer_than_locked(after_seq)
            ):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            fresh = [
                record
                for record in self._records
                if cast(int, record["seq"]) > after_seq
            ]
            return fresh, self._terminal

    def _newer_than_locked(self, after_seq: int) -> bool:
        if not self._records:
            return False
        last = self._records[-1]
        return cast(int, last["seq"]) > after_seq

    def follow(
        self, poll_seconds: float = _FOLLOW_POLL_SECONDS
    ) -> Iterator[dict[str, object]]:
        """Yield every record in order, blocking until the stream ends.

        The generator re-arms a bounded wait between batches instead of
        holding the condition across yields, so a slow consumer never
        blocks the producing tracer.
        """
        cursor = -1
        while True:
            fresh, terminal = self.events_after(
                cursor, wait_seconds=poll_seconds
            )
            for record in fresh:
                cursor = cast(int, record["seq"])
                yield record
            if terminal and not fresh:
                return

    # ------------------------------------------------------------- export
    def jsonl_lines(self, after_seq: int = -1) -> list[str]:
        """Records after ``after_seq`` as JSON lines (trace schema)."""
        return [
            json.dumps(record, sort_keys=True)
            for record in self.snapshot()
            if cast(int, record["seq"]) > after_seq
        ]
