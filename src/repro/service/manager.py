"""Multi-tenant session management over one shared debugger.

A :class:`SessionManager` turns a :class:`~repro.core.debugger.
NonAnswerDebugger` into a system serving traffic: submitted queries run
on a bounded worker pool, concurrently, sharing the debugger's backend
(pooled connections), its persistent L2
:class:`~repro.cache.ProbeCache`, and the :class:`~repro.cache.
StatusCache` -- all individually thread-safe, which is what makes N
concurrent sessions byte-identical to N serial runs (each session still
owns its evaluator, its L1 LRU, and its
:class:`~repro.obs.budget.ProbeBudget`).

Lifecycle facts the rest of the service relies on:

* every session gets its own :class:`~repro.obs.trace.ProbeTracer`
  (seq from 0, listener-fed :class:`~repro.service.events.
  SessionEventLog`), so per-session streams are gap-free by construction;
* every session ends in exactly one terminal event
  (``session_completed`` / ``session_failed`` / ``session_cancelled``);
* cancellation is cooperative: :meth:`SessionManager.cancel` aborts the
  session's budget, the traversal stops at its next backend probe, and
  the partial classifications survive (never saved as complete);
* dataset mutations take the write side of a reader-writer gate --
  active sessions drain first, then the PR-8 repair path
  (:meth:`~repro.core.debugger.NonAnswerDebugger.refresh_after_mutation`)
  runs with no reader in flight, then traffic resumes;
* finished sessions are evicted after ``session_ttl`` seconds; their
  records move to an archive so the shutdown export still carries every
  session the service ever ran.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.core.debugger import DebugReport, NonAnswerDebugger
from repro.obs.budget import ProbeBudget
from repro.obs.trace import ProbeTracer
from repro.service.events import SessionEventLog

#: Session states, in lifecycle order.  ``cancelled`` can follow either
#: ``pending`` (never started) or ``running`` (budget-aborted mid-run).
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a session no longer holds the read gate.
FINISHED_STATES = frozenset({COMPLETED, FAILED, CANCELLED})


class ServiceClosed(RuntimeError):
    """Submitted to (or mutated through) a manager that is shutting down."""


class UnknownSession(KeyError):
    """A session id that does not exist (or was TTL-evicted)."""


class _StateGate:
    """Reader-writer gate: sessions read, dataset mutations write.

    Writer-preferring: once a mutation is waiting, new sessions queue
    behind it (otherwise a busy service could starve mutations forever).
    Built on one condition; every wait sits in a while loop re-checking
    its predicate, per the CONC003 contract.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # guarded-by: _cond
        self._writers_waiting = 0  # guarded-by: _cond
        self._writer_active = False  # guarded-by: _cond

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()


class SessionHandle:
    """One submitted query's live state, shared between threads.

    The immutable identity (id, query text, strategy, tracer, log,
    budget) is set at construction; the mutable lifecycle fields are
    guarded by the handle's lock and move strictly forward
    (pending -> running -> terminal).
    """

    def __init__(
        self,
        session_id: str,
        number: int,
        query: str,
        strategy: str,
        budget: ProbeBudget,
        tracer: ProbeTracer,
        log: SessionEventLog,
    ):
        self.session_id = session_id
        #: Monotone submission number; orders sessions in the export.
        self.number = number
        self.query = query
        self.strategy = strategy
        self.budget = budget
        self.tracer = tracer
        self.log = log
        self.done = threading.Event()
        self._lock = threading.Lock()
        self._state = PENDING  # guarded-by: _lock
        self._report: DebugReport | None = None  # guarded-by: _lock
        self._error: str | None = None  # guarded-by: _lock
        self._cancel_requested = False  # guarded-by: _lock
        self._finished_tick: float | None = None  # guarded-by: _lock

    # ------------------------------------------------------------- queries
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def report(self) -> DebugReport | None:
        """The finished run's report (None until terminal, or on failure)."""
        with self._lock:
            return self._report

    @property
    def error(self) -> str | None:
        with self._lock:
            return self._error

    def cancel_requested(self) -> bool:
        with self._lock:
            return self._cancel_requested

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the session is terminal; True iff it finished."""
        return self.done.wait(timeout)

    def expired(self, now: float, ttl: float) -> bool:
        """True when the session finished more than ``ttl`` seconds ago."""
        with self._lock:
            return (
                self._finished_tick is not None
                and now - self._finished_tick > ttl
            )

    # ------------------------------------------------------- state changes
    def request_cancel(self) -> None:
        """Flag cancellation and abort the budget (cooperative stop)."""
        with self._lock:
            self._cancel_requested = True
        self.budget.abort()

    def mark_running(self) -> None:
        with self._lock:
            self._state = RUNNING

    def finish(
        self,
        state: str,
        report: DebugReport | None = None,
        error: str | None = None,
    ) -> None:
        """Move to a terminal state exactly once and release waiters."""
        if state not in FINISHED_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._lock:
            if self._state in FINISHED_STATES:  # pragma: no cover - defensive
                return
            self._state = state
            self._report = report
            self._error = error
            self._finished_tick = time.perf_counter()
        self.done.set()

    # -------------------------------------------------------------- views
    def describe(self) -> dict[str, Any]:
        """Summary row for listings and the admin endpoint."""
        with self._lock:
            state = self._state
            report = self._report
            error = self._error
        row: dict[str, Any] = {
            "session_id": self.session_id,
            "query": self.query,
            "strategy": self.strategy,
            "state": state,
            "events": len(self.log),
        }
        if error is not None:
            row["error"] = error
        if report is not None:
            row["aborted"] = report.aborted
            row["exhausted"] = report.exhausted
        return row

    def result_payload(self) -> dict[str, Any]:
        """The paper's three outputs as a JSON-safe document.

        Answers, non-answers, and per-non-answer MPANs, plus the
        canonical classification signature used by the byte-identity
        property tests and the serving bench.
        """
        with self._lock:
            state = self._state
            report = self._report
            error = self._error
        payload: dict[str, Any] = {
            "session_id": self.session_id,
            "query": self.query,
            "strategy": self.strategy,
            "state": state,
        }
        if error is not None:
            payload["error"] = error
        if report is None:
            return payload
        payload["aborted"] = report.aborted
        payload["exhausted"] = report.exhausted
        if report.aborted:
            payload["missing_keywords"] = list(report.mapping.missing_keywords)
            return payload
        payload["answers"] = [
            query.describe() for query in report.answers()
        ]
        payload["non_answers"] = [
            {
                "query": query.describe(),
                "mpans": [mpan.describe() for mpan in mpans],
            }
            for query, mpans in report.explanations()
        ]
        if report.traversal is not None:
            payload["signature"] = json.loads(
                json.dumps(report.traversal.classification_signature())
            )
            payload["queries_executed"] = (
                report.traversal.stats.queries_executed
            )
            payload["cache_hits"] = report.traversal.stats.cache_hits
        return payload


class SessionManager:
    """Run concurrent debugging sessions over one shared debugger.

    The manager takes ownership of ``debugger`` (``close_debugger``
    False opts out, for callers sharing a long-lived one): shutdown
    drains active sessions, emits the final ``service_shutdown`` and
    ``pool_stats`` events, and closes the debugger's resources.

    ``session_ttl`` (seconds, None = keep forever) bounds how long a
    *finished* session stays addressable; eviction moves its records to
    the archive so :meth:`export_jsonl` still covers it.
    """

    def __init__(
        self,
        debugger: NonAnswerDebugger,
        workers: int = 4,
        session_ttl: float | None = None,
        close_debugger: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.debugger = debugger
        self.workers = workers
        self.session_ttl = session_ttl
        self._close_debugger = close_debugger
        #: Service-level tracer: shutdown, mutation, and pool events that
        #: belong to no single session.  Installed as the debugger's
        #: default so ``debugger.close()`` lands its ``pool_stats`` here.
        self.tracer = debugger.tracer or ProbeTracer()
        debugger.tracer = self.tracer
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-session"
        )
        self._gate = _StateGate()
        self._lock = threading.Lock()
        self._sessions: dict[str, SessionHandle] = {}  # guarded-by: _lock
        self._archive: list[dict[str, object]] = []  # guarded-by: _lock
        self._counter = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._evicted = 0  # guarded-by: _lock

    # ------------------------------------------------------------ sessions
    def submit(
        self,
        query: str,
        strategy: str | None = None,
        max_queries: int | None = None,
    ) -> SessionHandle:
        """Queue one keyword query; returns immediately with its handle.

        ``max_queries`` caps the session's probe budget (None =
        unlimited; the budget object still exists, it is the
        cancellation mechanism).  Session ids are deterministic
        (``s1``, ``s2``, ...): replays produce identical streams.
        """
        self.evict_expired()
        strategy_name = strategy or self.debugger.strategy.name
        with self._lock:
            if self._closed:
                raise ServiceClosed("the session manager is shut down")
            self._counter += 1
            number = self._counter
        session_id = f"s{number}"
        budget = ProbeBudget(max_queries=max_queries)
        log = SessionEventLog(session_id)
        tracer = ProbeTracer(listener=log.append)
        tracer.set_context(session_id=session_id)
        handle = SessionHandle(
            session_id, number, query, strategy_name, budget, tracer, log
        )
        with self._lock:
            self._sessions[session_id] = handle
        attrs: dict[str, Any] = {"query": query, "strategy": strategy_name}
        if max_queries is not None:
            attrs["max_queries"] = max_queries
        tracer.record_event("session_submitted", **attrs)
        self._executor.submit(self._run_session, handle)
        return handle

    def _run_session(self, handle: SessionHandle) -> None:
        """Worker-pool body: one full debug run behind the read gate."""
        self._gate.acquire_read()
        try:
            if handle.cancel_requested():
                handle.tracer.record_event(
                    "session_cancelled", started=False
                )
                handle.finish(CANCELLED)
                return
            handle.mark_running()
            handle.tracer.record_event("session_started")
            try:
                report = self.debugger.debug(
                    handle.query,
                    strategy=handle.strategy,
                    budget=handle.budget,
                    tracer=handle.tracer,
                )
            except Exception as error:  # surfaced to the client, not raised
                handle.tracer.record_event(
                    "session_failed", error=str(error)
                )
                handle.finish(FAILED, error=str(error))
                return
            if handle.cancel_requested():
                handle.tracer.record_event(
                    "session_cancelled",
                    started=True,
                    exhausted=report.exhausted,
                )
                handle.finish(CANCELLED, report=report)
                return
            traversal = report.traversal
            handle.tracer.record_event(
                "session_completed",
                aborted=report.aborted,
                exhausted=report.exhausted,
                answers=len(report.answers()),
                non_answers=len(report.non_answers()),
                mpans=traversal.mpan_pair_count if traversal else 0,
            )
            handle.finish(COMPLETED, report=report)
        finally:
            self._gate.release_read()

    def get(self, session_id: str) -> SessionHandle:
        with self._lock:
            handle = self._sessions.get(session_id)
        if handle is None:
            raise UnknownSession(session_id)
        return handle

    def sessions(self) -> list[SessionHandle]:
        """All addressable sessions, in submission order."""
        with self._lock:
            handles = list(self._sessions.values())
        return sorted(handles, key=lambda handle: handle.number)

    def cancel(self, session_id: str) -> SessionHandle:
        """Cooperatively stop one session (idempotent on finished ones)."""
        handle = self.get(session_id)
        handle.request_cancel()
        return handle

    def wait_all(self, timeout: float | None = None) -> bool:
        """Block until every submitted session is terminal."""
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        for handle in self.sessions():
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.perf_counter())
            if not handle.wait(remaining):
                return False
        return True

    # ------------------------------------------------------------ eviction
    def evict_expired(self) -> int:
        """Drop finished sessions older than the TTL (records archived)."""
        if self.session_ttl is None:
            return 0
        now = time.perf_counter()
        evicted: list[SessionHandle] = []
        with self._lock:
            for session_id in list(self._sessions):
                handle = self._sessions[session_id]
                if handle.expired(now, self.session_ttl):
                    del self._sessions[session_id]
                    self._archive.extend(handle.log.snapshot())
                    self._evicted += 1
                    evicted.append(handle)
        for handle in evicted:
            # Service-level record; deliberately NOT named session_id so
            # the per-session gap-free check keys only on real streams.
            self.tracer.record_event(
                "session_evicted", evicted_session=handle.session_id
            )
        return len(evicted)

    # ------------------------------------------------------------ mutation
    def mutate(
        self,
        relation: str,
        inserts: Sequence[Sequence[Any]] = (),
        deletes: Sequence[int] = (),
    ) -> dict[str, Any]:
        """Apply dataset changes with no session in flight (write gate).

        Deletes are applied by row id in descending order (each delete
        shifts later ids), inserts after.  Then the PR-8 repair path
        runs: index/mapper/backend rebuilt, probe cache repaired in
        place, status cache repaired lazily at next load.  Sessions
        submitted during the mutation queue behind the gate and see only
        the post-mutation snapshot.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("the session manager is shut down")
        self._gate.acquire_write()
        try:
            table = self.debugger.database.table(relation)
            for row_id in sorted(deletes, reverse=True):
                table.delete(row_id)
            for row in inserts:
                table.insert(list(row))
            self.debugger.refresh_after_mutation()
            self.tracer.record_event(
                "dataset_mutated",
                relation=relation,
                inserted=len(inserts),
                deleted=len(deletes),
            )
        finally:
            self._gate.release_write()
        return {
            "relation": relation,
            "inserted": len(inserts),
            "deleted": len(deletes),
        }

    # --------------------------------------------------------------- stats
    def stats(self) -> dict[str, Any]:
        """Operator view: sessions by state, cache and pool counters."""
        by_state: dict[str, int] = {}
        for handle in self.sessions():
            state = handle.state
            by_state[state] = by_state.get(state, 0) + 1
        with self._lock:
            submitted = self._counter
            evicted = self._evicted
            closed = self._closed
        payload: dict[str, Any] = {
            "workers": self.workers,
            "closed": closed,
            "sessions_submitted": submitted,
            "sessions_evicted": evicted,
            "sessions_by_state": by_state,
        }
        probe_cache = self.debugger.probe_cache
        if probe_cache is not None:
            stats = probe_cache.stats()
            payload["probe_cache"] = {
                "entries": stats.entries,
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "repaired": stats.repaired,
                "evicted": stats.evicted,
            }
        status_cache = self.debugger.status_cache
        if status_cache is not None:
            payload["status_cache"] = {"workloads": len(status_cache)}
        pool_stats = getattr(self.debugger.backend, "pool_stats", None)
        if callable(pool_stats):
            pool = pool_stats()
            payload["pool"] = {
                "in_use": pool.in_use,
                "max_in_use": pool.max_in_use,
            }
        return payload

    # ------------------------------------------------------------ shutdown
    def shutdown(
        self, drain: bool = True, export_path: str | None = None
    ) -> dict[str, Any]:
        """Stop the service: no new sessions, finish or cancel the rest.

        ``drain=True`` lets queued and running sessions complete;
        ``drain=False`` aborts every unfinished budget first (they still
        end with a proper terminal event).  Emits ``service_shutdown``
        with the post-drain active count (always 0 -- the invariant
        ``repro trace check`` asserts), then ``pool_stats`` via
        ``debugger.close()``.  Idempotent.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            served = self._counter
        if already:
            return {"active_sessions": 0, "sessions_served": served}
        if not drain:
            for handle in self.sessions():
                handle.request_cancel()
        self._executor.shutdown(wait=True)
        active = sum(
            1
            for handle in self.sessions()
            if handle.state not in FINISHED_STATES
        )
        with self._lock:
            served = self._counter
        self.tracer.record_event(
            "service_shutdown",
            active_sessions=active,
            sessions_served=served,
            drained=drain,
        )
        if self._close_debugger:
            self.debugger.close()
        if export_path is not None:
            self.export_jsonl(export_path)
        return {"active_sessions": active, "sessions_served": served}

    # -------------------------------------------------------------- export
    def export_jsonl(self, path: str) -> int:
        """Write every record the service produced, one JSON line each.

        Ordering keeps ``repro trace check`` sound: archived (evicted)
        sessions first, then live sessions each as one contiguous block
        in submission order (traversal segments never interleave), then
        the service-level records (mutations, evictions,
        ``service_shutdown``, ``pool_stats``) last.
        """
        from repro.ioutil import atomic_write_text

        with self._lock:
            records: list[dict[str, object]] = list(self._archive)
        for handle in self.sessions():
            records.extend(handle.log.snapshot())
        records.extend(record.to_dict() for record in self.tracer.records)
        atomic_write_text(
            path,
            "".join(
                json.dumps(record, sort_keys=True) + "\n"
                for record in records
            ),
        )
        return len(records)

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
