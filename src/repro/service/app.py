"""HTTP routing for the debugging service (transport-agnostic core).

:class:`ServiceApp` maps requests onto a :class:`~repro.service.manager.
SessionManager` and returns plain :class:`Response` values -- bytes for
documents, an iterator of byte chunks for streams.  It never touches a
socket, so the full route surface is testable in-process;
:class:`~repro.service.server.ServiceServer` is the thin asyncio shell
that speaks HTTP/1.1 around it.

Routes::

    GET    /healthz                       liveness
    POST   /sessions                      submit {query, strategy?, max_queries?}
    GET    /sessions                      list sessions
    GET    /sessions/<id>                 state summary
    GET    /sessions/<id>/events          poll records (?after=SEQ&wait=SECONDS)
    GET    /sessions/<id>/stream          chunked JSON-lines until terminal
    GET    /sessions/<id>/result          answers, non-answers, MPANs
    GET    /sessions/<id>/mpans           just the MPAN explanations
    DELETE /sessions/<id>                 cooperative cancel
    POST   /mutate                        {relation, inserts?, deletes?}
    GET    /admin/stats                   cache/pool/session counters

Event payloads are trace-schema records (the same JSON lines ``repro
trace check`` validates), so a client can pipe a streamed session log
straight into the existing tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.service.manager import (
    ServiceClosed,
    SessionHandle,
    SessionManager,
    UnknownSession,
)

#: Upper bound on a long-poll wait, seconds: clients cannot park handler
#: threads indefinitely.
MAX_POLL_WAIT_SECONDS = 30.0

JSON_TYPE = "application/json"
JSONL_TYPE = "application/x-ndjson"


@dataclass
class Response:
    """One HTTP response, transport-agnostic.

    Exactly one of ``body`` (sized, Content-Length) and ``stream``
    (chunked transfer) carries content.
    """

    status: int
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: dict[str, str] = field(default_factory=dict)
    stream: Iterator[bytes] | None = None


def _json_response(
    status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
) -> Response:
    return Response(
        status,
        body=(json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        headers=dict(headers or {}),
    )


def _error(status: int, message: str) -> Response:
    return _json_response(status, {"error": message})


class ServiceApp:
    """Route requests onto one :class:`SessionManager`."""

    def __init__(self, manager: SessionManager):
        self.manager = manager

    # ------------------------------------------------------------ dispatch
    def handle(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes,
    ) -> Response:
        """Serve one request; never raises (errors become responses)."""
        try:
            return self._route(method, path, params, body)
        except UnknownSession as error:
            return _error(404, f"unknown session {error.args[0]!r}")
        except ServiceClosed as error:
            return _error(503, str(error))
        except (ValueError, KeyError, TypeError) as error:
            return _error(400, str(error))

    def _route(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes,
    ) -> Response:
        parts = [part for part in path.split("/") if part]
        if path == "/healthz" and method == "GET":
            return _json_response(200, {"status": "ok"})
        if path == "/sessions":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list_sessions()
        if len(parts) >= 2 and parts[0] == "sessions":
            handle = self.manager.get(parts[1])
            if len(parts) == 2:
                if method == "GET":
                    return _json_response(200, handle.describe())
                if method == "DELETE":
                    self.manager.cancel(handle.session_id)
                    return _json_response(202, handle.describe())
            if len(parts) == 3 and method == "GET":
                if parts[2] == "events":
                    return self._events(handle, params)
                if parts[2] == "stream":
                    return self._stream(handle)
                if parts[2] == "result":
                    return _json_response(200, handle.result_payload())
                if parts[2] == "mpans":
                    return self._mpans(handle)
        if path == "/mutate" and method == "POST":
            return self._mutate(body)
        if path == "/admin/stats" and method == "GET":
            return _json_response(200, self.manager.stats())
        return _error(404, f"no route for {method} {path}")

    # ------------------------------------------------------------- routes
    def _submit(self, body: bytes) -> Response:
        document = _parse_json_object(body)
        query = document.get("query")
        if not isinstance(query, str) or not query.strip():
            return _error(400, "body must carry a non-empty 'query' string")
        strategy = document.get("strategy")
        if strategy is not None and not isinstance(strategy, str):
            return _error(400, "'strategy' must be a string")
        max_queries = document.get("max_queries")
        if max_queries is not None and (
            isinstance(max_queries, bool) or not isinstance(max_queries, int)
        ):
            return _error(400, "'max_queries' must be an integer")
        handle = self.manager.submit(
            query, strategy=strategy, max_queries=max_queries
        )
        return _json_response(
            202,
            {
                "session_id": handle.session_id,
                "state": handle.state,
                "events": f"/sessions/{handle.session_id}/events",
                "stream": f"/sessions/{handle.session_id}/stream",
                "result": f"/sessions/{handle.session_id}/result",
            },
        )

    def _list_sessions(self) -> Response:
        return _json_response(
            200,
            {
                "sessions": [
                    handle.describe() for handle in self.manager.sessions()
                ]
            },
        )

    def _events(
        self, handle: SessionHandle, params: dict[str, str]
    ) -> Response:
        after = int(params.get("after", "-1"))
        wait = min(
            max(0.0, float(params.get("wait", "0"))), MAX_POLL_WAIT_SECONDS
        )
        records, terminal = handle.log.events_after(after, wait_seconds=wait)
        lines = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        return Response(
            200,
            body=lines.encode("utf-8"),
            content_type=JSONL_TYPE,
            headers={"X-Repro-Terminal": "1" if terminal else "0"},
        )

    def _stream(self, handle: SessionHandle) -> Response:
        def chunks() -> Iterator[bytes]:
            for record in handle.log.follow():
                yield (json.dumps(record, sort_keys=True) + "\n").encode(
                    "utf-8"
                )

        return Response(200, content_type=JSONL_TYPE, stream=chunks())

    def _mpans(self, handle: SessionHandle) -> Response:
        payload = handle.result_payload()
        return _json_response(
            200,
            {
                "session_id": handle.session_id,
                "state": payload["state"],
                "non_answers": payload.get("non_answers", []),
            },
        )

    def _mutate(self, body: bytes) -> Response:
        document = _parse_json_object(body)
        relation = document.get("relation")
        if not isinstance(relation, str):
            return _error(400, "body must carry a 'relation' string")
        inserts = document.get("inserts", [])
        deletes = document.get("deletes", [])
        if not isinstance(inserts, list) or not all(
            isinstance(row, list) for row in inserts
        ):
            return _error(400, "'inserts' must be a list of rows")
        if not isinstance(deletes, list) or not all(
            isinstance(row_id, int) and not isinstance(row_id, bool)
            for row_id in deletes
        ):
            return _error(400, "'deletes' must be a list of row ids")
        summary = self.manager.mutate(
            relation, inserts=inserts, deletes=deletes
        )
        return _json_response(200, summary)


def _parse_json_object(body: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object (400-mapped on failure)."""
    try:
        document = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"request body is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ValueError("request body must be a JSON object")
    return document
