"""Static plan checks: join trees, the lattice, and candidate networks.

Every invariant the pipeline documents in docstrings is verified here
*statically* -- no data is loaded and no query runs.  The linter
deliberately avoids trusting :class:`~repro.relational.jointree.JoinTree`'s
constructor validation: hot paths build trees through the ``_unchecked``
fast path, so connectivity and edge membership are recomputed from the raw
instance/edge sets.

Codes emitted here: ``PLAN001`` dangling-join-edge, ``PLAN002``
disconnected-tree, ``PLAN003`` type-mismatched-join, ``PLAN004``
duplicate-slot, ``PLAN005`` unbound-keyword-slot, ``PLAN006``
non-minimal-network, ``PLAN007`` broken-lattice-link.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.core.binding import KeywordBinding
from repro.core.lattice import Lattice
from repro.kws.candidate_networks import network_violations
from repro.relational.jointree import JoinEdge, JoinTree, RelationInstance
from repro.relational.schema import AttributeType, SchemaError, SchemaGraph


def _tree_location(tree: JoinTree, context: str | None = None) -> str:
    described = " ⋈ ".join(str(instance) for instance in sorted(tree.instances))
    return f"{context} ({described})" if context else described


def _edge_diagnostics(
    tree: JoinTree, schema: SchemaGraph, location: str
) -> list[Diagnostic]:
    """PLAN001 + PLAN003 for every edge of ``tree``."""
    found: list[Diagnostic] = []
    for edge in sorted(tree.edges, key=lambda e: (e.a, e.a_column, e.b, e.b_column)):
        for endpoint in (edge.a, edge.b):
            if endpoint not in tree.instances:
                found.append(
                    Diagnostic(
                        "PLAN001",
                        f"edge {edge} touches {endpoint}, which is not an "
                        f"instance of the tree",
                        location,
                        hint="rebuild the tree so every edge endpoint is a member instance",
                    )
                )
        try:
            fk = schema.foreign_key(edge.fk)
        except SchemaError:
            found.append(
                Diagnostic(
                    "PLAN001",
                    f"edge {edge} references foreign key {edge.fk!r}, which "
                    f"the schema does not declare",
                    location,
                    hint="declare the foreign key on the SchemaGraph or drop the edge",
                )
            )
            continue
        forward = (edge.a.relation, edge.a_column, edge.b.relation, edge.b_column)
        backward = (edge.b.relation, edge.b_column, edge.a.relation, edge.a_column)
        declared = (fk.child, fk.child_column, fk.parent, fk.parent_column)
        if declared not in (forward, backward):
            found.append(
                Diagnostic(
                    "PLAN001",
                    f"edge {edge} instantiates {edge.fk!r} as "
                    f"{forward[0]}.{forward[1]} = {forward[2]}.{forward[3]}, "
                    f"but the schema declares "
                    f"{declared[0]}.{declared[1]} -> {declared[2]}.{declared[3]}",
                    location,
                    hint="regenerate the edge with JoinEdge.from_fk",
                )
            )
            continue
        found.extend(_join_type_diagnostics(edge, schema, location))
    return found


def _join_type_diagnostics(
    edge: JoinEdge, schema: SchemaGraph, location: str
) -> list[Diagnostic]:
    try:
        a_attr = schema.relation(edge.a.relation).attribute(edge.a_column)
        b_attr = schema.relation(edge.b.relation).attribute(edge.b_column)
    except SchemaError as exc:
        return [
            Diagnostic(
                "PLAN001",
                f"edge {edge} joins a column the schema does not declare: {exc}",
                location,
                hint="fix the join columns to match the schema",
            )
        ]
    found = []
    if a_attr.type is not b_attr.type:
        found.append(
            Diagnostic(
                "PLAN003",
                f"edge {edge} equates {edge.a.relation}.{edge.a_column} "
                f"({a_attr.type.value}) with {edge.b.relation}.{edge.b_column} "
                f"({b_attr.type.value})",
                location,
                hint="join on key columns of identical declared type",
            )
        )
    for relation, attribute in ((edge.a.relation, a_attr), (edge.b.relation, b_attr)):
        if attribute.type is AttributeType.TEXT and attribute.searchable:
            found.append(
                Diagnostic(
                    "PLAN003",
                    f"edge {edge} joins on searchable text column "
                    f"{relation}.{attribute.name}",
                    location,
                    hint="searchable columns carry keywords, not join keys",
                )
            )
    return found


def _shape_diagnostics(tree: JoinTree, location: str) -> list[Diagnostic]:
    """PLAN002: connectivity/acyclicity recomputed from the raw sets."""
    instances = tree.instances
    if not instances:
        return [
            Diagnostic(
                "PLAN002",
                "tree has no instances",
                location,
                hint="a join tree needs at least one relation instance",
            )
        ]
    usable_edges = [
        edge
        for edge in tree.edges
        if edge.a in instances and edge.b in instances
    ]
    found: list[Diagnostic] = []
    if len(tree.edges) != len(instances) - 1:
        found.append(
            Diagnostic(
                "PLAN002",
                f"{len(instances)} instances but {len(tree.edges)} edges; a "
                f"tree needs exactly {len(instances) - 1}",
                location,
                hint="a lattice node must be a spanning tree of its instances",
            )
        )
    adjacency: dict[RelationInstance, list[RelationInstance]] = {
        instance: [] for instance in instances
    }
    for edge in usable_edges:
        adjacency[edge.a].append(edge.b)
        adjacency[edge.b].append(edge.a)
    start = next(iter(sorted(instances)))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency[current]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    if len(seen) != len(instances):
        unreachable = ", ".join(str(i) for i in sorted(instances - seen))
        found.append(
            Diagnostic(
                "PLAN002",
                f"instances not reachable from {start}: {unreachable}",
                location,
                hint="every instance must be connected through join edges",
            )
        )
    return found


def _slot_diagnostics(
    tree: JoinTree,
    location: str,
    max_keywords: int | None,
    distinct_slots: bool,
) -> list[Diagnostic]:
    """PLAN004 (duplicate slots) and PLAN005 (slots beyond the keyword budget)."""
    found: list[Diagnostic] = []
    by_slot: dict[int, list[RelationInstance]] = {}
    for instance in sorted(tree.instances):
        if instance.is_free:
            continue
        by_slot.setdefault(instance.copy, []).append(instance)
        if max_keywords is not None and instance.copy > max_keywords:
            found.append(
                Diagnostic(
                    "PLAN005",
                    f"{instance} occupies keyword slot {instance.copy}, but "
                    f"only {max_keywords} keyword(s) can ever bind",
                    location,
                    hint="regenerate with a larger max_keywords or drop the node",
                )
            )
    if distinct_slots:
        for slot, holders in sorted(by_slot.items()):
            if len(holders) > 1:
                described = ", ".join(str(instance) for instance in holders)
                found.append(
                    Diagnostic(
                        "PLAN004",
                        f"keyword slot {slot} is occupied by {len(holders)} "
                        f"instances: {described}",
                        location,
                        hint="with distinct_slots each keyword binds exactly one instance",
                    )
                )
    return found


def lint_tree(
    tree: JoinTree,
    schema: SchemaGraph,
    max_keywords: int | None = None,
    distinct_slots: bool = False,
    location: str | None = None,
) -> list[Diagnostic]:
    """All structural diagnostics for one join tree."""
    where = _tree_location(tree, location)
    found = _shape_diagnostics(tree, where)
    found.extend(_edge_diagnostics(tree, schema, where))
    found.extend(_slot_diagnostics(tree, where, max_keywords, distinct_slots))
    return found


def lint_lattice(lattice: Lattice) -> DiagnosticReport:
    """Verify every lattice node and the parent/child adjacency."""
    report = DiagnosticReport()
    max_keywords = lattice.max_keywords
    distinct = lattice.distinct_slots
    node_count = len(lattice.nodes)
    for node in lattice.iter_nodes():
        location = f"lattice node {node.node_id}"
        report.extend(
            lint_tree(
                node.tree,
                lattice.schema,
                max_keywords=max_keywords,
                distinct_slots=distinct,
                location=location,
            )
        )
        if node.level != node.tree.size:
            report.add(
                Diagnostic(
                    "PLAN007",
                    f"node is stored at level {node.level} but its tree has "
                    f"{node.tree.size} instance(s)",
                    _tree_location(node.tree, location),
                    hint="level must equal the number of relation instances",
                )
            )
        for label, linked_ids, delta in (
            ("parent", node.parents, 1),
            ("child", node.children, -1),
        ):
            for linked_id in linked_ids:
                if not 0 <= linked_id < node_count:
                    report.add(
                        Diagnostic(
                            "PLAN007",
                            f"{label} id {linked_id} is out of range",
                            location,
                        )
                    )
                    continue
                linked = lattice.node(linked_id)
                if linked.level != node.level + delta:
                    report.add(
                        Diagnostic(
                            "PLAN007",
                            f"{label} {linked_id} is at level {linked.level}, "
                            f"expected {node.level + delta}",
                            location,
                        )
                    )
                mirror = linked.children if label == "parent" else linked.parents
                if node.node_id not in mirror:
                    report.add(
                        Diagnostic(
                            "PLAN007",
                            f"{label} link to {linked_id} is not mirrored back",
                            location,
                            hint="parents/children lists must stay symmetric",
                        )
                    )
    return report


def lint_candidate_networks(
    networks: Iterable[JoinTree],
    binding: KeywordBinding,
    schema: SchemaGraph,
) -> DiagnosticReport:
    """Verify CN output from ``repro.kws`` against one interpretation."""
    report = DiagnosticReport()
    bound = binding.instances
    for index, tree in enumerate(networks):
        location = f"candidate network {index}"
        report.extend(
            lint_tree(tree, schema, distinct_slots=True, location=location)
        )
        where = _tree_location(tree, location)
        for problem in network_violations(tree, bound):
            if problem.startswith("free leaves"):
                report.add(
                    Diagnostic(
                        "PLAN006",
                        problem,
                        where,
                        hint="drop free leaves; they never contribute a keyword",
                    )
                )
            else:
                report.add(
                    Diagnostic(
                        "PLAN005",
                        problem,
                        where,
                        hint="every keyword binds exactly one slot of its relation",
                    )
                )
    return report
