"""Repo-wide AST lint: codebase invariants behind determinism and typing.

Three rules, all enforced with the stdlib ``ast`` module (no third-party
linter dependency):

``LINT001`` *nondeterministic-call* -- benchmarks must be deterministic and
resumable, so wall-clock reads (``time.time``, ``datetime.now``/``utcnow``)
and the process-global RNG (``random.random()``, ``random.choice()``, ...)
are banned outside ``repro.bench``.  Monotonic timers
(``time.perf_counter``) and explicitly seeded ``random.Random(seed)``
instances are always allowed -- they are how the rest of the codebase
measures time and generates data.

``LINT002`` *mutable-default-arg* -- a list/dict/set (literal or
constructor call) default is shared across calls; use ``None`` or a
dataclass ``field(default_factory=...)``.

``LINT003`` *missing-annotation* -- every public function or method in
the packages listed in :data:`ANNOTATION_REQUIRED` (core, relational,
parallel, backends, cache, obs) must annotate all parameters and its
return type, so the mypy-strict gate stays meaningful.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

#: Path prefixes (relative to the package root, ``/``-separated) exempt
#: from the determinism rule: the bench harness stamps wall-clock metadata.
NONDETERMINISM_EXEMPT: tuple[str, ...] = ("repro/bench/",)

#: Packages whose public functions must be fully type-annotated.
ANNOTATION_REQUIRED: tuple[str, ...] = (
    "repro/core/",
    "repro/relational/",
    "repro/parallel/",
    "repro/backends/",
    "repro/cache/",
    "repro/obs/",
    "repro/service/",
)

#: ``random`` module attributes that do NOT touch the global RNG.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


def _is_exempt(relative: str, prefixes: tuple[str, ...]) -> bool:
    return any(relative.startswith(prefix) for prefix in prefixes)


def _call_target(node: ast.Call) -> tuple[str, str] | None:
    """``(module, attribute)`` for ``module.attribute(...)`` calls."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
        inner = func.value
        if isinstance(inner.value, ast.Name):
            # datetime.datetime.now(...) -> ("datetime.datetime", "now")
            return f"{inner.value.id}.{inner.attr}", func.attr
    return None


def _nondeterministic_calls(
    module: ast.Module, relative: str
) -> list[Diagnostic]:
    found: list[Diagnostic] = []

    def flag(node: ast.AST, what: str, hint: str) -> None:
        found.append(
            Diagnostic(
                "LINT001",
                f"{what} is nondeterministic",
                f"{relative}:{getattr(node, 'lineno', 0)}",
                hint=hint,
            )
        )

    for node in ast.walk(module):
        if isinstance(node, ast.Call):
            target = _call_target(node)
            if target is None:
                continue
            value, attribute = target
            if value == "time" and attribute == "time":
                flag(node, "time.time()", "use time.perf_counter() for timing")
            elif value == "random" and attribute not in _RANDOM_ALLOWED:
                flag(
                    node,
                    f"random.{attribute}()",
                    "use a seeded random.Random(seed) instance",
                )
            elif value in ("datetime", "datetime.datetime") and attribute in (
                "now",
                "utcnow",
                "today",
            ):
                flag(
                    node,
                    f"{value}.{attribute}()",
                    "pass timestamps in explicitly",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "time" for alias in node.names
            ):
                flag(node, "from time import time", "import the module instead")
            elif node.module == "random" and any(
                alias.name not in _RANDOM_ALLOWED for alias in node.names
            ):
                flag(
                    node,
                    "from random import ...",
                    "import random and use random.Random(seed)",
                )
    return found


def _is_mutable_default(default: ast.expr) -> str | None:
    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
        return {"List": "list", "Dict": "dict", "Set": "set"}[
            type(default).__name__
        ]
    if (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in _MUTABLE_CONSTRUCTORS
    ):
        return default.func.id
    return None


def _mutable_defaults(module: ast.Module, relative: str) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    for node in ast.walk(module):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            kind = _is_mutable_default(default)
            if kind is not None:
                found.append(
                    Diagnostic(
                        "LINT002",
                        f"function {node.name!r} has a mutable {kind} default",
                        f"{relative}:{node.lineno}",
                        hint="default to None and create the value inside the function",
                    )
                )
    return found


def _missing_annotations(module: ast.Module, relative: str) -> list[Diagnostic]:
    """LINT003 over top-level functions and methods of top-level classes."""
    found: list[Diagnostic] = []

    def check(function: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if function.name.startswith("_"):
            return
        missing: list[str] = []
        arguments = function.args
        positional = arguments.posonlyargs + arguments.args
        for index, argument in enumerate(positional):
            if index == 0 and argument.arg in ("self", "cls"):
                continue
            if argument.annotation is None:
                missing.append(argument.arg)
        for argument in arguments.kwonlyargs:
            if argument.annotation is None:
                missing.append(argument.arg)
        if arguments.vararg is not None and arguments.vararg.annotation is None:
            missing.append(f"*{arguments.vararg.arg}")
        if arguments.kwarg is not None and arguments.kwarg.annotation is None:
            missing.append(f"**{arguments.kwarg.arg}")
        if function.returns is None:
            missing.append("return")
        if missing:
            found.append(
                Diagnostic(
                    "LINT003",
                    f"public function {function.name!r} is missing "
                    f"annotations for: {', '.join(missing)}",
                    f"{relative}:{function.lineno}",
                    hint="annotate every parameter and the return type",
                )
            )

    for node in module.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            check(node)
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    check(member)
    return found


def lint_source(source: str, relative: str) -> list[Diagnostic]:
    """All repo-lint diagnostics for one module's source text.

    ``relative`` is the ``/``-separated path of the module below ``src``
    (e.g. ``repro/core/lattice.py``); it selects which rules apply.
    """
    module = ast.parse(source, filename=relative)
    found: list[Diagnostic] = []
    if not _is_exempt(relative, NONDETERMINISM_EXEMPT):
        found.extend(_nondeterministic_calls(module, relative))
    found.extend(_mutable_defaults(module, relative))
    if _is_exempt(relative, ANNOTATION_REQUIRED):
        found.extend(_missing_annotations(module, relative))
    return found


def lint_repo(src_root: str | Path | None = None) -> DiagnosticReport:
    """Lint every Python module under ``src_root`` (default: this install)."""
    if src_root is None:
        # src/repro/analysis/repo_linter.py -> src
        src_root = Path(__file__).resolve().parent.parent.parent
    root = Path(src_root)
    report = DiagnosticReport()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if "egg-info" in relative or "__pycache__" in relative:
            continue
        report.extend(lint_source(path.read_text(encoding="utf-8"), relative))
    return report
