"""Static SQL checks: reserved-identifier scanning and prepare dry-runs.

``SQL001`` scans rendered statements for *bare* reserved words that are not
part of the fixed grammar the renderers emit (``SELECT``, ``FROM``, ...).
Because schema names route through
:func:`repro.relational.identifiers.quote_identifier`, a reserved relation
or column renders double-quoted; any bare reserved word outside the allowed
grammar therefore marks a rendering site that bypassed quoting.

``SQL002`` compiles every statement with sqlite's prepare step -- via
``EXPLAIN`` on a ``:memory:`` database holding the schema's DDL and *no
data* -- so a template that cannot execute verbatim is a build-time
diagnostic rather than a runtime failure.
"""

from __future__ import annotations

import re
import sqlite3
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.core.lattice import Lattice
from repro.relational.identifiers import RESERVED_WORDS
from repro.relational.sql import render_ddl
from repro.relational.schema import SchemaGraph

#: Reserved words the SQL renderers legitimately emit bare, as grammar.
GRAMMAR_KEYWORDS: frozenset[str] = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AS", "AND", "OR", "LIKE", "LIMIT",
        "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "NOT", "NULL",
        "IS", "EXPLAIN",
    }
)

_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
_QUOTED_IDENTIFIER = re.compile(r'"(?:[^"]|"")*"')
_BARE_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _token_match_stub(keyword: object, text: object) -> int:
    """Prepare-time stand-in for the backend's TOKEN_MATCH function."""
    return 0


def find_unquoted_reserved(sql: str) -> list[str]:
    """Bare reserved words in ``sql`` that are not grammar keywords.

    String literals and double-quoted identifiers are stripped first, so a
    properly quoted ``"order"`` never triggers and neither does a keyword
    inside a LIKE pattern.
    """
    stripped = _STRING_LITERAL.sub(" ", sql)
    stripped = _QUOTED_IDENTIFIER.sub(" ", stripped)
    offenders = []
    for word in _BARE_WORD.findall(stripped):
        upper = word.upper()
        if upper in RESERVED_WORDS and upper not in GRAMMAR_KEYWORDS:
            offenders.append(word)
    return offenders


class SqlDryRunner:
    """Prepare-only SQL validation against a schema with no data loaded."""

    def __init__(self, schema: SchemaGraph):
        self.schema = schema
        self.connection = sqlite3.connect(":memory:")
        # The predicates call TOKEN_MATCH/SUBSTRING_MATCH; sqlite resolves
        # functions at prepare time, so register stubs for the dry run.
        self.connection.create_function("TOKEN_MATCH", 2, _token_match_stub)
        self.connection.create_function("SUBSTRING_MATCH", 2, _token_match_stub)
        for statement in render_ddl(schema):
            self.connection.execute(statement)

    def prepare_error(self, sql: str) -> str | None:
        """The sqlite compile error for ``sql``, or ``None`` if it prepares."""
        try:
            # EXPLAIN compiles the statement to bytecode without running it
            # against any rows -- the closest sqlite3 offers to a bare
            # prepare() -- and is cheap on an empty database.
            self.connection.execute(f"EXPLAIN {sql}")
        except sqlite3.Error as exc:
            return str(exc)
        return None

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqlDryRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def lint_statements(
    statements: Iterable[tuple[str, str]], schema: SchemaGraph
) -> DiagnosticReport:
    """Run SQL001 + SQL002 over ``(location, sql)`` pairs."""
    report = DiagnosticReport()
    with SqlDryRunner(schema) as runner:
        for location, sql in statements:
            for offender in find_unquoted_reserved(sql):
                report.add(
                    Diagnostic(
                        "SQL001",
                        f"reserved word {offender!r} appears as a bare "
                        f"identifier",
                        location,
                        hint="route identifiers through quote_identifier()",
                    )
                )
            error = runner.prepare_error(sql)
            if error is not None:
                report.add(
                    Diagnostic(
                        "SQL002",
                        f"sqlite cannot prepare the statement: {error}",
                        location,
                        hint=f"generated SQL was: {sql}",
                    )
                )
    return report


def lint_ddl(schema: SchemaGraph) -> DiagnosticReport:
    """Verify the schema's CREATE TABLE statements on a fresh database."""
    report = DiagnosticReport()
    connection = sqlite3.connect(":memory:")
    try:
        for index, statement in enumerate(render_ddl(schema)):
            location = f"ddl statement {index}"
            for offender in find_unquoted_reserved(statement):
                report.add(
                    Diagnostic(
                        "SQL001",
                        f"reserved word {offender!r} appears as a bare "
                        f"identifier",
                        location,
                        hint="route identifiers through quote_identifier()",
                    )
                )
            try:
                connection.execute(statement)
            except sqlite3.Error as exc:
                report.add(
                    Diagnostic(
                        "SQL002",
                        f"sqlite rejects the DDL: {exc}",
                        location,
                        hint=f"generated SQL was: {statement}",
                    )
                )
    finally:
        connection.close()
    return report


def lint_lattice_templates(lattice: Lattice) -> DiagnosticReport:
    """Dry-run every lattice node's SQL template through sqlite's prepare.

    ``?kw`` placeholders live inside string literals, so templates are
    complete statements; each must compile verbatim (acceptance criterion
    for the sqlite cross-check backend).
    """

    def statements() -> Iterable[tuple[str, str]]:
        for node, template in lattice.iter_templates():
            yield f"template of lattice node {node.node_id}", template

    return lint_statements(statements(), lattice.schema)
