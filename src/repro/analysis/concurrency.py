"""Static lock-discipline lint (``CONC001``-``CONC004``).

The probe path is concurrent by design -- worker threads share the
evaluator's L1 LRU, the :class:`~repro.obs.budget.ProbeBudget`, the
:class:`~repro.obs.trace.ProbeTracer` ring, the
:class:`~repro.backends.pool.ConnectionPool`, and the persistent
:class:`~repro.cache.ProbeCache` -- so the lock discipline those classes
document must hold *everywhere*, not just on the paths the threaded
tests happen to exercise.  This pass enforces it with the stdlib ``ast``
module (same zero-dependency footing as :mod:`repro.analysis.repo_linter`):

**Thread-shared classes.**  A class counts as thread-shared when its body
constructs a ``threading`` synchronisation primitive (``Lock``, ``RLock``,
``Condition``, ``Semaphore``, ...), ``threading.local``, or a
``ThreadPoolExecutor`` -- including dataclass fields declared with
``field(default_factory=threading.Lock)``.  ``threading.Condition(self._x)``
marks both the condition attribute and the wrapped lock.

**Guarded attributes** of such a class are inferred: every attribute
*stored* inside a ``with self.<lock>:`` block or inside a ``*_locked``
method (outside ``__init__``/``__post_init__``) is guarded, plus any
attribute explicitly annotated ``# guarded-by: <lock>`` on (or directly
above) its initialisation line -- the escape hatch for attributes that
are only ever *mutated in place* (``self._in_use[k] = v``), which a
store-based inference cannot see.

Rules:

* ``CONC001`` -- a guarded attribute is read or written outside the lock
  (contexts that run before the object is shared -- ``__init__``,
  ``__post_init__`` -- or that are documentation-only -- ``__repr__``,
  ``__del__`` -- are exempt, as are ``*_locked`` methods, whose suffix is
  the contract that the caller holds the lock).
* ``CONC002`` -- a bare ``lock.acquire()`` not immediately followed by a
  ``try/finally`` that releases: an exception leaves the lock held.
* ``CONC003`` -- ``Condition.wait()`` outside a ``while`` predicate loop:
  spurious wakeups and stolen notifications then corrupt state.
* ``CONC004`` -- a ``*_locked`` method called without the lock held.
* ``CONC006`` -- a shard protocol message (any class subclassing the
  ``Message`` marker, transitively) is not a frozen dataclass, or one of
  its field annotations steps outside the transport-safe grammar:
  ``int``/``float``/``str``/``bool``/``bytes``/``None``,
  ``tuple[...]`` of transport-safe types, ``X | None`` unions of those,
  and other message classes.  Anything richer (dicts, lists, sets, live
  objects) pickles by reference semantics or not at all, and would also
  defeat the restricted unpickler on the socket framing path -- the
  static twin of :func:`repro.parallel.protocol.validate_payload`.

The held-lock tracking is intentionally coarse -- *some* lock of the
class is held, not *which* -- because every thread-shared class in this
codebase has exactly one lock (possibly wrapped in one condition).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

#: ``threading`` constructors that are acquirable locks.
_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
#: Methods that run before the object escapes to other threads, or that
#: are debugging aids; CONC001/CONC004 do not apply inside them.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__", "__repr__"})

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
_SELF_ATTR_RE = re.compile(r"self\.(\w+)\s*[:=\[]")


@dataclass
class _ClassModel:
    """What the first pass learns about one class."""

    name: str
    node: ast.ClassDef
    thread_shared: bool = False
    #: Acquirable lock attributes (``with self.<attr>:`` counts as held).
    lock_attrs: set[str] = field(default_factory=set)
    #: The subset of ``lock_attrs`` that are ``threading.Condition``s.
    condition_attrs: set[str] = field(default_factory=set)
    guarded_attrs: set[str] = field(default_factory=set)


def _threading_attr(call: ast.Call) -> str | None:
    """``X`` for ``threading.X(...)`` calls, else None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    ):
        return func.attr
    return None


def _is_self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _field_default_factory(call: ast.Call) -> str | None:
    """``X`` for ``field(default_factory=threading.X)`` calls, else None."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "field"):
        return None
    for keyword in call.keywords:
        if keyword.arg != "default_factory":
            continue
        value = keyword.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "threading"
        ):
            return value.attr
    return None


def _classify_primitives(model: _ClassModel) -> None:
    """Find lock/condition attributes and decide thread-sharedness."""
    for node in ast.walk(model.node):
        if not isinstance(node, ast.Call):
            continue
        ctor = _threading_attr(node)
        factory = _field_default_factory(node)
        if ctor in _LOCK_CONSTRUCTORS or ctor == "local" or factory:
            model.thread_shared = True
        if isinstance(node.func, ast.Name) and node.func.id == "ThreadPoolExecutor":
            model.thread_shared = True
    # Attribute-level classification needs the assignment targets.
    for item in model.node.body:
        # Dataclass field: ``_lock: ... = field(default_factory=threading.Lock)``
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and isinstance(item.value, ast.Call)
        ):
            factory = _field_default_factory(item.value)
            if factory in _LOCK_CONSTRUCTORS:
                model.lock_attrs.add(item.target.id)
                if factory == "Condition":
                    model.condition_attrs.add(item.target.id)
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(item):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            ctor = _threading_attr(value)
            if ctor not in _LOCK_CONSTRUCTORS:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _is_self_attr(target)
                if attr is None:
                    continue
                model.lock_attrs.add(attr)
                if ctor == "Condition":
                    model.condition_attrs.add(attr)
                    # Condition(self._x) wraps (and acquires) that lock.
                    for argument in value.args:
                        wrapped = _is_self_attr(argument)
                        if wrapped is not None:
                            model.lock_attrs.add(wrapped)


def _with_takes_lock(stmt: ast.With, lockish: set[str]) -> bool:
    for item in stmt.items:
        attr = _is_self_attr(item.context_expr)
        if attr is not None and attr in lockish:
            return True
    return False


def _walk_held(
    node: ast.AST, held: bool, lockish: set[str], visit: "_Visitor"
) -> None:
    """Generic traversal threading a *lock currently held* flag."""
    if isinstance(node, ast.With) and _with_takes_lock(node, lockish):
        for item in node.items:
            _walk_held(item, held, lockish, visit)
        for stmt in node.body:
            _walk_held(stmt, True, lockish, visit)
        return
    visit(node, held)
    for child in ast.iter_child_nodes(node):
        _walk_held(child, held, lockish, visit)


class _Visitor:
    def __call__(self, node: ast.AST, held: bool) -> None:  # pragma: no cover
        raise NotImplementedError


def _infer_guarded(model: _ClassModel) -> None:
    """Stores under the lock (or in ``*_locked`` methods) are guarded."""
    lockish = model.lock_attrs

    class Collect(_Visitor):
        def __call__(self, node: ast.AST, held: bool) -> None:
            if not held:
                return
            attr = _is_self_attr(node)
            if (
                attr is not None
                and isinstance(node, ast.Attribute)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and attr not in lockish
            ):
                model.guarded_attrs.add(attr)

    collect = Collect()
    for item in model.node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in ("__init__", "__post_init__"):
            continue
        initially_held = item.name.endswith("_locked")
        for stmt in item.body:
            _walk_held(stmt, initially_held, lockish, collect)


def _annotated_guarded(model: _ClassModel, lines: list[str]) -> None:
    """Collect ``# guarded-by: <lock>`` annotations in the class range.

    The annotated attribute is taken from the same line (inline comment)
    or, failing that, from the line directly below (comment-above idiom).
    """
    end = model.node.end_lineno or model.node.lineno
    for lineno in range(model.node.lineno, end + 1):
        line = lines[lineno - 1]
        if not _GUARDED_BY_RE.search(line):
            continue
        for candidate in (line, lines[lineno] if lineno < len(lines) else ""):
            match = _SELF_ATTR_RE.search(candidate)
            if match is None:
                # Dataclass field annotated at class level: ``x: T = ...``.
                match = re.match(r"\s*(\w+)\s*:", candidate)
            if match is not None:
                attr = match.group(1)
                if attr not in model.lock_attrs:
                    model.guarded_attrs.add(attr)
                break


def _check_class(
    model: _ClassModel, relative: str, found: list[Diagnostic]
) -> None:
    lockish = model.lock_attrs

    def check_method(method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        exempt = method.name in _EXEMPT_METHODS
        initially_held = method.name.endswith("_locked")

        class Check(_Visitor):
            def __call__(self, node: ast.AST, held: bool) -> None:
                if held or exempt:
                    return
                if isinstance(node, ast.Attribute):
                    attr = _is_self_attr(node)
                    if attr in model.guarded_attrs:
                        found.append(
                            Diagnostic(
                                "CONC001",
                                f"attribute {attr!r} of thread-shared class "
                                f"{model.name!r} is accessed outside its lock "
                                f"(in {method.name!r})",
                                f"{relative}:{node.lineno}",
                                hint="wrap the access in 'with self."
                                + (sorted(lockish)[0] if lockish else "_lock")
                                + ":' or move it into a *_locked helper",
                            )
                        )
                if isinstance(node, ast.Call):
                    callee = node.func
                    attr = _is_self_attr(callee)
                    if attr is not None and attr.endswith("_locked"):
                        found.append(
                            Diagnostic(
                                "CONC004",
                                f"method {attr!r} called without the lock "
                                f"held (in {method.name!r} of {model.name!r})",
                                f"{relative}:{node.lineno}",
                                hint="the *_locked suffix is a contract that "
                                "the caller already holds the lock",
                            )
                        )

        for stmt in method.body:
            _walk_held(stmt, initially_held, lockish, Check())

    for item in model.node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            check_method(item)


def _check_wait_in_loop(
    cls: ast.ClassDef,
    condition_attrs: set[str],
    relative: str,
    found: list[Diagnostic],
) -> None:
    """CONC003: ``self.<condition>.wait()`` needs an enclosing ``while``."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(cls):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "wait":
            continue
        receiver = _is_self_attr(node.func.value)
        if receiver is None or receiver not in condition_attrs:
            continue
        ancestor = parents.get(node)
        in_while = False
        while ancestor is not None:
            if isinstance(ancestor, ast.While):
                in_while = True
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            ancestor = parents.get(ancestor)
        if not in_while:
            found.append(
                Diagnostic(
                    "CONC003",
                    f"Condition {receiver!r}.wait() is not inside a "
                    f"predicate re-check loop",
                    f"{relative}:{node.lineno}",
                    hint="call wait() inside 'while not predicate:' "
                    "(or use wait_for)",
                )
            )


def _check_bare_acquires(
    module: ast.Module, relative: str, found: list[Diagnostic]
) -> None:
    """CONC002: ``x.acquire()`` must be followed by try/finally release."""

    def releases(statements: list[ast.stmt]) -> bool:
        for stmt in statements:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                ):
                    return True
        return False

    def is_acquire(stmt: ast.stmt) -> ast.Call | None:
        value = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
        ):
            return value
        return None

    for node in ast.walk(module):
        for fieldname in ("body", "orelse", "finalbody"):
            body = getattr(node, fieldname, None)
            if not isinstance(body, list):
                continue
            for index, stmt in enumerate(body):
                call = is_acquire(stmt)
                if call is None:
                    continue
                following = body[index + 1] if index + 1 < len(body) else None
                if isinstance(following, ast.Try) and releases(
                    following.finalbody
                ):
                    continue
                found.append(
                    Diagnostic(
                        "CONC002",
                        "bare acquire() without a try/finally release",
                        f"{relative}:{call.lineno}",
                        hint="prefer 'with lock:'; else follow acquire() "
                        "immediately with try/finally release()",
                    )
                )


#: Annotation names a protocol message field may use directly.
_TRANSPORT_SCALARS = frozenset({"int", "float", "str", "bool", "bytes", "None"})


def _base_name(base: ast.expr) -> str | None:
    """The referenced class name for a base expression, if recoverable."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _message_classes(module: ast.Module) -> list[ast.ClassDef]:
    """Classes transitively subclassing the ``Message`` marker.

    The marker itself (a class *named* ``Message``) is excluded -- it is
    the contract, not a message.
    """
    classes = [item for item in module.body if isinstance(item, ast.ClassDef)]
    message_names = {"Message"}
    grew = True
    while grew:
        grew = False
        for cls in classes:
            if cls.name in message_names:
                continue
            if any(_base_name(base) in message_names for base in cls.bases):
                message_names.add(cls.name)
                grew = True
    return [
        cls for cls in classes if cls.name in message_names and cls.name != "Message"
    ]


def _frozen_dataclass_decorator(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = _base_name(decorator.func)
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _transport_safe_annotation(
    annotation: ast.expr, message_names: set[str]
) -> bool:
    """True when ``annotation`` stays inside the transport-safe grammar."""
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return True
    name = _base_name(annotation)
    if name is not None and not isinstance(annotation, ast.Subscript):
        return name in _TRANSPORT_SCALARS or name in message_names
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _transport_safe_annotation(
            annotation.left, message_names
        ) and _transport_safe_annotation(annotation.right, message_names)
    if isinstance(annotation, ast.Subscript):
        head = _base_name(annotation.value)
        if head not in ("tuple", "Tuple"):
            return False
        inner = annotation.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is Ellipsis:
                continue
            if not _transport_safe_annotation(element, message_names):
                return False
        return True
    return False


def _check_protocol_messages(
    module: ast.Module, relative: str, found: list[Diagnostic]
) -> None:
    """CONC006: Message subclasses must be frozen, transport-safe dataclasses."""
    messages = _message_classes(module)
    message_names = {cls.name for cls in messages}
    for cls in messages:
        if not _frozen_dataclass_decorator(cls):
            found.append(
                Diagnostic(
                    "CONC006",
                    f"protocol message {cls.name!r} is not declared "
                    "'@dataclass(frozen=True)'",
                    f"{relative}:{cls.lineno}",
                    hint="messages cross process boundaries by value; "
                    "freeze them so equality and hashing follow the fields",
                )
            )
        for item in cls.body:
            if not (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            ):
                continue
            if (
                isinstance(item.annotation, ast.Subscript)
                and _base_name(item.annotation.value) == "ClassVar"
            ):
                continue  # not a field; never pickled
            if not _transport_safe_annotation(item.annotation, message_names):
                rendered = ast.unparse(item.annotation)
                found.append(
                    Diagnostic(
                        "CONC006",
                        f"field {item.target.id!r} of protocol message "
                        f"{cls.name!r} has non-transport-safe annotation "
                        f"{rendered!r}",
                        f"{relative}:{item.lineno}",
                        hint="allowed: int/float/str/bool/bytes/None, "
                        "tuple[...] of those, other Message dataclasses, "
                        "and '| None' unions; ship richer state as masks, "
                        "counters, or JSON strings",
                    )
                )


def lint_concurrency_source(source: str, relative: str) -> list[Diagnostic]:
    """All ``CONC00x`` (static) diagnostics for one module's source text."""
    module = ast.parse(source, filename=relative)
    lines = source.splitlines()
    found: list[Diagnostic] = []
    _check_bare_acquires(module, relative, found)
    _check_protocol_messages(module, relative, found)
    for item in module.body:
        if not isinstance(item, ast.ClassDef):
            continue
        model = _ClassModel(item.name, item)
        _classify_primitives(model)
        if not model.thread_shared:
            continue
        _infer_guarded(model)
        _annotated_guarded(model, lines)
        _check_class(model, relative, found)
        _check_wait_in_loop(item, model.condition_attrs, relative, found)
    found.sort(key=lambda diagnostic: diagnostic.location)
    return found
