"""Inline ``# repro: noqa CODE`` suppressions for the file-level linters.

A finding can be silenced at its source line with a comment naming the
exact code(s) -- ``# repro: noqa <CODE>[, <CODE>...]`` with real codes in
place of the placeholders (spelled with placeholders here so this very
docstring is not parsed as a suppression).

Blanket suppressions are deliberately impossible: the code list is
mandatory, and a suppression that silences nothing is itself reported as
``LINT004`` (warning severity) so stale escapes cannot accumulate.  The
unused-check is scoped to the *selected* code families -- a ``CONC001``
suppression is not "unused" during a ``--select RES`` run where the
concurrency pass never executed.
"""

from __future__ import annotations

import re

from repro.analysis.diagnostics import (
    CODE_REGISTRY,
    Diagnostic,
    Severity,
    code_family,
)

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\s+([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """``{lineno: {codes}}`` for every noqa comment in ``source`` (1-based)."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        suppressions[lineno] = codes
    return suppressions


def _location_line(location: str) -> int | None:
    """The line number of a ``path:line`` location, or None."""
    _, _, tail = location.rpartition(":")
    return int(tail) if tail.isdigit() else None


def apply_suppressions(
    diagnostics: list[Diagnostic],
    source: str,
    relative: str,
    selected_families: tuple[str, ...],
) -> list[Diagnostic]:
    """Drop suppressed findings; flag stale suppressions as ``LINT004``.

    Returns the surviving diagnostics (order preserved) with one
    warning-severity ``LINT004`` appended per suppression code that
    matched nothing, restricted to codes whose family actually ran
    (``selected_families``).
    """
    suppressions = parse_suppressions(source)
    if not suppressions:
        return diagnostics
    used: dict[int, set[str]] = {lineno: set() for lineno in suppressions}
    kept: list[Diagnostic] = []
    for diagnostic in diagnostics:
        lineno = _location_line(diagnostic.location)
        if lineno in suppressions and diagnostic.code in suppressions[lineno]:
            used[lineno].add(diagnostic.code)
            continue
        kept.append(diagnostic)
    for lineno in sorted(suppressions):
        for code in sorted(suppressions[lineno] - used[lineno]):
            if code in CODE_REGISTRY and code_family(code) not in selected_families:
                continue  # that pass never ran; can't call it unused
            kept.append(
                Diagnostic(
                    "LINT004",
                    f"suppression of {code} matches no finding on this line",
                    f"{relative}:{lineno}",
                    severity=Severity.WARNING,
                    hint="delete the stale '# repro: noqa' comment",
                )
            )
    return kept
