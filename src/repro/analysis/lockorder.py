"""Dynamic lock-order detection (``CONC005``).

The static pass (:mod:`repro.analysis.concurrency`) checks each class's
discipline in isolation; what it cannot see is the *inter*-lock order --
the evaluator taking its L1 lock, then calling into the pool, which
takes the pool condition, while another code path nests the same two
locks the other way around.  Two locks acquired in both orders on
different threads is the classic deadlock recipe, and it only shows up
when real code paths run.

:class:`LockOrderMonitor` makes it observable without changing any
production code: :meth:`instrument` swaps a named ``threading.Lock`` /
``Condition`` attribute for a transparent proxy that records, per
thread, the stack of monitored locks held at each acquisition.  Every
acquisition of ``B`` while holding ``A`` adds the edge ``A -> B`` to a
process-wide acquisition graph; a cycle in that graph is a potential
deadlock, reported as a ``CONC005`` diagnostic by :meth:`report` (and as
an ``AssertionError`` by :meth:`assert_clean`, the form the threaded
test suites use).

``Condition.wait`` releases the underlying lock while blocking, so the
condition proxy pops the label around the wait and re-pushes it on
wakeup -- otherwise every waiter would appear to hold the lock across
the wait and the graph would report phantom orderings.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport


class _LockProxy:
    """Context-manager/acquire-release facade over one monitored lock."""

    def __init__(self, monitor: "LockOrderMonitor", lock: Any, label: str):
        self._monitor = monitor
        self._lock = lock
        self.label = label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # The proxy must mirror the raw acquire/release API; pairing is
        # the instrumented caller's responsibility, not the proxy's.
        acquired = self._lock.acquire(blocking, timeout)  # repro: noqa CONC002
        if acquired:
            self._monitor._note_acquire(self.label)
        return acquired

    def release(self) -> None:
        self._monitor._note_release(self.label)
        self._lock.release()

    def locked(self) -> bool:
        return bool(self._lock.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class _ConditionProxy(_LockProxy):
    """Monitored ``threading.Condition`` (wait temporarily drops the label)."""

    def wait(self, timeout: float | None = None) -> bool:
        self._monitor._note_release(self.label)
        try:
            return bool(self._lock.wait(timeout))
        finally:
            # The condition re-acquired its lock before returning; record
            # the re-acquisition against whatever the thread holds now.
            self._monitor._note_acquire(self.label)

    def wait_for(self, predicate: Any, timeout: float | None = None) -> Any:
        self._monitor._note_release(self.label)
        try:
            return self._lock.wait_for(predicate, timeout)
        finally:
            self._monitor._note_acquire(self.label)

    def notify(self, n: int = 1) -> None:
        self._lock.notify(n)

    def notify_all(self) -> None:
        self._lock.notify_all()


class LockOrderMonitor:
    """Records the cross-lock acquisition graph of monitored locks."""

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        self._held = threading.local()
        #: ``(outer, inner) -> count``: inner acquired while outer held.
        self._edges: dict[tuple[str, str], int] = {}
        #: ``label -> count`` of successful acquisitions.
        self._acquisitions: dict[str, int] = {}

    # ------------------------------------------------------------- wrapping
    def wrap_lock(self, lock: Any, label: str) -> _LockProxy:
        return _LockProxy(self, lock, label)

    def wrap_condition(self, condition: Any, label: str) -> _ConditionProxy:
        return _ConditionProxy(self, condition, label)

    def instrument(self, obj: Any, attr: str, label: str | None = None) -> Any:
        """Replace ``obj.<attr>`` with a monitored proxy; returns the proxy.

        The kind (lock vs condition) is sniffed from the presence of a
        ``wait`` method.  Instrumenting an already-instrumented attribute
        is refused -- double wrapping would double-count every edge.
        """
        target = getattr(obj, attr)
        if isinstance(target, _LockProxy):
            raise ValueError(f"{attr!r} is already instrumented")
        name = label if label is not None else f"{type(obj).__name__}.{attr}"
        if hasattr(target, "wait"):
            proxy: _LockProxy = self.wrap_condition(target, name)
        else:
            proxy = self.wrap_lock(target, name)
        setattr(obj, attr, proxy)
        return proxy

    # ------------------------------------------------------------ recording
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _note_acquire(self, label: str) -> None:
        stack = self._stack()
        with self._graph_lock:
            self._acquisitions[label] = self._acquisitions.get(label, 0) + 1
            for outer in stack:
                if outer != label:
                    edge = (outer, label)
                    self._edges[edge] = self._edges.get(edge, 0) + 1
        stack.append(label)

    def _note_release(self, label: str) -> None:
        stack = self._stack()
        # Remove the most recent occurrence (locks release LIFO, but a
        # condition wait may interleave with other monitored locks).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == label:
                del stack[index]
                break

    # ------------------------------------------------------------ reporting
    def edges(self) -> dict[tuple[str, str], int]:
        with self._graph_lock:
            return dict(self._edges)

    def acquisitions(self) -> dict[str, int]:
        with self._graph_lock:
            return dict(self._acquisitions)

    def inversions(self) -> list[tuple[str, str]]:
        """Lock pairs observed nested in both orders (2-cycles)."""
        edges = self.edges()
        found = []
        for outer, inner in edges:
            if outer < inner and (inner, outer) in edges:
                found.append((outer, inner))
        return sorted(found)

    def cycles(self) -> list[list[str]]:
        """Every elementary dependency cycle in the acquisition graph."""
        adjacency: dict[str, set[str]] = {}
        for outer, inner in self.edges():
            adjacency.setdefault(outer, set()).add(inner)

        found: list[list[str]] = []
        seen: set[tuple[str, ...]] = set()

        def walk(node: str, path: list[str], on_path: set[str]) -> None:
            for successor in sorted(adjacency.get(node, ())):
                if successor in on_path:
                    cycle = path[path.index(successor):]
                    # Canonical rotation dedupes A->B->A vs B->A->B.
                    pivot = cycle.index(min(cycle))
                    key = tuple(cycle[pivot:] + cycle[:pivot])
                    if key not in seen:
                        seen.add(key)
                        found.append(list(key))
                    continue
                walk(successor, path + [successor], on_path | {successor})

        for start in sorted(adjacency):
            walk(start, [start], {start})
        return found

    def report(self) -> DiagnosticReport:
        """``CONC005`` diagnostics, one per observed cycle."""
        report = DiagnosticReport()
        for cycle in self.cycles():
            chain = " -> ".join(cycle + [cycle[0]])
            report.add(
                Diagnostic(
                    "CONC005",
                    f"locks acquired in a cyclic order: {chain}",
                    f"lockorder:{cycle[0]}",
                    hint="impose one global acquisition order, or release "
                    "the first lock before taking the second",
                )
            )
        return report

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing any cycle (for test suites)."""
        report = self.report()
        if not report.ok:
            raise AssertionError(report.render())

    def held_now(self) -> Iterator[str]:
        """Labels this thread currently holds (debugging aid)."""
        return iter(tuple(self._stack()))
