"""Orchestration for ``repro lint``: run every analysis layer in one call.

The runner is what the CLI and the pytest-collected check share.  A *plan*
run builds the configured dataset's lattice and verifies: lattice structure
(``PLAN*``), the schema DDL, and a sqlite prepare dry-run of **every**
rendered node template (``SQL*``).  A *repo* run applies the AST rules
(``LINT*``) to the source tree.  Results merge into one
:class:`~repro.analysis.diagnostics.DiagnosticReport`; a nonzero exit means
at least one error-severity finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.concurrency import lint_concurrency_source
from repro.analysis.diagnostics import (
    CODE_FAMILIES,
    DiagnosticReport,
    code_family,
)
from repro.analysis.plan_linter import lint_lattice
from repro.analysis.repo_linter import lint_source
from repro.analysis.resources import lint_resources_source
from repro.analysis.sql_linter import lint_ddl, lint_lattice_templates
from repro.analysis.suppressions import apply_suppressions
from repro.core.lattice import Lattice, generate_lattice
from repro.relational.schema import SchemaGraph

#: Families applied per source file by :func:`lint_files`.
FILE_FAMILIES: tuple[str, ...] = ("LINT", "CONC", "RES")
#: Families produced by the plan/SQL layer of :func:`run_lint`.
PLAN_FAMILIES: tuple[str, ...] = ("PLAN", "SQL")


def normalize_select(select: str | tuple[str, ...] | None) -> tuple[str, ...]:
    """Validate a ``--select`` value into a family tuple (None = all)."""
    if select is None:
        return CODE_FAMILIES
    if isinstance(select, str):
        parts = tuple(part.strip().upper() for part in select.split(",") if part.strip())
    else:
        parts = tuple(part.upper() for part in select)
    if not parts:
        return CODE_FAMILIES
    unknown = [part for part in parts if part not in CODE_FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown code families {unknown!r}; "
            f"choose from {', '.join(CODE_FAMILIES)}"
        )
    return parts


@dataclass(frozen=True)
class LintOptions:
    """What ``repro lint`` should cover."""

    dataset: str = "products"
    level: int = 3
    check_plan: bool = True
    check_repo: bool = True
    src_root: str | None = None
    #: Code families to run/report (``None`` = all registered families).
    select: tuple[str, ...] | None = None


def dataset_schema(name: str) -> SchemaGraph:
    """The schema graph of a built-in dataset (no data generated)."""
    if name == "products":
        from repro.datasets.products import product_schema

        return product_schema()
    if name == "dblife":
        from repro.datasets.dblife import dblife_schema

        return dblife_schema()
    raise ValueError(f"unknown dataset {name!r}")


def lint_schema_lattice(
    schema: SchemaGraph, max_joins: int, distinct_slots: bool = True
) -> DiagnosticReport:
    """Plan + SQL lint for a freshly generated lattice over ``schema``."""
    lattice = generate_lattice(schema, max_joins, distinct_slots=distinct_slots)
    return lint_built_lattice(lattice)


def lint_built_lattice(lattice: Lattice) -> DiagnosticReport:
    """Plan + SQL lint for an already-built lattice."""
    report = lint_lattice(lattice)
    report.merge(lint_ddl(lattice.schema))
    report.merge(lint_lattice_templates(lattice))
    return report


def lint_files(
    src_root: str | Path | None = None,
    select: str | tuple[str, ...] | None = None,
) -> DiagnosticReport:
    """Run the per-file passes (LINT/CONC/RES) over every module.

    One source read feeds every selected pass, then the file's
    ``# repro: noqa`` suppressions are applied (stale ones surface as
    ``LINT004`` warnings, scoped to the families that actually ran).
    """
    families = normalize_select(select)
    if src_root is None:
        # src/repro/analysis/runner.py -> src
        src_root = Path(__file__).resolve().parent.parent.parent
    root = Path(src_root)
    report = DiagnosticReport()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if "egg-info" in relative or "__pycache__" in relative:
            continue
        source = path.read_text(encoding="utf-8")
        found = []
        if "LINT" in families:
            found.extend(lint_source(source, relative))
        if "CONC" in families:
            found.extend(lint_concurrency_source(source, relative))
        if "RES" in families:
            found.extend(lint_resources_source(source, relative))
        report.extend(apply_suppressions(found, source, relative, families))
    return report


def run_lint(options: LintOptions | None = None) -> DiagnosticReport:
    """Execute the configured lint layers and merge their findings."""
    options = options or LintOptions()
    families = normalize_select(options.select)
    report = DiagnosticReport()
    if options.check_repo and any(f in families for f in FILE_FAMILIES):
        report.merge(lint_files(options.src_root, families))
    if options.check_plan and any(f in families for f in PLAN_FAMILIES):
        schema = dataset_schema(options.dataset)
        plan_report = lint_schema_lattice(schema, max_joins=options.level - 1)
        # The plan layer emits PLAN and SQL together; honor the selection.
        report.extend(
            diagnostic
            for diagnostic in plan_report
            if code_family(diagnostic.code) in families
        )
    return report
