"""Orchestration for ``repro lint``: run every analysis layer in one call.

The runner is what the CLI and the pytest-collected check share.  A *plan*
run builds the configured dataset's lattice and verifies: lattice structure
(``PLAN*``), the schema DDL, and a sqlite prepare dry-run of **every**
rendered node template (``SQL*``).  A *repo* run applies the AST rules
(``LINT*``) to the source tree.  Results merge into one
:class:`~repro.analysis.diagnostics.DiagnosticReport`; a nonzero exit means
at least one error-severity finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.plan_linter import lint_lattice
from repro.analysis.repo_linter import lint_repo
from repro.analysis.sql_linter import lint_ddl, lint_lattice_templates
from repro.core.lattice import Lattice, generate_lattice
from repro.relational.schema import SchemaGraph


@dataclass(frozen=True)
class LintOptions:
    """What ``repro lint`` should cover."""

    dataset: str = "products"
    level: int = 3
    check_plan: bool = True
    check_repo: bool = True
    src_root: str | None = None


def dataset_schema(name: str) -> SchemaGraph:
    """The schema graph of a built-in dataset (no data generated)."""
    if name == "products":
        from repro.datasets.products import product_schema

        return product_schema()
    if name == "dblife":
        from repro.datasets.dblife import dblife_schema

        return dblife_schema()
    raise ValueError(f"unknown dataset {name!r}")


def lint_schema_lattice(
    schema: SchemaGraph, max_joins: int, distinct_slots: bool = True
) -> DiagnosticReport:
    """Plan + SQL lint for a freshly generated lattice over ``schema``."""
    lattice = generate_lattice(schema, max_joins, distinct_slots=distinct_slots)
    return lint_built_lattice(lattice)


def lint_built_lattice(lattice: Lattice) -> DiagnosticReport:
    """Plan + SQL lint for an already-built lattice."""
    report = lint_lattice(lattice)
    report.merge(lint_ddl(lattice.schema))
    report.merge(lint_lattice_templates(lattice))
    return report


def run_lint(options: LintOptions | None = None) -> DiagnosticReport:
    """Execute the configured lint layers and merge their findings."""
    options = options or LintOptions()
    report = DiagnosticReport()
    if options.check_repo:
        src_root = Path(options.src_root) if options.src_root else None
        report.merge(lint_repo(src_root))
    if options.check_plan:
        schema = dataset_schema(options.dataset)
        report.merge(lint_schema_lattice(schema, max_joins=options.level - 1))
    return report
