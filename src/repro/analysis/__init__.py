"""Static analysis for plans, SQL templates, and the codebase itself.

Two layers, one diagnostic vocabulary (see
:mod:`repro.analysis.diagnostics` for the full code registry):

* **Plan linter** (``PLAN*``/``SQL*``) -- verifies every documented
  structural invariant of join trees, the lattice, candidate-network
  output, and rendered SQL templates *statically*, including a sqlite
  prepare-only dry run of every template with no data loaded.
* **Repo linter** (``LINT*``) -- stdlib-``ast`` rules enforcing the
  determinism and typing invariants benchmarks rely on.

Entry points: ``repro lint [--json]`` on the command line,
:func:`repro.analysis.run_lint` from code, and a pytest-collected check in
``tests/test_repo_lint.py`` that keeps the tree clean in CI.
"""

from repro.analysis.diagnostics import (
    CODE_REGISTRY,
    Diagnostic,
    DiagnosticReport,
    Severity,
    describe_codes,
)
from repro.analysis.plan_linter import (
    lint_candidate_networks,
    lint_lattice,
    lint_tree,
)
from repro.analysis.repo_linter import lint_repo, lint_source
from repro.analysis.runner import (
    LintOptions,
    dataset_schema,
    lint_built_lattice,
    lint_schema_lattice,
    run_lint,
)
from repro.analysis.sql_linter import (
    SqlDryRunner,
    find_unquoted_reserved,
    lint_ddl,
    lint_lattice_templates,
    lint_statements,
)

__all__ = [
    "CODE_REGISTRY",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "describe_codes",
    "lint_candidate_networks",
    "lint_lattice",
    "lint_tree",
    "lint_repo",
    "lint_source",
    "LintOptions",
    "dataset_schema",
    "lint_built_lattice",
    "lint_schema_lattice",
    "run_lint",
    "SqlDryRunner",
    "find_unquoted_reserved",
    "lint_ddl",
    "lint_lattice_templates",
    "lint_statements",
]
