"""Static analysis for plans, SQL templates, and the codebase itself.

Three layers, one diagnostic vocabulary (see
:mod:`repro.analysis.diagnostics` for the full code registry, rendered
into ``docs/DIAGNOSTICS.md`` by :mod:`repro.analysis.docgen`):

* **Plan linter** (``PLAN*``/``SQL*``) -- verifies every documented
  structural invariant of join trees, the lattice, candidate-network
  output, and rendered SQL templates *statically*, including a sqlite
  prepare-only dry run of every template with no data loaded.
* **Repo linter** (``LINT*``) -- stdlib-``ast`` rules enforcing the
  determinism and typing invariants benchmarks rely on.
* **Concurrency & resource linters** (``CONC*``/``RES*``) -- lock
  discipline of the thread-shared probe-path classes and the owned
  lifecycle of pooled connections, sqlite handles, and artifact writes.
  The static rules are complemented by the *dynamic* lock-order
  detector (:mod:`repro.analysis.lockorder`, ``CONC005``) driven from
  the threaded test suites.

Findings can be silenced per line with ``# repro: noqa CODE``
(:mod:`repro.analysis.suppressions`); stale suppressions surface as
``LINT004`` warnings.  Entry points: ``repro lint [--json] [--select
FAMILIES]`` on the command line, :func:`repro.analysis.run_lint` from
code, and a pytest-collected check in ``tests/test_repo_lint.py`` that
keeps the tree clean in CI.
"""

from repro.analysis.concurrency import lint_concurrency_source
from repro.analysis.diagnostics import (
    CODE_FAMILIES,
    CODE_REGISTRY,
    LINT_REPORT_VERSION,
    Diagnostic,
    DiagnosticReport,
    LintReportValidationError,
    Severity,
    code_family,
    describe_codes,
    validate_lint_report,
)
from repro.analysis.lockorder import LockOrderMonitor
from repro.analysis.plan_linter import (
    lint_candidate_networks,
    lint_lattice,
    lint_tree,
)
from repro.analysis.repo_linter import lint_repo, lint_source
from repro.analysis.resources import lint_resources_source
from repro.analysis.runner import (
    LintOptions,
    dataset_schema,
    lint_built_lattice,
    lint_files,
    lint_schema_lattice,
    normalize_select,
    run_lint,
)
from repro.analysis.sql_linter import (
    SqlDryRunner,
    find_unquoted_reserved,
    lint_ddl,
    lint_lattice_templates,
    lint_statements,
)
from repro.analysis.suppressions import apply_suppressions, parse_suppressions

__all__ = [
    "CODE_FAMILIES",
    "CODE_REGISTRY",
    "LINT_REPORT_VERSION",
    "Diagnostic",
    "DiagnosticReport",
    "LintReportValidationError",
    "LockOrderMonitor",
    "Severity",
    "code_family",
    "describe_codes",
    "validate_lint_report",
    "lint_candidate_networks",
    "lint_concurrency_source",
    "lint_lattice",
    "lint_tree",
    "lint_repo",
    "lint_resources_source",
    "lint_source",
    "LintOptions",
    "dataset_schema",
    "lint_built_lattice",
    "lint_files",
    "lint_schema_lattice",
    "normalize_select",
    "run_lint",
    "SqlDryRunner",
    "find_unquoted_reserved",
    "lint_ddl",
    "lint_lattice_templates",
    "lint_statements",
    "apply_suppressions",
    "parse_suppressions",
]
