"""Static resource-leak lint (``RES001``-``RES003``).

Companion pass to :mod:`repro.analysis.concurrency`, covering the three
resource kinds this codebase manages by hand:

* ``RES001`` *pool-checkout-leak* -- ``pool.checkout()`` assigned to a
  variable must be followed immediately by a ``try/finally`` that calls
  ``checkin()`` (or ``release()``); otherwise any exception between the
  checkout and the checkin leaks a pooled connection, and enough leaks
  wedge every thread waiting on the pool's capacity condition.  The
  sanctioned idiom is ``with pool.connection():``, which is exactly that
  ``try/finally`` (see :meth:`repro.backends.pool.ConnectionPool.connection`).
* ``RES002`` *sqlite-handle-leak* -- every ``sqlite3.connect()`` (and
  every bare ``.cursor()``) must have an owned lifecycle: stored on
  ``self`` in a class that defines ``close()``, closed in a ``finally``,
  used as a context manager, or *returned* to a caller that owns it (the
  connection-factory pattern the pool consumes).
* ``RES003`` *non-atomic-artifact-write* -- a write-mode ``open()`` (or
  ``Path.write_text``/``write_bytes``) outside :mod:`repro.ioutil`: a
  crash mid-write leaves a truncated artifact, which is why every
  artifact writer in the tree routes through
  :func:`repro.ioutil.atomic_write_text` (tempfile + ``os.replace``).

Like the other AST passes, the rules are scoped to the idioms this
repository actually uses; they aim for zero false positives on the real
tree, with an inline ``repro: noqa`` comment as the documented escape
hatch (see :mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Diagnostic

#: Modules allowed to open files for writing: the atomic-write helper.
ATOMIC_WRITE_EXEMPT: tuple[str, ...] = ("repro/ioutil.py",)

_WRITE_MODE_CHARS = frozenset("wax+")


def _parents_of(module: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(module):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _enclosing(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    kinds: tuple[type, ...],
) -> ast.AST | None:
    current = parents.get(node)
    while current is not None and not isinstance(current, kinds):
        current = parents.get(current)
    return current


def _finalbody_calls(try_stmt: ast.Try, method_names: set[str]) -> bool:
    for stmt in try_stmt.finalbody:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in method_names
            ):
                return True
    return False


def _next_sibling(
    stmt: ast.stmt, parents: dict[ast.AST, ast.AST]
) -> ast.stmt | None:
    parent = parents.get(stmt)
    if parent is None:
        return None
    for fieldname in ("body", "orelse", "finalbody", "handlers"):
        body = getattr(parent, fieldname, None)
        if isinstance(body, list) and stmt in body:
            index = body.index(stmt)
            return body[index + 1] if index + 1 < len(body) else None
    return None


def _function_returns_var(
    function: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> bool:
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            return True
    return False


def _class_defines_close(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == "close"
        for item in cls.body
    )


def _lifecycle_ok(
    call: ast.Call,
    parents: dict[ast.AST, ast.AST],
    close_names: set[str],
) -> bool:
    """Whether ``call``'s produced handle has an owned lifecycle."""
    parent = parents.get(call)
    # Returned directly: the caller owns it.
    if isinstance(parent, ast.Return):
        return True
    # ``with sqlite3.connect(...) as conn:`` -- scoped by the with.
    if isinstance(parent, ast.withitem):
        return True
    if not isinstance(parent, ast.Assign) or len(parent.targets) != 1:
        return False
    target = parent.targets[0]
    # ``self.x = connect()`` inside a class that defines close().
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        cls = _enclosing(parent, parents, (ast.ClassDef,))
        return isinstance(cls, ast.ClassDef) and _class_defines_close(cls)
    if not isinstance(target, ast.Name):
        return False
    # ``x = connect()`` followed by try/finally x.close()-style cleanup.
    following = _next_sibling(parent, parents)
    if isinstance(following, ast.Try) and _finalbody_calls(
        following, close_names
    ):
        return True
    # Factory pattern: the handle is returned to a caller that owns it.
    function = _enclosing(
        parent, parents, (ast.FunctionDef, ast.AsyncFunctionDef)
    )
    if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return _function_returns_var(function, target.id)
    return False


def _check_pool_checkouts(
    module: ast.Module,
    parents: dict[ast.AST, ast.AST],
    relative: str,
    found: list[Diagnostic],
) -> None:
    for node in ast.walk(module):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "checkout"
        ):
            continue
        parent = parents.get(node)
        ok = False
        if isinstance(parent, ast.Assign):
            following = _next_sibling(parent, parents)
            ok = isinstance(following, ast.Try) and _finalbody_calls(
                following, {"checkin", "release"}
            )
        if not ok:
            found.append(
                Diagnostic(
                    "RES001",
                    "pool checkout() is not paired with a try/finally "
                    "checkin()",
                    f"{relative}:{node.lineno}",
                    hint="use 'with pool.connection():' (the pairing is "
                    "built in)",
                )
            )


def _check_sqlite_handles(
    module: ast.Module,
    parents: dict[ast.AST, ast.AST],
    relative: str,
    found: list[Diagnostic],
) -> None:
    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_connect = (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "sqlite3"
            and func.attr == "connect"
        )
        is_cursor = (
            isinstance(func, ast.Attribute)
            and func.attr == "cursor"
            and not node.args
            and not node.keywords
        )
        if not (is_connect or is_cursor):
            continue
        if _lifecycle_ok(node, parents, {"close"}):
            continue
        what = "sqlite3.connect()" if is_connect else "bare cursor()"
        found.append(
            Diagnostic(
                "RES002",
                f"{what} handle has no owned lifecycle (no close() on "
                f"all paths)",
                f"{relative}:{node.lineno}",
                hint="close in a finally block, store on a class with "
                "close(), or return the handle to the owning caller"
                + (
                    "; prefer connection.execute(), which scopes its "
                    "own cursor"
                    if is_cursor
                    else ""
                ),
            )
        )


def _open_mode(call: ast.Call) -> str | None:
    """The constant mode string of an ``open()`` call, if determinable."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _check_artifact_writes(
    module: ast.Module, relative: str, found: list[Diagnostic]
) -> None:
    if any(relative.startswith(prefix) for prefix in ATOMIC_WRITE_EXEMPT):
        return
    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is None or not (_WRITE_MODE_CHARS & set(mode)):
                continue
            found.append(
                Diagnostic(
                    "RES003",
                    f"file opened for writing (mode {mode!r}) outside the "
                    f"atomic-write helper",
                    f"{relative}:{node.lineno}",
                    hint="write through repro.ioutil.atomic_write_text",
                )
            )
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            found.append(
                Diagnostic(
                    "RES003",
                    f"direct {func.attr}() bypasses the atomic-write helper",
                    f"{relative}:{node.lineno}",
                    hint="write through repro.ioutil.atomic_write_text",
                )
            )


def lint_resources_source(source: str, relative: str) -> list[Diagnostic]:
    """All ``RES00x`` diagnostics for one module's source text."""
    module = ast.parse(source, filename=relative)
    parents = _parents_of(module)
    found: list[Diagnostic] = []
    _check_pool_checkouts(module, parents, relative, found)
    _check_sqlite_handles(module, parents, relative, found)
    _check_artifact_writes(module, relative, found)
    found.sort(key=lambda diagnostic: diagnostic.location)
    return found
