"""The diagnostic framework shared by every linter layer.

A :class:`Diagnostic` is one finding: a stable machine-readable *code*
(``PLAN001``, ``SQL002``, ``LINT003``, ...), a :class:`Severity`, a
human-readable message, the *location* the finding anchors to (a lattice
node, a SQL template, a ``file:line``), and an optional fix hint.
:class:`DiagnosticReport` aggregates findings across passes and renders
them for terminals (``repro lint``) or machines (``repro lint --json``).

The code registry below is the single source of truth for which codes
exist; :func:`describe_codes` backs the README table and ``--explain``
style tooling, and the tests assert every emitted code is registered.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, NamedTuple


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings fail the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


class CodeInfo(NamedTuple):
    """Registry entry: kebab-case slug, one-line summary, remediation note.

    A ``NamedTuple`` so positional access (``CODE_REGISTRY[code][0]``)
    keeps working for callers that predate the remediation field.
    """

    slug: str
    summary: str
    remediation: str


#: Code families, in registry (and documentation) order.  The family of a
#: code is its alphabetic prefix; ``repro lint --select`` filters on it.
CODE_FAMILIES: tuple[str, ...] = ("PLAN", "SQL", "LINT", "CONC", "RES")


def code_family(code: str) -> str:
    """The alphabetic family prefix of ``code`` (``CONC003`` -> ``CONC``)."""
    return code.rstrip("0123456789")


#: Registry of every diagnostic code.  Single source of truth: the docs
#: generator renders it into ``docs/DIAGNOSTICS.md`` and the tests assert
#: every emitted code is registered.
CODE_REGISTRY: dict[str, CodeInfo] = {
    "PLAN001": CodeInfo(
        "dangling-join-edge",
        "a join edge references a foreign key the schema does not declare "
        "(unknown name, wrong relations/columns, or an endpoint outside the "
        "tree)",
        "only build edges from SchemaGraph.foreign_keys; regenerate the "
        "lattice instead of hand-editing plans",
    ),
    "PLAN002": CodeInfo(
        "disconnected-tree",
        "a plan's instances and edges do not form one connected acyclic tree",
        "grow plans one FK edge at a time from a single seed instance so "
        "connectivity holds by construction",
    ),
    "PLAN003": CodeInfo(
        "type-mismatched-join",
        "a join equates columns of different declared types, or joins on a "
        "searchable text column",
        "join only on declared key/foreign-key column pairs of matching type",
    ),
    "PLAN004": CodeInfo(
        "duplicate-slot",
        "two relation instances occupy the same keyword slot, so at most one "
        "can ever be bound",
        "assign distinct copy indexes when instantiating the same relation "
        "twice (distinct_slots=True)",
    ),
    "PLAN005": CodeInfo(
        "unbound-keyword-slot",
        "a keyword slot that no keyword can bind: its copy index exceeds the "
        "lattice's max_keywords, or the instance is outside the "
        "interpretation's bound set",
        "cap copy indexes at max_keywords and only bind instances retained "
        "by the interpretation",
    ),
    "PLAN006": CodeInfo(
        "non-minimal-network",
        "a candidate network has a free leaf, which could be dropped without "
        "losing any keyword",
        "prune free leaves before emitting candidate networks (minimality "
        "rule of DISCOVER-style enumeration)",
    ),
    "PLAN007": CodeInfo(
        "broken-lattice-link",
        "lattice parent/child adjacency is inconsistent (level mismatch, "
        "unmirrored link, or out-of-range node id)",
        "mirror every parent/child link at build time; use "
        "Lattice.from_parts, which validates adjacency",
    ),
    "SQL001": CodeInfo(
        "unquoted-reserved-identifier",
        "a rendered SQL statement uses a reserved word as a bare identifier",
        "route every schema identifier through quote_identifier()",
    ),
    "SQL002": CodeInfo(
        "template-fails-sqlite-prepare",
        "a rendered SQL template does not compile under sqlite's prepare "
        "step (dry run with no data loaded)",
        "fix the rendering site; the hint carries the generated SQL and "
        "sqlite's compile error",
    ),
    "LINT001": CodeInfo(
        "nondeterministic-call",
        "wall-clock or global-RNG call (time.time, datetime.now, random.*) "
        "outside repro.bench; breaks benchmark determinism and resumability",
        "use time.perf_counter() for timing and a seeded random.Random "
        "instance for data generation",
    ),
    "LINT002": CodeInfo(
        "mutable-default-arg",
        "a function declares a mutable default argument (list/dict/set "
        "literal or constructor)",
        "default to None and create the value inside the function, or use "
        "dataclasses.field(default_factory=...)",
    ),
    "LINT003": CodeInfo(
        "missing-annotation",
        "a public function in an annotation-required package lacks "
        "parameter or return type annotations",
        "annotate every parameter and the return type; the mypy-strict "
        "gate depends on it",
    ),
    "LINT004": CodeInfo(
        "unused-suppression",
        "a '# repro: noqa CODE' comment suppresses nothing on its line",
        "delete the stale suppression (or fix the code it names if the "
        "finding was expected)",
    ),
    "CONC001": CodeInfo(
        "unguarded-shared-access",
        "an attribute guarded by a lock (inferred from 'with self._lock:' "
        "writes or declared via '# guarded-by: _lock') is read or written "
        "outside the lock in a thread-shared class",
        "wrap the access in 'with self._lock:', move it into a "
        "'*_locked' helper called under the lock, or add a justified "
        "inline 'repro: noqa' suppression",
    ),
    "CONC002": CodeInfo(
        "acquire-without-release",
        "a bare lock.acquire() has no try/finally that calls release(), so "
        "an exception leaves the lock held forever",
        "prefer 'with lock:'; if acquire() is unavoidable, follow it "
        "immediately with try/finally release()",
    ),
    "CONC003": CodeInfo(
        "wait-outside-loop",
        "Condition.wait() is called outside a predicate re-check loop; "
        "spurious wakeups and stolen notifications then corrupt state",
        "call wait() inside 'while not predicate:' (or use wait_for)",
    ),
    "CONC004": CodeInfo(
        "locked-method-unlocked-call",
        "a '*_locked'-suffixed method is called without the lock held "
        "(outside any 'with self._lock:' block or '*_locked' caller)",
        "take the lock at the call site; the suffix is a contract that the "
        "caller already holds it",
    ),
    "CONC005": CodeInfo(
        "lock-order-inversion",
        "the dynamic lock-order detector observed two locks acquired in "
        "both orders on different threads (a potential deadlock cycle)",
        "impose one global acquisition order, or release the first lock "
        "before taking the second",
    ),
    "CONC006": CodeInfo(
        "non-picklable-protocol-message",
        "a shard protocol message (a class subclassing Message) is not a "
        "frozen dataclass, or a field's annotation leaves the "
        "transport-safe grammar (primitives, tuples of those, other "
        "messages, optional unions)",
        "declare the class '@dataclass(frozen=True)' and restrict fields "
        "to int/float/str/bool/bytes/None, tuple[...] of those, other "
        "Message dataclasses, and '| None' unions; ship anything richer "
        "as masks, counters, or JSON strings",
    ),
    "RES001": CodeInfo(
        "pool-checkout-leak",
        "a pool checkout() has no try/finally that checks the connection "
        "back in, so an exception path leaks a pooled connection",
        "use 'with pool.connection():'; if checkout() is unavoidable, pair "
        "it with checkin() in a finally block",
    ),
    "RES002": CodeInfo(
        "sqlite-handle-leak",
        "a sqlite3 connection or cursor is created without a managed "
        "lifecycle (no close() on all paths, no owning class close())",
        "close the handle in a finally block, store it on a class that "
        "closes it, or return it to a caller that owns its lifecycle",
    ),
    "RES003": CodeInfo(
        "non-atomic-artifact-write",
        "a file is opened for writing outside the atomic-write helpers; a "
        "crash mid-write leaves a truncated artifact",
        "write through repro.ioutil.atomic_write_text (same-directory "
        "temp file + os.replace)",
    ),
}


def describe_codes() -> list[tuple[str, str, str]]:
    """``(code, slug, summary)`` rows for every registered diagnostic."""
    return [
        (code, info.slug, info.summary) for code, info in CODE_REGISTRY.items()
    ]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a linter pass."""

    code: str
    message: str
    location: str
    severity: Severity = Severity.ERROR
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODE_REGISTRY:
            raise ValueError(f"unregistered diagnostic code: {self.code!r}")

    @property
    def slug(self) -> str:
        """The kebab-case name of this diagnostic's code."""
        return CODE_REGISTRY[self.code][0]

    def render(self) -> str:
        line = f"{self.severity}: {self.code} [{self.slug}] {self.location}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict[str, str | None]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # ---------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found."""
        return not self.errors()

    # --------------------------------------------------------------- output
    def render(self, max_items: int | None = None) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        shown = self.diagnostics[:max_items] if max_items else self.diagnostics
        lines = [d.render() for d in shown]
        hidden = len(self.diagnostics) - len(shown)
        if hidden > 0:
            lines.append(f"... and {hidden} more")
        lines.append(
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "version": LINT_REPORT_VERSION,
            "ok": self.ok,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ------------------------------------------------- lint-report JSON schema
#: Version stamped on every ``repro lint --json`` payload.
LINT_REPORT_VERSION = 1

#: Required top-level fields of a ``--json`` report: name -> accepted types.
LINT_REPORT_SCHEMA: dict[str, tuple[type, ...]] = {
    "version": (int,),
    "ok": (bool,),
    "errors": (int,),
    "warnings": (int,),
    "diagnostics": (list,),
}

#: Required fields of each entry in ``diagnostics`` (``hint`` may be None).
LINT_DIAGNOSTIC_SCHEMA: dict[str, tuple[type, ...]] = {
    "code": (str,),
    "slug": (str,),
    "severity": (str,),
    "location": (str,),
    "message": (str,),
}


class LintReportValidationError(ValueError):
    """A ``repro lint --json`` payload does not match the schema."""


def validate_lint_report(payload: Any) -> dict[str, int]:
    """Validate a decoded ``repro lint --json`` payload.

    Mirrors :func:`repro.obs.trace.validate_trace_record`: field presence
    and types are checked structurally, then the cross-field invariants
    (severity partition counts, registered codes, matching slugs, the
    ``ok`` flag) are enforced.  Returns ``{"errors": n, "warnings": m}``.
    """
    if not isinstance(payload, dict):
        raise LintReportValidationError(f"report is not an object: {payload!r}")
    for name, types in LINT_REPORT_SCHEMA.items():
        if name not in payload:
            raise LintReportValidationError(f"report missing field {name!r}")
        value = payload[name]
        if isinstance(value, bool) and bool not in types:
            raise LintReportValidationError(
                f"report field {name!r} has wrong type bool"
            )
        if not isinstance(value, types):
            raise LintReportValidationError(
                f"report field {name!r} has wrong type {type(value).__name__}"
            )
    if payload["version"] != LINT_REPORT_VERSION:
        raise LintReportValidationError(
            f"unsupported report version {payload['version']!r}"
        )
    severities = {"error": 0, "warning": 0}
    for index, entry in enumerate(payload["diagnostics"]):
        where = f"diagnostics[{index}]"
        if not isinstance(entry, dict):
            raise LintReportValidationError(f"{where} is not an object")
        for name, types in LINT_DIAGNOSTIC_SCHEMA.items():
            if name not in entry:
                raise LintReportValidationError(
                    f"{where} missing field {name!r}"
                )
            if not isinstance(entry[name], types) or isinstance(
                entry[name], bool
            ):
                raise LintReportValidationError(
                    f"{where} field {name!r} has wrong type "
                    f"{type(entry[name]).__name__}"
                )
        if "hint" in entry and entry["hint"] is not None:
            if not isinstance(entry["hint"], str):
                raise LintReportValidationError(
                    f"{where} field 'hint' has wrong type"
                )
        code = entry["code"]
        if code not in CODE_REGISTRY:
            raise LintReportValidationError(f"{where}: unregistered code {code!r}")
        if entry["slug"] != CODE_REGISTRY[code].slug:
            raise LintReportValidationError(
                f"{where}: slug {entry['slug']!r} does not match code {code}"
            )
        if entry["severity"] not in severities:
            raise LintReportValidationError(
                f"{where}: unknown severity {entry['severity']!r}"
            )
        severities[entry["severity"]] += 1
    if payload["errors"] != severities["error"]:
        raise LintReportValidationError(
            f"errors={payload['errors']} but {severities['error']} "
            f"error-severity diagnostics listed"
        )
    if payload["warnings"] != severities["warning"]:
        raise LintReportValidationError(
            f"warnings={payload['warnings']} but {severities['warning']} "
            f"warning-severity diagnostics listed"
        )
    if payload["ok"] != (severities["error"] == 0):
        raise LintReportValidationError(
            "ok flag contradicts the error count"
        )
    return {"errors": severities["error"], "warnings": severities["warning"]}
