"""The diagnostic framework shared by every linter layer.

A :class:`Diagnostic` is one finding: a stable machine-readable *code*
(``PLAN001``, ``SQL002``, ``LINT003``, ...), a :class:`Severity`, a
human-readable message, the *location* the finding anchors to (a lattice
node, a SQL template, a ``file:line``), and an optional fix hint.
:class:`DiagnosticReport` aggregates findings across passes and renders
them for terminals (``repro lint``) or machines (``repro lint --json``).

The code registry below is the single source of truth for which codes
exist; :func:`describe_codes` backs the README table and ``--explain``
style tooling, and the tests assert every emitted code is registered.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings fail the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


#: Registry of every diagnostic code: ``code -> (slug, one-line summary)``.
CODE_REGISTRY: dict[str, tuple[str, str]] = {
    "PLAN001": (
        "dangling-join-edge",
        "a join edge references a foreign key the schema does not declare "
        "(unknown name, wrong relations/columns, or an endpoint outside the "
        "tree)",
    ),
    "PLAN002": (
        "disconnected-tree",
        "a plan's instances and edges do not form one connected acyclic tree",
    ),
    "PLAN003": (
        "type-mismatched-join",
        "a join equates columns of different declared types, or joins on a "
        "searchable text column",
    ),
    "PLAN004": (
        "duplicate-slot",
        "two relation instances occupy the same keyword slot, so at most one "
        "can ever be bound",
    ),
    "PLAN005": (
        "unbound-keyword-slot",
        "a keyword slot that no keyword can bind: its copy index exceeds the "
        "lattice's max_keywords, or the instance is outside the "
        "interpretation's bound set",
    ),
    "PLAN006": (
        "non-minimal-network",
        "a candidate network has a free leaf, which could be dropped without "
        "losing any keyword",
    ),
    "PLAN007": (
        "broken-lattice-link",
        "lattice parent/child adjacency is inconsistent (level mismatch, "
        "unmirrored link, or out-of-range node id)",
    ),
    "SQL001": (
        "unquoted-reserved-identifier",
        "a rendered SQL statement uses a reserved word as a bare identifier",
    ),
    "SQL002": (
        "template-fails-sqlite-prepare",
        "a rendered SQL template does not compile under sqlite's prepare "
        "step (dry run with no data loaded)",
    ),
    "LINT001": (
        "nondeterministic-call",
        "wall-clock or global-RNG call (time.time, datetime.now, random.*) "
        "outside repro.bench; breaks benchmark determinism and resumability",
    ),
    "LINT002": (
        "mutable-default-arg",
        "a function declares a mutable default argument (list/dict/set "
        "literal or constructor)",
    ),
    "LINT003": (
        "missing-annotation",
        "a public function in repro.core or repro.relational lacks parameter "
        "or return type annotations",
    ),
}


def describe_codes() -> list[tuple[str, str, str]]:
    """``(code, slug, summary)`` rows for every registered diagnostic."""
    return [(code, slug, summary) for code, (slug, summary) in CODE_REGISTRY.items()]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a linter pass."""

    code: str
    message: str
    location: str
    severity: Severity = Severity.ERROR
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODE_REGISTRY:
            raise ValueError(f"unregistered diagnostic code: {self.code!r}")

    @property
    def slug(self) -> str:
        """The kebab-case name of this diagnostic's code."""
        return CODE_REGISTRY[self.code][0]

    def render(self) -> str:
        line = f"{self.severity}: {self.code} [{self.slug}] {self.location}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict[str, str | None]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # ---------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found."""
        return not self.errors()

    # --------------------------------------------------------------- output
    def render(self, max_items: int | None = None) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        shown = self.diagnostics[:max_items] if max_items else self.diagnostics
        lines = [d.render() for d in shown]
        hidden = len(self.diagnostics) - len(shown)
        if hidden > 0:
            lines.append(f"... and {hidden} more")
        lines.append(
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
