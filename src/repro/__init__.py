"""repro: debugging non-answers in keyword search over structured data.

A from-scratch reproduction of Baid, Wu, Sun, Doan & Naughton,
"On Debugging Non-Answers in Keyword Search Systems" (EDBT 2015).

Quick start::

    from repro import NonAnswerDebugger, product_database

    debugger = NonAnswerDebugger(product_database(), max_joins=2)
    report = debugger.debug("saffron scented candle")
    print(report.render())

See README.md for the architecture overview and DESIGN.md for the full
system inventory and per-experiment index.
"""

from repro.core.debugger import DebugReport, NonAnswerDebugger
from repro.core.baselines import BaselineResult, ReturnEverything, ReturnNothing
from repro.core.constraints import SearchConstraints
from repro.core.diagnosis import Cause, Diagnosis, diagnose
from repro.core.lattice import Lattice, LatticeStats, generate_lattice
from repro.core.persistence import load_lattice, save_lattice, save_report
from repro.core.ranking import ExplanationRanker
from repro.core.session import DebugSession
from repro.core.traversal import STRATEGY_NAMES, get_strategy
from repro.datasets.dblife import DBLifeConfig, dblife_database, dblife_schema
from repro.datasets.products import product_database, product_schema
from repro.index.inverted import InvertedIndex
from repro.kws.discover import ClassicKWSSystem
from repro.relational.database import Database
from repro.relational.predicates import MatchMode
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)
from repro.workloads.queries import TABLE2_QUERIES

__version__ = "1.0.0"

__all__ = [
    "DebugReport",
    "NonAnswerDebugger",
    "BaselineResult",
    "ReturnEverything",
    "ReturnNothing",
    "SearchConstraints",
    "Cause",
    "Diagnosis",
    "diagnose",
    "DebugSession",
    "ExplanationRanker",
    "Lattice",
    "LatticeStats",
    "generate_lattice",
    "save_lattice",
    "load_lattice",
    "save_report",
    "STRATEGY_NAMES",
    "get_strategy",
    "DBLifeConfig",
    "dblife_database",
    "dblife_schema",
    "product_database",
    "product_schema",
    "InvertedIndex",
    "ClassicKWSSystem",
    "Database",
    "MatchMode",
    "Attribute",
    "AttributeType",
    "ForeignKey",
    "Relation",
    "SchemaGraph",
    "TABLE2_QUERIES",
    "__version__",
]
