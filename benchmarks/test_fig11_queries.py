"""Figure 11: number of SQL queries executed per traversal strategy."""

from repro.bench.experiments import fig11


def test_fig11_sql_counts(benchmark, context, save_table):
    def run():
        return fig11(context, level=5)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig11", table)

    bu = table.column("BU")
    buwr = table.column("BUWR")
    td = table.column("TD")
    tdwr = table.column("TDWR")
    sbh = table.column("SBH")
    # Reuse variants never execute more queries than their counterparts.
    assert all(with_reuse <= without for with_reuse, without in zip(buwr, bu))
    assert all(with_reuse <= without for with_reuse, without in zip(tdwr, td))
    # SBH is competitive with the best of the four on workload totals.
    assert sum(sbh) <= min(sum(bu), sum(td))
