"""Figure 15: the baseline comparison at level 7 (deeper joins)."""

from repro.bench.experiments import fig15


def test_fig15_baseline_comparison(benchmark, context, save_table):
    def run():
        return fig15(context, level=7)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig15", table)

    ours = table.column("ours (s)")
    re_ = table.column("RE (s)")
    # The paper's headline: at level 7 the improvement is dramatic for the
    # expensive three-keyword queries (the paper reports 84% / 99% for the
    # two costliest, Q2 / Q3).
    by_qid = {row[0]: row for row in table.rows}
    for qid in ("Q2", "Q3"):
        row = by_qid[qid]
        assert row[1] < 0.5 * row[3], f"{qid}: ours should beat RE at level 7"
    # The costliest query also beats Return Nothing's re-submission bill.
    assert by_qid["Q3"][1] < by_qid["Q3"][2]
    assert sum(ours) < 0.25 * sum(re_)
