"""Table 3: distribution of MTNs and MPANs at levels 3, 5, and 7."""

from repro.bench.experiments import table3


def test_table3_mtn_mpan_distribution(benchmark, context, save_table):
    def run():
        return table3(context, levels=(3, 5, 7))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("table3", table)

    # MTN counts are cumulative, so they grow with the level; the paper's
    # headline observation is that most MTNs/MPANs live at higher levels.
    for row in table.rows:
        _, l3, l5, l7 = row[0], row[1], row[2], row[3]
        assert l3 <= l5 <= l7
    # Three-keyword queries have no level-3 MTNs (as in the paper's Table 3:
    # Q2, Q3, Q8, Q10 all show 0).
    by_qid = {row[0]: row for row in table.rows}
    for qid in ("Q2", "Q3", "Q8", "Q10"):
        assert by_qid[qid][1] == 0
    # Substantially more MTNs at level 7 than level 5 on workload totals.
    total_l5 = sum(row[2] for row in table.rows)
    total_l7 = sum(row[3] for row in table.rows)
    assert total_l7 > 2 * total_l5
