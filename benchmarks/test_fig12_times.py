"""Figure 12: time taken to execute the SQL queries per strategy."""

from repro.bench.experiments import fig12


def test_fig12_execution_times(benchmark, context, save_table):
    def run():
        return fig12(context, level=5)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig12", table)

    # Fewer executed queries must show up as less simulated time overall:
    # the reuse strategies beat the no-reuse sweeps on workload totals.
    bu = sum(table.column("BU"))
    buwr = sum(table.column("BUWR"))
    td = sum(table.column("TD"))
    tdwr = sum(table.column("TDWR"))
    assert buwr <= bu
    assert tdwr <= td
