"""Figure 13: percentage of reuse between the descendants of the MTNs."""

from repro.bench.experiments import fig13


def test_fig13_reuse_percentage(benchmark, context, save_table):
    def run():
        return fig13(context, levels=(3, 5, 7))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig13", table)

    for row in table.rows:
        _, l3, l5, l7 = row
        assert 0.0 <= l3 <= 100.0 and 0.0 <= l5 <= 100.0 and 0.0 <= l7 <= 100.0
        # Reuse increases as more joins are allowed (paper's observation);
        # rows with no MTNs at a level report 0 there.
        if l5 > 0:
            assert l7 >= l5 - 1e-9
    # Substantial overlap at level 7 across the workload.
    level7 = [row[3] for row in table.rows if row[3] > 0]
    assert level7 and max(level7) > 50.0
