"""Figure 14: response time, our approach vs Return Nothing / Everything (L5)."""

from repro.bench.experiments import fig14


def test_fig14_baseline_comparison(benchmark, context, save_table):
    def run():
        return fig14(context, level=5)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig14", table)

    # The paper's observation: the win shows on the complicated
    # three-keyword queries (Q2, Q3, Q8, Q10); simple queries are cheap
    # everywhere (RN can even be cheapest: it never looks at sub-queries).
    by_qid = {row[0]: row for row in table.rows}
    for qid in ("Q2", "Q3", "Q8", "Q10"):
        _, ours_s, rn_s, re_s, _, _, _ = by_qid[qid]
        assert ours_s < rn_s, f"{qid}: ours should beat RN"
        assert ours_s < re_s, f"{qid}: ours should beat RE"
    # RE pays for every descendant of every dead CN; on workload totals the
    # lattice rules that redundancy out without losing completeness (§3.8).
    assert sum(table.column("ours #sql")) < sum(table.column("RE #sql"))
    assert sum(table.column("ours (s)")) <= sum(table.column("RN (s)"))
