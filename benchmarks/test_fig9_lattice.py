"""Figure 9: offline lattice generation -- node counts and time per level."""

from repro.bench.experiments import fig9
from repro.core.lattice import generate_lattice


def test_fig9a_node_counts(benchmark, context, save_table):
    """Figure 9(a): nodes and eliminated duplicates per level."""

    def run():
        return fig9(context, max_level=5)

    nodes, _times = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig9a", nodes)
    counts = nodes.column("nodes")
    # Exponential growth, as in the paper (log-scale Y axis).
    assert counts[-1] > 10 * counts[0]
    assert all(duplicates >= 0 for duplicates in nodes.column("duplicates eliminated"))


def test_fig9b_generation_time(benchmark, context, save_table):
    """Figure 9(b): per-level generation time (a one-time offline cost)."""

    def run():
        return fig9(context, max_level=5)

    _nodes, times = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig9b", times)
    assert sum(times.column("seconds")) < 300  # paper: <100s in Java at L7


def test_fig9_small_lattice_throughput(benchmark, context):
    """Micro: regenerating the level-3 lattice from scratch (no caches)."""
    schema = context.database.schema

    def run():
        return generate_lattice(schema, 2, max_keywords=3)

    lattice = benchmark(run)
    assert len(lattice) > 100
