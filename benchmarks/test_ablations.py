"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.experiments import (
    ablation_free_copies,
    ablation_free_count,
    ablation_match,
    ablation_pa,
    scaling,
)


def test_ablation_pa_sweep(benchmark, context, save_table):
    """SBH sensitivity to the alive-probability prior (§2.5.3)."""

    def run():
        return ablation_pa(context, level=5, values=(0.1, 0.3, 0.5, 0.7, 0.9))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_pa", table)
    # The paper found the flat prior works well: p_a = 0.5 should be within
    # 2x of the best setting on workload totals.
    totals = {
        header: sum(table.column(header)) for header in table.headers[1:]
    }
    best = min(totals.values())
    assert totals["p_a=0.5"] <= max(2 * best, best + 20)


def test_ablation_match_modes(benchmark, context, save_table):
    """Token vs substring (LIKE) matching semantics."""

    def run():
        return ablation_match(context, level=3)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_match", table)
    # Substring matching can only widen tuple sets, so it can only add
    # interpretations and MTNs.
    for row in table.rows:
        _, mtns_token, mtns_substring, _, _ = row
        assert mtns_substring >= mtns_token


def test_ablation_free_copies(benchmark, context, save_table):
    """What the R0 free tuple sets contribute (§2.3)."""

    def run():
        return ablation_free_copies(context, level=3)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_free_copies", table)
    with_free = sum(table.column("MTNs with R0"))
    without_free = sum(table.column("MTNs without R0"))
    # DBLife keywords live in entity tables that are never directly joined,
    # so without free copies of the relationship tables (the connectors)
    # almost everything disappears.
    assert without_free < with_free


def test_ablation_free_count(benchmark, context, save_table):
    """Multi-free-copy extension: what a second free copy per relation buys."""

    def run():
        return ablation_free_count(context, level=5, counts=(1, 2))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_free_count", table)
    # More free copies can only add candidate networks and answers.
    for row in table.rows:
        _, mtns1, alive1, mtns2, alive2 = row
        assert mtns2 >= mtns1
        assert alive2 >= alive1
    # Q3 (three person names) gains answers at level 5 only via the second
    # free copy (person-Coauthor-person-Coauthor-person needs two Coauthors).
    by_qid = {row[0]: row for row in table.rows}
    assert by_qid["Q3"][2] == 0  # no answers with the paper's single R0
    assert by_qid["Q3"][4] > 0


def test_scaling_sweep(benchmark, save_table):
    """Dataset scale sweep: SQL counts flat, data volume grows."""

    def run():
        return scaling(scales=(1, 2, 4), level=3)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("scaling", table)
    tuples = table.column("tuples")
    assert tuples == sorted(tuples) and tuples[0] < tuples[-1]
    counts = table.column("total SQL (sbh)")
    # Query counts depend on the schema and keyword placement, not on
    # cardinality; allow mild drift as random links shift aliveness.
    assert max(counts) <= 3 * max(min(counts), 1)
