"""Shared fixtures for the benchmark suite.

One :class:`BenchContext` (synthetic DBLife snapshot + lattices + prepared
queries) is shared across all benchmark files; its caches make each bench
measure exactly the phase it targets.  Set ``REPRO_BENCH_SCALE`` to grow the
dataset.

Every bench writes the paper-style table it regenerates to
``benchmarks/results/<name>.txt`` (and prints it when run with ``-s``), so a
benchmark run leaves the full set of reproduced tables/figures behind.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.context import BenchContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def context() -> BenchContext:
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    return BenchContext.create(scale=scale, seed=seed)


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, table) -> None:
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
