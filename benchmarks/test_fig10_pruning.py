"""§3.3 + Figure 10: keyword mapping, lattice pruning, and MTN discovery."""

from repro.bench.experiments import fig10


def test_fig10_pruning_and_mtns(benchmark, context, save_table):
    def run():
        return fig10(context, level=5)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("fig10", table)

    # Keyword mapping is a fast index lookup (paper: 7-66 ms on Lucene).
    assert all(ms < 1000 for ms in table.column("map ms"))
    # Keyword pruning removes the overwhelming majority of lattice nodes
    # (paper: ~98% on average at level 5).
    pruned = table.column("pruned %")
    assert sum(pruned) / len(pruned) > 90
    # Unique descendants never exceed total descendants (overlap exists).
    for total, unique in zip(table.column("desc total"), table.column("desc unique")):
        assert unique <= total


def test_keyword_mapping_latency(benchmark, context):
    """Micro: one keyword-to-schema mapping round (paper: 7-66 ms)."""
    debugger = context.debugger(3)

    def run():
        return debugger.map_keywords("probabilistic data washington")

    mapping = benchmark(run)
    assert mapping.complete
