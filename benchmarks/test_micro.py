"""Micro-benchmarks for the hot operations under every experiment."""

import pytest

from repro.core.canonical import canonical_code
from repro.core.mtn import build_exploration_graph
from repro.index.inverted import InvertedIndex
from repro.relational.sqlite_backend import SqliteEngine


@pytest.fixture(scope="module")
def prepared_q8(context):
    return context.prepare(5, context.workload[7])  # Q8


def test_aliveness_probe_memory(benchmark, context, prepared_q8):
    """One semi-join emptiness check on the in-memory engine."""
    debugger = context.debugger(5)
    mtn = prepared_q8.graph.mtns()[0]

    result = benchmark(lambda: debugger.backend.is_alive(mtn.query))
    assert result in (True, False)


def test_aliveness_probe_sqlite(benchmark, context, prepared_q8):
    """The same probe as real SQL on sqlite3 (LIMIT 1 existence check)."""
    mtn = prepared_q8.graph.mtns()[0]

    with SqliteEngine(context.database) as engine:
        result = benchmark(lambda: engine.is_alive(mtn.query))
    assert result in (True, False)


def test_canonical_labeling(benchmark, context, prepared_q8):
    """Canonical labeling of a level-5 join tree (Algorithm 2)."""
    schema = context.database.schema
    tree = prepared_q8.graph.mtns()[0].tree

    code = benchmark(lambda: canonical_code(tree, schema))
    assert code


def test_exploration_graph_build(benchmark, context, prepared_q8):
    """Phase 2: building the exploration graph from pruned lattices."""
    pruned = prepared_q8.pruned

    graph = benchmark(lambda: build_exploration_graph(pruned))
    assert len(graph) == len(prepared_q8.graph)


def test_inverted_index_build(benchmark, context):
    """Offline index construction over the whole snapshot."""
    database = context.database

    index = benchmark(lambda: InvertedIndex(database))
    assert index.vocabulary_size > 0


def test_keyword_lookup(benchmark, context):
    """A single postings lookup (what §3.3 measures per keyword)."""
    index = context.debugger(3).index

    relations = benchmark(lambda: index.relations_containing("washington"))
    assert relations
