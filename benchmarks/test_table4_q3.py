"""Table 4: SQL queries executed for Q3 as the lattice level grows."""

from repro.bench.experiments import table4


def test_table4_q3_by_level(benchmark, context, save_table):
    def run():
        return table4(context, qid="Q3", levels=(3, 5, 7))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("table4", table)

    rows = {row[0]: row[1:] for row in table.rows}
    # Level 3: Q3 has no MTNs, so every strategy executes 0 queries (paper).
    assert rows[3] == [0, 0, 0, 0, 0]
    # Counts grow with the level for every strategy.
    for column in range(5):
        assert rows[3][column] <= rows[5][column] <= rows[7][column]
    # Paper's level-7 ordering: reuse beats no-reuse, and SBH avoids the
    # worst case of both sweeps (it may tie with the better reuse sweep).
    bu, td, buwr, tdwr, sbh = rows[7]
    assert buwr < bu
    assert tdwr < td
    assert sbh < min(bu, td)
    assert sbh <= 1.5 * min(buwr, tdwr)
