"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs PEP 660 support (setuptools >= 64 plus wheel);
on fully offline machines ``python setup.py develop`` through this shim
installs the same editable package.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
