#!/usr/bin/env python3
"""Interactive, constraint-driven debugging (the paper's §5 future work).

Run with::

    python examples/interactive_session.py

A developer rarely wants every explanation at once.  This example walks the
incremental workflow the library supports on top of the paper's machinery:

1. open a session: phases 1-2 run, **zero SQL** is spent;
2. look at the candidate networks, classify a couple on demand;
3. ask for the explanation of one non-answer -- only its search space is
   resolved, and everything learned is shared with later questions;
4. push a constraint ("I already checked the Color table") and compare the
   SQL bill;
5. finish with the automatic root-cause diagnosis and ranked explanations.

Sessions are context managers: leaving the ``with`` block persists what the
session learned (the status store) so a later session starts warm.
"""

from repro import NonAnswerDebugger, SearchConstraints, product_database
from repro.core.diagnosis import render_diagnoses
from repro.core.ranking import ExplanationRanker, only_bound
from repro.core.session import DebugSession

QUERY = "saffron scented candle"


def main() -> None:
    database = product_database()
    debugger = NonAnswerDebugger(database, max_joins=2)

    print(f'Opening a debug session for "{QUERY}"...')
    with DebugSession(debugger, QUERY) as session:
        print(f"  {session.progress()}")
        print("  candidate networks on the table:")
        for view in session.overview():
            print(f"    {view}")
        print()

        print(
            "Classifying candidates one by one (1 SQL each, or 0 if inferred):"
        )
        for view in session.overview():
            status = session.classify(view.position)
            print(f"  [{view.position}] -> {status.value}")
        print(f"  {session.progress()}\n")

        dead = [
            view.position
            for view in session.overview()
            if view.status.value == "dead"
        ]
        first = dead[0]
        print(f"Explaining just candidate #{first}:")
        for mpan in session.explain(first):
            print(f"  works up to: {mpan.describe()}")
        print(f"  {session.progress()}")
        second = dead[1]
        print(f"Explaining #{second} reuses the shared knowledge:")
        before = session.evaluator.stats.queries_executed
        for mpan in session.explain(second):
            print(f"  works up to: {mpan.describe()}")
        print(
            f"  (cost of the second explanation: "
            f"{session.evaluator.stats.queries_executed - before} "
            f"extra queries)\n"
        )

        print(
            "Same query with a pushed-down constraint (skip Color entirely):"
        )
        with DebugSession(
            debugger,
            QUERY,
            SearchConstraints(exclude_relations=frozenset({"Color"})),
        ) as constrained:
            constrained.explain_all()
            print(f"  constrained: {constrained.progress()}")
        print(f"  unconstrained was: {session.progress()}\n")

    print("Batch view with diagnosis and ranked explanations:")
    report = debugger.debug(QUERY)
    print(render_diagnoses(report))
    print()
    print(ExplanationRanker(filters=(only_bound,), top_k=2).render(report))


if __name__ == "__main__":
    main()
