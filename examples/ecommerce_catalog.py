#!/usr/bin/env python3
"""The e-commerce debugging loop the paper's introduction motivates.

Run with::

    python examples/ecommerce_catalog.py

An SEO engineer at a web shop sees "saffron scented candle" return nothing
useful.  The workflow below is exactly what §1 of the paper describes:

1. run the non-answer debugger to find *why* each interpretation fails;
2. read the MPANs: for the color interpretation every keyword exists and
   only the join is empty -- so the fix is vocabulary, not inventory;
3. apply the fix (add "saffron" as a synonym of yellow, as the paper
   suggests) and re-run: the former non-answer now returns products.

The example builds its own catalog -- a slightly larger cousin of the
Figure-2 database -- through the public schema/database API, showing how to
wire the system to any structured store.
"""

from repro import (
    Attribute,
    AttributeType,
    Database,
    ForeignKey,
    NonAnswerDebugger,
    Relation,
    SchemaGraph,
)

INT = AttributeType.INTEGER
TEXT = AttributeType.TEXT
REAL = AttributeType.REAL


def build_catalog() -> Database:
    """A small storefront: items, categories, colors, and attributes."""
    schema = SchemaGraph.build(
        relations=[
            Relation("Category", (Attribute("id", INT), Attribute("name", TEXT))),
            Relation(
                "Color",
                (
                    Attribute("id", INT),
                    Attribute("name", TEXT),
                    Attribute("synonyms", TEXT),
                ),
            ),
            Relation(
                "Feature",
                (
                    Attribute("id", INT),
                    Attribute("property", TEXT),
                    Attribute("value", TEXT),
                ),
            ),
            Relation(
                "Product",
                (
                    Attribute("id", INT),
                    Attribute("name", TEXT),
                    Attribute("category", INT),
                    Attribute("color", INT),
                    Attribute("feature", INT),
                    Attribute("price", REAL),
                ),
            ),
        ],
        foreign_keys=[
            ForeignKey("product_category", "Product", "category", "Category", "id"),
            ForeignKey("product_color", "Product", "color", "Color", "id"),
            ForeignKey("product_feature", "Product", "feature", "Feature", "id"),
        ],
    )
    database = Database(schema)
    database.load(
        {
            "Category": [(1, "candle"), (2, "oil"), (3, "diffuser"), (4, "soap")],
            "Color": [
                (1, "red", "crimson scarlet"),
                (2, "yellow", "golden amber"),
                (3, "white", "ivory cream"),
                # The saffron color exists in the vocabulary, but no product
                # is linked to it -- the Figure-2 situation.
                (4, "saffron", "deep gold"),
            ],
            "Feature": [
                (1, "scent", "saffron blossom"),
                (2, "scent", "vanilla bean"),
                (3, "scent", "sandalwood"),
                (4, "wax", "soy"),
            ],
            "Product": [
                (1, "saffron blossom oil", 2, None, 1, 12.50),
                (2, "vanilla pillar candle scented", 1, 2, 2, 8.00),
                (3, "sandalwood scented candle", 1, 3, 3, 9.00),
                (4, "amber glow candle scented", 1, 2, 2, 7.50),
                (5, "saffron soap bar", 4, 2, 1, 4.00),
            ],
        }
    )
    database.validate()
    return database


def show(report, heading: str) -> None:
    print(heading)
    print("-" * len(heading))
    print(report.render(max_items=12))
    print()


def main() -> None:
    database = build_catalog()
    query = "saffron scented candle"

    debugger = NonAnswerDebugger(database, max_joins=2, strategy="tdwr")
    before = debugger.debug(query)
    show(before, f'Before the fix: "{query}"')

    # The color-interpretation MPANs say: scented candles exist, the saffron
    # keyword exists (as a Feature and in Product names), but nothing links
    # them through Color.  The paper's suggested fix: make "saffron" a
    # synonym of yellow.
    color_non_answers = [
        q
        for q, _ in before.explanations()
        if any(i.relation == "Color" for i, _ in q.bindings)
    ]
    print(
        f"{len(color_non_answers)} non-answer(s) blame the Color table; "
        "applying the vocabulary fix: saffron -> synonym of yellow\n"
    )
    yellow = database.table("Color").row(1)
    assert yellow[1] == "yellow"
    # Rebuild the row with the extended synonym list (tables are
    # append-mostly; a real deployment would UPDATE the row).
    rebuilt = Database(database.schema)
    for table in database.iter_tables():
        for row in table:
            if table.relation.name == "Color" and row[0] == yellow[0]:
                row = (row[0], row[1], row[2] + " saffron")
            rebuilt.insert(table.relation.name, row)

    fixed = NonAnswerDebugger(rebuilt, max_joins=2, strategy="tdwr")
    after = fixed.debug(query)
    show(after, f'After the fix: "{query}"')

    gained = len(after.answers()) - len(before.answers())
    print(f"The fix turned {gained} non-answer(s) into answer queries.")
    sellable = set()
    for answer in after.answers():
        if any(i.relation == "Color" for i, _ in answer.bindings):
            for witness in fixed.witnesses(answer, limit=3):
                for key, values in witness.items():
                    if key.startswith("Product") and "name" in values:
                        sellable.add(values["name"])
    for name in sorted(sellable):
        print(f"  now sellable: {name!r}")


if __name__ == "__main__":
    main()
