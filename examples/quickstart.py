#!/usr/bin/env python3
"""Quickstart: Example 1 of the paper on the Figure-2 product database.

Run with::

    python examples/quickstart.py

A shopper searches a product catalog for "saffron scented candle".  The
classic keyword-search system finds some answers but silently drops the two
interesting interpretations (saffron as a color, saffron as a scent) because
their SQL queries return no rows.  The non-answer debugger exposes those
dead queries together with their *maximal alive sub-queries* (MPANs), which
tell the developer exactly where each query stops producing results.
"""

from repro import NonAnswerDebugger, product_database
from repro.kws.discover import ClassicKWSSystem


def main() -> None:
    database = product_database()
    print("The Figure-2 product database:")
    print(database.summary())
    print()

    query = "saffron scented candle"

    # --- What a classic KWS-S system shows the user -----------------------
    classic = ClassicKWSSystem(database, max_joins=2)
    answer = classic.search(query)
    print(f'Classic keyword search for "{query}":')
    for bound in answer.answers:
        print(f"  + {bound.describe()}")
    print(
        f"  ({answer.candidate_networks} candidate networks generated, "
        f"only {len(answer.answers)} returned -- the rest vanished)\n"
    )

    # --- What the non-answer debugger shows the developer -----------------
    debugger = NonAnswerDebugger(database, max_joins=2, strategy="sbh")
    report = debugger.debug(query)
    print(report.render(max_items=20))
    print()

    # --- Why the MPANs matter ---------------------------------------------
    print("Reading the explanations:")
    for non_answer, mpans in report.explanations():
        relations = sorted({i.relation for i, _ in non_answer.bindings})
        if relations == ["Color", "Item", "ProductType"]:
            print(f"  q1 = {non_answer.describe()}")
            print(
                "     Every keyword occurs in the data, but no item has the"
                " saffron *color*.  The MPANs below say scented candles and"
                " the saffron color row both exist -- only the join is empty,"
                " so adding 'saffron' as a synonym of an existing color"
                " would immediately produce answers (see"
                " examples/ecommerce_catalog.py)."
            )
        elif relations == ["Attribute", "Item", "ProductType"]:
            print(f"  q2 = {non_answer.describe()}")
            print(
                "     The store carries scented candles and saffron-scented"
                " products, just no saffron-scented *candles* -- useful"
                " merchandising information."
            )
        else:
            continue
        for mpan in mpans:
            witnesses = debugger.witnesses(mpan, limit=1)
            sample = ""
            if witnesses:
                first = next(iter(witnesses[0].values()))
                name = first.get("name") or first.get("value")
                if name:
                    sample = f"   e.g. {name!r}"
            print(f"       alive sub-query: {mpan.describe()}{sample}")
    print()
    print(
        f"SQL effort for the whole diagnosis: {report.traversal.stats}"
    )


if __name__ == "__main__":
    main()
