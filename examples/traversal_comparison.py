#!/usr/bin/env python3
"""Comparing the five traversal strategies and the two baselines.

Run with::

    python examples/traversal_comparison.py ["keyword query"]

For one keyword query over the synthetic DBLife snapshot, this runs

* the five lattice traversals (BU, TD, BUWR, TDWR, SBH) -- identical
  answers/MPANs, very different SQL bills;
* the Return-Nothing baseline (re-submit every keyword subset);
* the Return-Everything baseline (evaluate every sub-query of every
  non-answer, no lattice inference);

and prints the §3.4/§3.8-style cost table, demonstrating on live data why
the lattice + score-based heuristic is the configuration the paper lands on.
"""

import sys

from repro import (
    DBLifeConfig,
    NonAnswerDebugger,
    ReturnEverything,
    ReturnNothing,
    dblife_database,
)
from repro.bench.cost_model import SimpleCostModel
from repro.core.traversal import STRATEGY_NAMES, get_strategy


def main() -> None:
    text = sys.argv[1] if len(sys.argv) > 1 else "Agrawal Chaudhuri Das"
    database = dblife_database(DBLifeConfig(seed=42, scale=1))
    debugger = NonAnswerDebugger(
        database, max_joins=4, use_lattice=False
    )
    debugger.cost_model = SimpleCostModel(database, debugger.index)

    print(f'Keyword query: "{text}" (up to 4 joins)')
    mapping = debugger.map_keywords(text)
    if not mapping.complete:
        print(f"keywords not in the data: {', '.join(mapping.missing_keywords)}")
        return
    graph = debugger.build_graph(debugger.prune(mapping))
    print(
        f"{len(mapping.interpretations)} interpretations, "
        f"{len(graph.mtn_indexes)} candidate networks, "
        f"{len(graph)} sub-queries to reason about, "
        f"{graph.reuse_percentage():.1f}% descendant overlap\n"
    )

    rows = []
    signature = None
    for name in STRATEGY_NAMES:
        strategy = get_strategy(name)
        evaluator = debugger.make_evaluator(use_cache=strategy.uses_reuse)
        result = strategy.run(graph, evaluator, database)
        if signature is None:
            signature = result.classification_signature()
        assert result.classification_signature() == signature, (
            "strategies must agree on answers and MPANs"
        )
        rows.append(
            (
                name.upper(),
                result.stats.queries_executed,
                result.stats.simulated_time,
                f"{len(result.alive_mtns)} alive / {len(result.dead_mtns)} dead, "
                f"{result.mpan_pair_count} MPANs",
            )
        )

    rn = ReturnNothing(debugger).run(text)
    rows.append(("RN", rn.stats.queries_executed, rn.stats.simulated_time,
                 f"{len(rn.detail['submissions'])} re-submissions"))
    re_ = ReturnEverything(debugger).run(text)
    rows.append(("RE", re_.stats.queries_executed, re_.stats.simulated_time,
                 "no inference, no reuse"))

    print(f"{'approach':<8} {'#SQL':>8} {'sim. time':>12}   outcome")
    print("-" * 70)
    for name, count, sim, outcome in rows:
        print(f"{name:<8} {count:>8} {sim:>10.2f} s   {outcome}")
    print(
        "\nAll five traversals return identical answers and explanations; "
        "they only differ in how many SQL probes they spend getting there."
    )


if __name__ == "__main__":
    main()
