#!/usr/bin/env python3
"""Debugging the paper's DBLife workload (Table 2).

Run with::

    python examples/dblife_debugging.py [scale]

Generates the synthetic DBLife snapshot (5 entity + 9 relationship tables,
star-shaped around Person), then walks the two queries the paper highlights
as "empty at low join depths, alive with more hops":

* Q4 "DeRose VLDB" -- DeRose has no direct VLDB relationship (no committee
  service, no tutorial), so every 3-instance candidate network is dead; at 5
  instances the system finds the live path through a coauthor.
* Q6 "DeWitt tutorial" -- DeWitt wrote no tutorial, but a coauthor did.

For each level the script prints the answers, the non-answers, and the
MPANs that explain them -- the exact output a DBLife maintainer would read.
"""

import sys

from repro import DBLifeConfig, NonAnswerDebugger, dblife_database
from repro.workloads.queries import query_by_id


def debug_at_level(database, text: str, level: int) -> None:
    debugger = NonAnswerDebugger(
        database, max_joins=level - 1, use_lattice=False, strategy="tdwr"
    )
    report = debugger.debug(text)
    answers = report.answers()
    explanations = report.explanations()
    print(f"  level {level}: {report.mtn_count} candidate networks, "
          f"{len(answers)} alive, {len(explanations)} dead "
          f"({report.traversal.stats.queries_executed} SQL queries)")
    for query in answers[:3]:
        print(f"    + {query.describe()}")
    for query, mpans in explanations[:2]:
        print(f"    - {query.describe()}")
        for mpan in mpans[:3]:
            print(f"        alive up to: {mpan.describe()}")
    if len(explanations) > 2:
        print(f"    ... and {len(explanations) - 2} more non-answers")


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(f"Generating synthetic DBLife snapshot (scale={scale})...")
    database = dblife_database(DBLifeConfig(seed=42, scale=scale))
    print(database.summary())
    print()

    for qid in ("Q4", "Q6"):
        workload_query = query_by_id(qid)
        print(f'{qid}: "{workload_query.text}" -- {workload_query.note}')
        for level in (3, 5):
            debug_at_level(database, workload_query.text, level)
        print()

    # The ambiguous query: 'Washington' lives in three different tables.
    q8 = query_by_id("Q8")
    print(f'{q8.qid}: "{q8.text}" -- {q8.note}')
    debugger = NonAnswerDebugger(database, max_joins=4, use_lattice=False,
                                 strategy="sbh")
    report = debugger.debug(q8.text)
    print(f"  {len(report.mapping.interpretations)} interpretations "
          f"(washington -> "
          f"{', '.join(report.mapping.relations_by_keyword['washington'])})")
    print(f"  {report.mtn_count} candidate networks, "
          f"{len(report.answers())} alive, "
          f"{len(report.non_answers())} dead")
    print(f"  diagnosis cost: {report.traversal.stats}")


if __name__ == "__main__":
    main()
