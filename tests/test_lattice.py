"""Unit tests for lattice generation (Phase 0, Algorithm 1)."""

import pytest

from repro.core.lattice import generate_lattice
from repro.relational.jointree import RelationInstance
from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaGraph,
)

INT = AttributeType.INTEGER
TEXT = AttributeType.TEXT


@pytest.fixture(scope="module")
def rs_schema():
    """The paper's Example 2: R(a, b) and S(c, d) with R.b = S.c."""
    relations = [
        Relation("R", (Attribute("a", TEXT), Attribute("b", INT))),
        Relation("S", (Attribute("c", INT), Attribute("d", TEXT))),
    ]
    return SchemaGraph.build(relations, [ForeignKey("rb_sc", "R", "b", "S", "c")])


class TestExample2:
    def test_figure4_shape_without_slot_pruning(self, rs_schema):
        """m=1 without free copies or slot pruning: Figure 4 exactly."""
        lattice = generate_lattice(
            rs_schema, 1, distinct_slots=False, free_copies=False
        )
        assert lattice.stats.nodes_per_level == [4, 4]  # R1 R2 S1 S2; 4 joins
        level2 = {node.tree.describe() for node in lattice.level_nodes(2)}
        assert level2 == {
            "R[1] ⋈ S[1]",
            "R[1] ⋈ S[2]",
            "R[2] ⋈ S[1]",
            "R[2] ⋈ S[2]",
        }

    def test_distinct_slots_drop_unreachable_combinations(self, rs_schema):
        lattice = generate_lattice(rs_schema, 1, free_copies=False)
        level2 = {node.tree.describe() for node in lattice.level_nodes(2)}
        # R1⋈S1 and R2⋈S2 can never be retained by any query.
        assert level2 == {"R[1] ⋈ S[2]", "R[2] ⋈ S[1]"}

    def test_free_copies_add_r0_s0(self, rs_schema):
        lattice = generate_lattice(rs_schema, 1)
        base = {node.tree.describe() for node in lattice.base_nodes()}
        assert "R[0]" in base and "S[0]" in base

    def test_duplicates_counted(self, rs_schema):
        lattice = generate_lattice(rs_schema, 1, distinct_slots=False,
                                   free_copies=False)
        # Every level-2 tree is generated twice (once from each endpoint).
        assert lattice.stats.duplicates_per_level == [0, 4]
        assert 0 < lattice.stats.duplicate_fraction < 1


class TestInvariants:
    def test_levels_and_sizes(self, products_debugger):
        lattice = products_debugger.lattice
        for level in range(1, lattice.levels + 1):
            for node in lattice.level_nodes(level):
                assert node.tree.size == level
                assert node.level == level

    def test_children_are_leaf_removals(self, products_debugger):
        lattice = products_debugger.lattice
        for node in lattice.level_nodes(3):
            child_trees = {child.instances for child in node.tree.child_subtrees()}
            linked = {
                lattice.node(child_id).tree.instances for child_id in node.children
            }
            assert child_trees == linked

    def test_every_subtree_is_a_lattice_node(self, products_debugger):
        """Downward closure: Phase 1's upward walk depends on it."""
        lattice = products_debugger.lattice
        for node in lattice.level_nodes(lattice.levels):
            for subtree in node.tree.connected_subtrees():
                assert lattice.lookup(subtree) is not None

    def test_parent_links_are_symmetric(self, products_debugger):
        lattice = products_debugger.lattice
        for node in lattice.iter_nodes():
            for parent_id in node.parents:
                assert node.node_id in lattice.node(parent_id).children

    def test_no_duplicate_trees(self, products_debugger):
        lattice = products_debugger.lattice
        trees = [node.tree for node in lattice.iter_nodes()]
        assert len(set(trees)) == len(trees)

    def test_distinct_slots_enforced(self, products_debugger):
        for node in products_debugger.lattice.iter_nodes():
            slots = [
                instance.copy
                for instance in node.tree.instances
                if not instance.is_free
            ]
            assert len(slots) == len(set(slots))

    def test_max_keywords_caps_slots(self, products_db):
        lattice = generate_lattice(products_db.schema, 2, max_keywords=1)
        for node in lattice.iter_nodes():
            slots = {i.copy for i in node.tree.instances if not i.is_free}
            assert slots <= {1}

    def test_stats_consistency(self, products_debugger):
        stats = products_debugger.lattice.stats
        assert stats.total_nodes == len(products_debugger.lattice)
        assert len(stats.time_per_level) == stats.levels
        assert stats.total_time >= 0

    def test_copies_of(self, products_debugger):
        copies = products_debugger.lattice.copies_of("Item")
        assert copies[0] == RelationInstance("Item", 0)
        assert len(copies) == products_debugger.lattice.max_keywords + 1

    def test_invalid_arguments(self, products_db):
        with pytest.raises(ValueError):
            generate_lattice(products_db.schema, -1)
        with pytest.raises(ValueError):
            generate_lattice(products_db.schema, 1, max_keywords=0)
