"""Unit tests for the diagnostic framework (codes, report, JSON)."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODE_REGISTRY,
    Diagnostic,
    DiagnosticReport,
    Severity,
    describe_codes,
)


def test_registry_covers_documented_codes():
    expected = {
        "PLAN001", "PLAN002", "PLAN003", "PLAN004", "PLAN005",
        "PLAN006", "PLAN007", "SQL001", "SQL002",
        "LINT001", "LINT002", "LINT003",
    }
    assert expected <= set(CODE_REGISTRY)
    for code, slug, summary in describe_codes():
        assert code in CODE_REGISTRY
        assert slug and summary


def test_unregistered_code_rejected():
    with pytest.raises(ValueError, match="unregistered"):
        Diagnostic("PLAN999", "nope", "nowhere")


def test_diagnostic_render_and_slug():
    diagnostic = Diagnostic(
        "PLAN002", "not a tree", "lattice node 3", hint="rebuild it"
    )
    assert diagnostic.slug == "disconnected-tree"
    rendered = diagnostic.render()
    assert "PLAN002" in rendered
    assert "disconnected-tree" in rendered
    assert "lattice node 3" in rendered
    assert "rebuild it" in rendered


def test_report_severity_partitions():
    report = DiagnosticReport()
    report.add(Diagnostic("PLAN001", "bad edge", "n1"))
    report.add(
        Diagnostic("PLAN006", "free leaf", "cn0", severity=Severity.WARNING)
    )
    assert len(report) == 2
    assert len(report.errors()) == 1
    assert len(report.warnings()) == 1
    assert not report.ok
    assert report.codes == {"PLAN001", "PLAN006"}
    assert [d.code for d in report.by_code("PLAN001")] == ["PLAN001"]


def test_warnings_only_report_is_ok():
    report = DiagnosticReport()
    report.add(Diagnostic("PLAN006", "free leaf", "cn0", severity=Severity.WARNING))
    assert report.ok


def test_report_merge_and_json_roundtrip():
    first = DiagnosticReport()
    first.add(Diagnostic("SQL002", "does not prepare", "template 7"))
    second = DiagnosticReport()
    second.merge(first)
    payload = json.loads(second.to_json())
    assert payload["ok"] is False
    assert payload["errors"] == 1
    assert payload["diagnostics"][0]["code"] == "SQL002"
    assert payload["diagnostics"][0]["slug"] == "template-fails-sqlite-prepare"


def test_report_render_truncates():
    report = DiagnosticReport()
    for index in range(5):
        report.add(Diagnostic("PLAN002", "broken", f"node {index}"))
    rendered = report.render(max_items=2)
    assert "and 3 more" in rendered
    assert "5 error(s)" in rendered
