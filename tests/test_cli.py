"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_debug_defaults(self):
        args = build_parser().parse_args(["debug", "red candle"])
        assert args.dataset == "products"
        assert args.strategy == "sbh"
        assert args.level == 3

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "fig11"])
        assert args.experiment == "fig11"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "red candle"])
        assert args.strategy == "sbh"
        assert args.budget_queries == 0
        assert args.budget_simulated == 0.0
        assert args.output is None
        assert not args.summary

    def test_trace_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "red candle", "--strategy", "xx"])

    def test_executor_defaults_and_choices(self):
        args = build_parser().parse_args(["debug", "red candle"])
        assert args.executor == "threads"
        assert args.workers == 0 and args.shards == 0
        args = build_parser().parse_args(
            ["trace", "red candle", "--executor", "processes", "--shards", "3"]
        )
        assert args.executor == "processes" and args.shards == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["debug", "red candle", "--executor", "fibers"]
            )


class TestCommands:
    def test_debug_products(self, capsys):
        assert main(["debug", "saffron scented candle"]) == 0
        out = capsys.readouterr().out
        assert "non-answer queries" in out
        assert "maximal alive sub-query" in out

    def test_debug_with_strategy_and_direct(self, capsys):
        assert main(["debug", "red candle", "--strategy", "tdwr", "--direct"]) == 0
        assert "answer queries" in capsys.readouterr().out

    def test_debug_with_process_executor(self, capsys):
        assert (
            main(
                [
                    "debug",
                    "saffron scented candle",
                    "--strategy",
                    "buwr",
                    "--executor",
                    "processes",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "non-answer queries" in out
        assert "shard failure" not in out

    def test_search_answers(self, capsys):
        assert main(["search", "scented candle"]) == 0
        assert "Classic KWS-S" in capsys.readouterr().out

    def test_search_non_answer(self, capsys):
        assert main(["search", "pink scented"]) == 0
        assert "No results found!" in capsys.readouterr().out

    def test_inspect(self, capsys):
        assert main(["inspect", "--dataset", "products"]) == 0
        out = capsys.readouterr().out
        assert "4 tables" in out
        assert "inverted index" in out

    def test_bench_small(self, capsys):
        assert main(["bench", "fig9a", "--scale", "1", "--level", "3"]) == 0
        assert "Figure 9(a)" in capsys.readouterr().out

    def test_debug_dblife(self, capsys):
        assert (
            main(["debug", "Gray SIGMOD", "--dataset", "dblife", "--direct"]) == 0
        )
        assert "answer queries" in capsys.readouterr().out

    def test_debug_diagnose_and_rank(self, capsys):
        assert main(
            ["debug", "saffron scented candle", "--diagnose", "--rank"]
        ) == 0
        out = capsys.readouterr().out
        assert "breaks at:" in out
        assert "Prioritized explanations" in out

    def test_debug_save_report(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(["debug", "red candle", "--save-report", str(path)]) == 0
        assert path.exists()
        assert "report saved" in capsys.readouterr().out

    def test_debug_free_copies(self, capsys):
        assert main(
            ["debug", "saffron scented candle", "--direct", "--free-copies", "2"]
        ) == 0
        assert "answer queries" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_stdout_is_valid_jsonl(self, capsys):
        from repro.obs.trace import validate_trace_lines

        assert main(["trace", "saffron scented candle"]) == 0
        captured = capsys.readouterr()
        counts = validate_trace_lines(captured.out.splitlines())
        assert counts["span"] > 0 and counts["event"] >= 2
        assert "trace:" in captured.err  # status stays off stdout

    def test_trace_output_file(self, capsys, tmp_path):
        from repro.obs.trace import validate_trace_file

        path = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "saffron scented candle", "--output", str(path)]
        ) == 0
        counts = validate_trace_file(str(path))
        assert counts["span"] > 0
        assert "wrote" in capsys.readouterr().out

    def test_trace_span_count_matches_executed_queries(self, capsys):
        import json

        assert main(["trace", "saffron scented candle", "--strategy", "buwr"]) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        executed = sum(
            1 for r in records if r["kind"] == "span" and not r["cache_hit"]
        )
        end = next(r for r in records if r.get("name") == "traversal_end")
        assert executed == end["queries_executed"]

    def test_trace_budget_bounds_executions_and_reports(self, capsys):
        import json

        assert main(
            ["trace", "saffron scented candle", "--budget-queries", "1"]
        ) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        executed = [
            r for r in records if r["kind"] == "span" and not r["cache_hit"]
        ]
        assert len(executed) <= 1
        assert any(r.get("name") == "budget_exhausted" for r in records)
        assert "budget exhausted" in captured.err

    def test_trace_summary_tables(self, capsys):
        assert main(["trace", "saffron scented candle", "--summary"]) == 0
        err = capsys.readouterr().err
        assert "Probe spans by lattice level" in err
        assert "Probe spans by traversal strategy" in err

    def test_trace_dblife_direct(self, capsys):
        assert main(
            [
                "trace",
                "Gray SIGMOD",
                "--dataset",
                "dblife",
                "--direct",
                "--strategy",
                "tdwr",
            ]
        ) == 0
        assert "trace:" in capsys.readouterr().err

    def test_bench_trace_writes_jsonl(self, capsys, tmp_path):
        from repro.obs.trace import validate_trace_file

        path = tmp_path / "bench-trace.jsonl"
        assert main(
            ["bench", "fig11", "--scale", "1", "--level", "3", "--trace", str(path)]
        ) == 0
        counts = validate_trace_file(str(path))
        assert counts["span"] > 0 and counts["event"] >= 2
        assert "wrote" in capsys.readouterr().out


class TestLintCommand:
    def test_lint_clean_repo_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        import json

        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_lint_dblife_lattice(self, capsys):
        assert main(["lint", "--dataset", "dblife", "--no-repo"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_layers_can_be_skipped(self, capsys):
        assert main(["lint", "--no-plan", "--no-repo"]) == 0
        capsys.readouterr()

    def test_lint_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "lint" in capsys.readouterr().out

    def test_lint_corrupted_lattice_exits_nonzero_with_code(
        self, capsys, monkeypatch
    ):
        import json

        import repro.analysis.runner as runner
        from repro.core.lattice import generate_lattice

        def corrupt_lattice(schema, max_joins, **kwargs):
            lattice = generate_lattice(schema, max_joins, **kwargs)
            victim = next(n for n in lattice.iter_nodes() if n.parents)
            lattice.node(victim.parents[0]).children.remove(victim.node_id)
            return lattice

        monkeypatch.setattr(runner, "generate_lattice", corrupt_lattice)
        assert main(["lint", "--json", "--no-repo"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "PLAN007" in {d["code"] for d in payload["diagnostics"]}


class TestLintContract:
    """Exit codes: 0 = clean, 1 = diagnostics, 2 = internal error."""

    def test_family_selection_runs_clean(self, capsys):
        assert main(["lint", "--no-plan", "--select", "CONC,RES"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_unknown_family_is_internal_error(self, capsys):
        assert main(["lint", "--select", "BOGUS"]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_crashing_pass_is_internal_error(self, capsys, monkeypatch):
        import repro.analysis.runner as runner

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(runner, "lint_files", explode)
        assert main(["lint", "--no-plan"]) == 2
        assert "boom" in capsys.readouterr().err

    def test_findings_exit_one_with_valid_json(self, capsys, tmp_path):
        import json

        from repro.analysis import validate_lint_report

        bad = tmp_path / "repro" / "backends"
        bad.mkdir(parents=True)
        (bad / "leaky.py").write_text(
            "import threading\n\n"
            "def hold(lock: threading.Lock) -> None:\n"
            "    lock.acquire()\n"
            "    print(1)\n",
            encoding="utf-8",
        )
        assert (
            main(
                [
                    "lint", "--json", "--no-plan",
                    "--src-root", str(tmp_path),
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        counts = validate_lint_report(payload)
        assert counts["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "CONC002"

    def test_clean_json_passes_schema(self, capsys):
        import json

        from repro.analysis import LINT_REPORT_VERSION, validate_lint_report

        assert main(["lint", "--json", "--no-plan"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == LINT_REPORT_VERSION
        assert validate_lint_report(payload) == {"errors": 0, "warnings": 0}


class TestTraceCheck:
    """`repro trace check FILE` validates schema + runtime invariants."""

    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace", "saffron scented candle",
                    "--strategy", "buwr",
                    "--budget-queries", "50",
                    "--output", str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return path

    def test_fresh_trace_is_clean(self, trace_file, capsys):
        assert (
            main(
                [
                    "trace", "check", str(trace_file),
                    "--budget-queries", "50",
                ]
            )
            == 0
        )
        assert "0 invariant violation(s)" in capsys.readouterr().err

    def test_violated_trace_exits_one(self, trace_file, capsys):
        import json

        records = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
            if line.strip()
        ]
        spans = [r for r in records if r["kind"] == "span"]
        assert len(spans) >= 2
        spans[-1]["budget_remaining"] = spans[0]["budget_remaining"] + 5
        trace_file.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        assert main(["trace", "check", str(trace_file)]) == 1
        captured = capsys.readouterr()
        assert "budget-monotone" in captured.out
        assert "1 invariant violation(s)" in captured.err

    def test_schema_error_exits_one(self, tmp_path, capsys):
        mangled = tmp_path / "bad.jsonl"
        mangled.write_text('{"kind": "span", "seq": 0}\n', encoding="utf-8")
        assert main(["trace", "check", str(mangled)]) == 1
        assert "schema error" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["trace", "check", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_check_without_path_exits_two(self, capsys):
        assert main(["trace", "check"]) == 2
        assert "missing trace file" in capsys.readouterr().err

    def test_path_with_non_check_query_exits_two(self, trace_file, capsys):
        assert main(["trace", "red candle", str(trace_file)]) == 2
        capsys.readouterr()
