"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_debug_defaults(self):
        args = build_parser().parse_args(["debug", "red candle"])
        assert args.dataset == "products"
        assert args.strategy == "sbh"
        assert args.level == 3

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "fig11"])
        assert args.experiment == "fig11"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_debug_products(self, capsys):
        assert main(["debug", "saffron scented candle"]) == 0
        out = capsys.readouterr().out
        assert "non-answer queries" in out
        assert "maximal alive sub-query" in out

    def test_debug_with_strategy_and_direct(self, capsys):
        assert main(["debug", "red candle", "--strategy", "tdwr", "--direct"]) == 0
        assert "answer queries" in capsys.readouterr().out

    def test_search_answers(self, capsys):
        assert main(["search", "scented candle"]) == 0
        assert "Classic KWS-S" in capsys.readouterr().out

    def test_search_non_answer(self, capsys):
        assert main(["search", "pink scented"]) == 0
        assert "No results found!" in capsys.readouterr().out

    def test_inspect(self, capsys):
        assert main(["inspect", "--dataset", "products"]) == 0
        out = capsys.readouterr().out
        assert "4 tables" in out
        assert "inverted index" in out

    def test_bench_small(self, capsys):
        assert main(["bench", "fig9a", "--scale", "1", "--level", "3"]) == 0
        assert "Figure 9(a)" in capsys.readouterr().out

    def test_debug_dblife(self, capsys):
        assert (
            main(["debug", "Gray SIGMOD", "--dataset", "dblife", "--direct"]) == 0
        )
        assert "answer queries" in capsys.readouterr().out

    def test_debug_diagnose_and_rank(self, capsys):
        assert main(
            ["debug", "saffron scented candle", "--diagnose", "--rank"]
        ) == 0
        out = capsys.readouterr().out
        assert "breaks at:" in out
        assert "Prioritized explanations" in out

    def test_debug_save_report(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(["debug", "red candle", "--save-report", str(path)]) == 0
        assert path.exists()
        assert "report saved" in capsys.readouterr().out

    def test_debug_free_copies(self, capsys):
        assert main(
            ["debug", "saffron scented candle", "--direct", "--free-copies", "2"]
        ) == 0
        assert "answer queries" in capsys.readouterr().out


class TestLintCommand:
    def test_lint_clean_repo_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        import json

        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_lint_dblife_lattice(self, capsys):
        assert main(["lint", "--dataset", "dblife", "--no-repo"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_layers_can_be_skipped(self, capsys):
        assert main(["lint", "--no-plan", "--no-repo"]) == 0
        capsys.readouterr()

    def test_lint_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "lint" in capsys.readouterr().out

    def test_lint_corrupted_lattice_exits_nonzero_with_code(
        self, capsys, monkeypatch
    ):
        import json

        import repro.analysis.runner as runner
        from repro.core.lattice import generate_lattice

        def corrupt_lattice(schema, max_joins, **kwargs):
            lattice = generate_lattice(schema, max_joins, **kwargs)
            victim = next(n for n in lattice.iter_nodes() if n.parents)
            lattice.node(victim.parents[0]).children.remove(victim.node_id)
            return lattice

        monkeypatch.setattr(runner, "generate_lattice", corrupt_lattice)
        assert main(["lint", "--json", "--no-repo"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "PLAN007" in {d["code"] for d in payload["diagnostics"]}
