"""Scale-sweep machinery: bench smoke, determinism, streaming equivalence.

The full ``repro bench scale`` sweep (10^4 -> 10^6 tuples) runs in CI;
these tests exercise the same code paths at toy sizes so a regression in
the harness, the generator's determinism contract, or the streaming
semi-join is caught in seconds, not minutes.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.bench.scale import run_scale_bench
from repro.core.debugger import NonAnswerDebugger
from repro.datasets.dblife import (
    DBLifeConfig,
    SyntheticGenerator,
    dblife_database,
    scale_for_tuples,
)
from repro.index import create_index


class TestScaleBench:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_scale_bench(targets=(1_000, 3_000), seed=42)

    def test_signatures_match_across_backends(self, outcome):
        _, payload = outcome
        assert payload["gates"]["signatures_match"]
        for scale in payload["scales"].values():
            assert scale["signatures_match"]

    def test_payload_shape(self, outcome):
        table, payload = outcome
        assert payload["targets"] == [1_000, 3_000]
        assert set(payload["scales"]) == {"1000", "3000"}
        for scale in payload["scales"].values():
            assert set(scale["backends"]) == {"memory", "sqlite"}
            for cell in scale["backends"].values():
                assert cell["probes"] > 0
                assert cell["build_s"] >= 0.0
                assert cell["high_water_bytes"] >= cell["probe_high_water_bytes"]
        assert "passed" in payload
        rendered = table.render()
        assert "memory" in rendered and "sqlite" in rendered

    def test_gates_present(self, outcome):
        _, payload = outcome
        gates = payload["gates"]
        assert set(gates) >= {
            "signatures_match",
            "memory_ceiling",
            "memory_ceiling_ratio",
            "throughput_parity",
            "throughput_parity_ratio",
        }


class TestSyntheticDeterminism:
    """The generator's output is a pure function of its config.

    ``repro bench scale`` regenerates each snapshot per run and the
    sqlite index persists fingerprints across processes, so a generator
    that varied under hash randomization would silently invalidate every
    cached artifact.  The cross-process check spawns fresh interpreters
    with *different* ``PYTHONHASHSEED`` values and compares content
    fingerprints.
    """

    SNIPPET = (
        "from repro.datasets.dblife import DBLifeConfig, dblife_database;"
        "print(dblife_database(DBLifeConfig(seed=%d, scale=%d)).fingerprint())"
    )

    def _subprocess_fingerprint(self, seed: int, scale: int, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath("src"), env.get("PYTHONPATH", "")]
        )
        result = subprocess.run(
            [sys.executable, "-c", self.SNIPPET % (seed, scale)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout.strip()

    def test_same_config_same_snapshot_in_process(self):
        config = DBLifeConfig(seed=7, scale=2)
        first = SyntheticGenerator(config).generate()
        second = SyntheticGenerator(config).generate()
        assert first.fingerprint() == second.fingerprint()

    def test_cross_process_fingerprints_agree(self):
        local = dblife_database(DBLifeConfig(seed=7, scale=2)).fingerprint()
        assert self._subprocess_fingerprint(7, 2, "0") == local
        assert self._subprocess_fingerprint(7, 2, "12345") == local

    def test_scale_for_tuples_is_monotone(self):
        small = scale_for_tuples(5_000)
        large = scale_for_tuples(50_000)
        assert 1 <= small < large


class TestStreamingEquivalence:
    """The streamed semi-join classifies exactly like the classic path.

    ``materialization_cap=0`` forces *every* probe through the streaming
    path; the reports must match a plain in-memory run byte for byte.
    """

    QUERIES = ("Widom Trio", "DeRose VLDB", "Gray SIGMOD", "DeWitt tutorial")

    def _signatures(self, database, **debugger_options):
        debugger = NonAnswerDebugger(
            database, max_joins=2, use_lattice=False, **debugger_options
        )
        try:
            signatures = []
            for text in self.QUERIES:
                report = debugger.debug(text)
                assert report.traversal is not None
                signatures.append(report.traversal.classification_signature())
            return signatures
        finally:
            debugger.close()

    def test_forced_streaming_matches_classic(self, dblife_db):
        classic = self._signatures(dblife_db)
        index = create_index("sqlite", dblife_db)
        try:
            streamed = self._signatures(
                dblife_db,
                index_backend="sqlite",
                index=index,
                backend_options={
                    "streaming_source": index,
                    "materialization_cap": 0,
                },
            )
        finally:
            index.close()
        assert streamed == classic
