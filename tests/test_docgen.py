"""The diagnostics-reference generator and its CI sync check."""

from pathlib import Path

from repro.analysis.diagnostics import CODE_FAMILIES, CODE_REGISTRY
from repro.analysis.docgen import (
    FAMILY_DESCRIPTIONS,
    default_doc_path,
    main,
    render_diagnostics_doc,
)

DOC_PATH = Path(__file__).resolve().parent.parent / "docs" / "DIAGNOSTICS.md"


class TestRendering:
    def test_every_code_and_slug_rendered(self):
        rendered = render_diagnostics_doc()
        for code, info in CODE_REGISTRY.items():
            assert f"### {code}: {info.slug}" in rendered
            assert info.remediation in rendered

    def test_every_family_has_a_section(self):
        assert set(FAMILY_DESCRIPTIONS) == set(CODE_FAMILIES)
        rendered = render_diagnostics_doc()
        for family in CODE_FAMILIES:
            title, _ = FAMILY_DESCRIPTIONS[family]
            assert f"## {family} — {title}" in rendered

    def test_default_path_points_at_repo_docs(self):
        assert default_doc_path() == DOC_PATH


class TestSync:
    def test_committed_doc_matches_registry(self):
        assert DOC_PATH.read_text(encoding="utf-8") == render_diagnostics_doc()

    def test_check_mode_passes_on_committed_doc(self, capsys):
        assert main(["--check"]) == 0
        assert "in sync" in capsys.readouterr().out

    def test_check_mode_fails_on_stale_doc(self, tmp_path, capsys):
        stale = tmp_path / "DIAGNOSTICS.md"
        stale.write_text("# outdated\n", encoding="utf-8")
        assert main(["--check", "--path", str(stale)]) == 1
        assert "out of date" in capsys.readouterr().err

    def test_check_mode_fails_on_missing_doc(self, tmp_path, capsys):
        missing = tmp_path / "absent.md"
        assert main(["--check", "--path", str(missing)]) == 1
        capsys.readouterr()

    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "DIAGNOSTICS.md"
        assert main(["--write", "--path", str(target)]) == 0
        assert main(["--check", "--path", str(target)]) == 0
        assert target.read_text(encoding="utf-8") == render_diagnostics_doc()
        capsys.readouterr()

    def test_bare_invocation_prints_doc(self, capsys):
        assert main([]) == 0
        assert "# Diagnostic codes" in capsys.readouterr().out
