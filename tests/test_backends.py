"""Tests for the pluggable backend layer: pool, registry, conformance."""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backends import (
    AlivenessBackend,
    BackendCapabilities,
    BackendRegistryError,
    ConnectionPool,
    PoolError,
    PoolTimeout,
    backend_names,
    create_backend,
    get_backend_spec,
    register_backend,
)
from repro.backends.conformance import ConformanceFailure, check_backend
from repro.backends.registry import _REGISTRY
from repro.parallel import ParallelProbeExecutor
from repro.relational.engine import InMemoryEngine
from repro.relational.evaluator import InstrumentedEvaluator
from repro.relational.sqlite_backend import SqliteEngine


class Resource:
    """Pool fake: tracks exclusive use and closure."""

    _ids = itertools.count()

    def __init__(self):
        self.id = next(self._ids)
        self.busy = threading.Lock()
        self.closed = False

    def close(self):
        self.closed = True


@pytest.fixture()
def products_probes(products_debugger):
    mapping = products_debugger.map_keywords("saffron scented candle")
    graph = products_debugger.build_graph(products_debugger.prune(mapping))
    return [graph.node(index).query for index in range(len(graph))]


# -------------------------------------------------------------------- pool
class TestConnectionPool:
    def test_checkout_creates_then_reuses_lifo(self):
        pool = ConnectionPool(Resource, max_size=4)
        first = pool.checkout()
        second = pool.checkout()
        pool.checkin(second)
        pool.checkin(first)
        # LIFO: the most recently parked connection comes back first.
        assert pool.checkout() is first
        assert pool.checkout() is second
        stats = pool.stats()
        assert stats.created == 2
        assert stats.reused == 2
        assert stats.in_use == 2 and stats.idle == 0

    def test_cap_blocks_until_checkin(self):
        pool = ConnectionPool(Resource, max_size=1)
        held = pool.checkout()
        acquired = []

        def blocked_checkout():
            acquired.append(pool.checkout())

        thread = threading.Thread(target=blocked_checkout)
        thread.start()
        time.sleep(0.05)
        assert not acquired, "checkout must block at the cap"
        pool.checkin(held)
        thread.join(timeout=5)
        assert acquired == [held]
        assert pool.stats().created == 1
        assert pool.stats().waits >= 1

    def test_timeout_raises_pool_timeout(self):
        pool = ConnectionPool(Resource, max_size=1, timeout=0.01)
        pool.checkout()
        with pytest.raises(PoolTimeout):
            pool.checkout()

    def test_idle_recycling(self):
        pool = ConnectionPool(Resource, max_size=2, recycle_after=0.0)
        connection = pool.checkout()
        pool.checkin(connection)
        time.sleep(0.01)  # let the parked connection age past the threshold
        fresh = pool.checkout()
        assert fresh is not connection
        assert connection.closed
        stats = pool.stats()
        assert stats.recycled == 1
        assert stats.created == 2

    def test_foreign_checkin_rejected(self):
        pool = ConnectionPool(Resource, max_size=1)
        with pytest.raises(PoolError, match="not checked out"):
            pool.checkin(Resource())

    def test_close_disposes_idle_and_refuses_checkout(self):
        pool = ConnectionPool(Resource, max_size=2)
        idle = pool.checkout()
        still_out = pool.checkout()
        pool.checkin(idle)
        pool.close()
        pool.close()  # idempotent
        assert idle.closed
        with pytest.raises(PoolError, match="closed"):
            pool.checkout()
        # A connection checked in after close is disposed, not parked.
        pool.checkin(still_out)
        assert still_out.closed
        assert pool.stats().idle == 0

    def test_factory_failure_releases_capacity(self):
        calls = itertools.count()

        def flaky_factory():
            if next(calls) == 0:
                raise RuntimeError("handshake failed")
            return Resource()

        pool = ConnectionPool(flaky_factory, max_size=1)
        with pytest.raises(RuntimeError, match="handshake"):
            pool.checkout()
        # The failed creation must not leak its capacity slot.
        connection = pool.checkout()
        assert isinstance(connection, Resource)
        assert pool.stats().created == 1

    def test_no_resource_shared_across_threads(self):
        pool = ConnectionPool(Resource, max_size=3)
        violations = []

        def hammer():
            for _ in range(40):
                with pool.connection() as resource:
                    if not resource.busy.acquire(blocking=False):
                        violations.append(resource.id)
                    else:
                        time.sleep(0.0002)
                        resource.busy.release()

        with ThreadPoolExecutor(max_workers=8) as workers:
            for future in [workers.submit(hammer) for _ in range(8)]:
                future.result()
        assert not violations, "a pooled resource was used by two threads"
        stats = pool.stats()
        assert stats.created <= 3
        assert stats.max_in_use <= 3
        assert stats.in_use == 0


class TestPooledSqliteUnderParallelExecutor:
    def test_parallel_probes_match_serial_and_respect_cap(
        self, products_db, products_probes
    ):
        with SqliteEngine(products_db, pool_size=3) as engine:
            serial = [engine.is_alive(probe) for probe in products_probes]
            evaluator = InstrumentedEvaluator(engine, use_cache=False)
            with ParallelProbeExecutor(workers=8) as executor:
                batch = evaluator.probe_many(
                    products_probes * 3, executor=executor
                )
            assert batch.results == serial * 3
            stats = engine.pool_stats()
            assert stats.max_in_use <= 3
            assert stats.in_use == 0


# ----------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert {"memory", "simulated", "sqlite"} <= set(names)
        assert names == tuple(sorted(names))

    def test_capabilities_declared(self):
        assert get_backend_spec("memory").capabilities.enumeration
        sqlite_caps = get_backend_spec("sqlite").capabilities
        assert sqlite_caps.thread_safe and sqlite_caps.pooling
        simulated = get_backend_spec("simulated").capabilities
        assert simulated.deterministic_latency
        assert "pooling" in sqlite_caps.describe()

    def test_unknown_backend_is_value_error(self, products_db):
        with pytest.raises(BackendRegistryError, match="registered backends"):
            create_backend("oracle", products_db)
        assert issubclass(BackendRegistryError, ValueError)

    def test_duplicate_registration_refused(self):
        spec = get_backend_spec("memory")
        with pytest.raises(BackendRegistryError, match="already registered"):
            register_backend("memory", spec.factory, spec.capabilities)

    def test_third_party_registration(self, products_db):
        class AlwaysDead:
            def is_alive(self, query):
                return False

        name = "test-always-dead"
        try:
            register_backend(
                name, lambda database, **options: AlwaysDead(),
                BackendCapabilities(),
            )
            backend = create_backend(name, products_db)
            assert isinstance(backend, AlivenessBackend)
        finally:
            _REGISTRY.pop(name, None)

    def test_create_backend_forwards_options(self, products_db):
        backend = create_backend("sqlite", products_db, pool_size=2)
        try:
            assert backend.pool_size == 2
        finally:
            backend.close()

    def test_memory_backend_is_in_memory_engine(self, products_db):
        assert isinstance(create_backend("memory", products_db), InMemoryEngine)


# -------------------------------------------------------------- conformance
class TestConformance:
    @pytest.mark.parametrize("name", backend_names())
    def test_every_registered_backend_conforms(
        self, name, products_db, products_probes
    ):
        checks = check_backend(name, products_db, products_probes[:12])
        assert checks["probes"] == min(12, len(products_probes))
        if get_backend_spec(name).capabilities.thread_safe:
            assert checks["concurrent"] > 0

    def test_lying_backend_fails(self, products_db, products_probes):
        class Liar:
            def is_alive(self, query):
                return False  # the toy DB has alive probes, so this lies

        name = "test-liar"
        try:
            register_backend(
                name, lambda database, **options: Liar(), BackendCapabilities()
            )
            with pytest.raises(ConformanceFailure, match="wrong aliveness"):
                check_backend(name, products_db, products_probes[:12])
        finally:
            _REGISTRY.pop(name, None)

    def test_needs_probes(self, products_db):
        with pytest.raises(ValueError, match="at least one probe"):
            check_backend("memory", products_db, [])
