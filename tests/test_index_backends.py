"""Conformance suite for the index-backend registry (satellite of PR 9).

Every registered backend must answer the same questions identically: the
``sqlite`` index is a different *representation* of the memory index, not
a different semantics.  The suite runs the full lookup surface over both
built-ins and diffs the answers, plus the backend-specific contracts
(persistence, per-relation repair, temp-file cleanup, closed-handle
errors) and the memory-index regression that postings stay lazy.
"""

from __future__ import annotations

import gc

import pytest

from repro.index import (
    IndexBackend,
    IndexRegistryError,
    InvertedIndex,
    Posting,
    SqliteInvertedIndex,
    create_index,
    get_index_spec,
    index_backend_names,
)
from repro.relational.database import Database
from repro.relational.predicates import MatchMode
from repro.relational.schema import (
    Attribute,
    AttributeType,
    Relation,
    SchemaGraph,
)

BACKENDS = ("memory", "sqlite")


@pytest.fixture(params=BACKENDS)
def backend_pair(request, products_db):
    """(reference memory index, index under test) over the toy database."""
    reference = InvertedIndex(products_db)
    index = create_index(request.param, products_db)
    yield reference, index
    index.close()


class TestRegistry:
    def test_builtins_registered(self):
        names = index_backend_names()
        assert "memory" in names and "sqlite" in names

    def test_unknown_backend_raises(self, products_db):
        with pytest.raises(IndexRegistryError, match="unknown index backend"):
            create_index("bogus", products_db)

    def test_capability_declarations(self):
        memory = get_index_spec("memory").capabilities
        sqlite = get_index_spec("sqlite").capabilities
        assert not memory.out_of_core and not memory.streaming
        assert sqlite.persistent and sqlite.out_of_core
        assert sqlite.streaming and sqlite.mutation_repair

    def test_created_indexes_satisfy_protocol(self, backend_pair):
        _, index = backend_pair
        assert isinstance(index, IndexBackend)


class TestConformance:
    """Both backends answer the whole lookup surface identically."""

    KEYWORDS = ("saffron", "candle", "crimson", "scent", "e", "sofa", "")
    MODES = (MatchMode.TOKEN, MatchMode.SUBSTRING)

    def test_vocabulary(self, backend_pair):
        reference, index = backend_pair
        assert index.vocabulary_size == reference.vocabulary_size
        assert sorted(index.tokens()) == sorted(set(reference.tokens()))

    def test_relations_containing(self, backend_pair):
        reference, index = backend_pair
        for keyword in self.KEYWORDS:
            for mode in self.MODES:
                assert index.relations_containing(keyword, mode) == (
                    reference.relations_containing(keyword, mode)
                ), (keyword, mode)

    def test_tuple_sets_and_sizes(self, backend_pair):
        reference, index = backend_pair
        for keyword in self.KEYWORDS:
            for mode in self.MODES:
                for relation in reference.relations_containing(keyword, mode):
                    expected = reference.tuple_set(relation, keyword, mode)
                    assert index.tuple_set(relation, keyword, mode) == expected
                    assert index.tuple_set_size(relation, keyword, mode) == (
                        len(expected)
                    )
                    assert list(index.iter_tuple_set(relation, keyword, mode)) == (
                        sorted(expected)
                    )

    def test_postings(self, backend_pair):
        reference, index = backend_pair
        for keyword in ("crimson", "candle", "scent"):
            for mode in self.MODES:
                assert set(index.postings(keyword, mode)) == set(
                    reference.postings(keyword, mode)
                ), (keyword, mode)

    def test_document_frequency(self, backend_pair):
        reference, index = backend_pair
        for keyword in self.KEYWORDS:
            for mode in self.MODES:
                assert index.document_frequency(keyword, mode) == (
                    reference.document_frequency(keyword, mode)
                ), (keyword, mode)

    def test_provider_signature(self, backend_pair):
        _, index = backend_pair
        assert index.provider("ProductType", "candle", MatchMode.TOKEN) == {1}


class TestCasefoldConformance:
    """STRASSE and straße meet under full case folding on every backend."""

    @pytest.fixture(params=BACKENDS)
    def index(self, request):
        from repro.datasets.products import product_database

        database = product_database()
        database.insert("Color", (50, "STRASSE", "eszett"))
        database.insert("Color", (51, "straße", "sharp s"))
        index = create_index(request.param, database)
        yield index
        index.close()

    def test_both_spellings_fold_to_one_token(self, index):
        expected = index.tuple_set("Color", "strasse")
        assert len(expected) == 2
        for keyword in ("straße", "STRASSE", "Strasse"):
            assert "Color" in index.relations_containing(keyword), keyword
            assert index.tuple_set("Color", keyword) == expected, keyword


class TestReservedRelationNames:
    """Relation names that are SQL keywords never reach SQL as identifiers."""

    @pytest.fixture(params=BACKENDS)
    def index(self, request):
        schema = SchemaGraph.build(
            [
                Relation(
                    "Order",
                    (Attribute("id", AttributeType.INTEGER), Attribute("select")),
                ),
                Relation(
                    "Group",
                    (Attribute("id", AttributeType.INTEGER), Attribute("where")),
                ),
            ],
            [],
        )
        database = Database(schema)
        database.insert("Order", (1, "urgent delivery"))
        database.insert("Group", (1, "delivery team"))
        index = create_index(request.param, database)
        yield index
        index.close()

    def test_lookups_work(self, index):
        assert index.relations_containing("delivery") == ("Group", "Order")
        assert index.tuple_set("Order", "urgent") == {0}
        assert index.tuple_set_size("Group", "delivery") == 1
        postings = index.postings("delivery")
        assert {(p.relation, p.attribute) for p in postings} == {
            ("Order", "select"),
            ("Group", "where"),
        }


class TestSqlitePersistence:
    def test_reopen_reuses_all_relations(self, tmp_path, products_db):
        with SqliteInvertedIndex.open_dir(tmp_path, products_db) as first:
            assert first.build_stats.relations_built > 0
            vocabulary = first.vocabulary_size
        with SqliteInvertedIndex.open_dir(tmp_path, products_db) as second:
            assert second.build_stats.relations_built == 0
            assert second.build_stats.relations_reused > 0
            assert second.vocabulary_size == vocabulary

    def test_mutation_repairs_only_changed_relation(self, tmp_path):
        from repro.datasets.products import product_database

        database = product_database()
        with SqliteInvertedIndex.open_dir(tmp_path, database):
            pass
        database.insert("Color", (99, "ultraviolet", "uv"))
        with SqliteInvertedIndex.open_dir(tmp_path, database) as repaired:
            assert repaired.build_stats.relations_built == 1
            assert repaired.build_stats.relations_reused == (
                len(database.tables) - 1
            )
            new_row = len(database.table("Color")) - 1
            assert new_row in repaired.tuple_set("Color", "ultraviolet")

    def test_unmanaged_index_removes_its_temp_file(self, products_db):
        index = SqliteInvertedIndex(products_db)
        path = index.path
        assert path.exists()
        index.close()
        assert not path.exists()

    def test_closed_index_raises(self, products_db):
        index = SqliteInvertedIndex(products_db)
        index.close()
        index.close()  # idempotent
        with pytest.raises(Exception, match="closed"):
            index.tuple_set("Item", "saffron")


class TestLazyDetailedPostings:
    """Regression: building the memory index allocates no Posting objects.

    The detailed (attribute-carrying) postings are only needed by
    ``postings()`` consumers (diagnosis rendering, IR-style ranking); the
    probe pipeline never asks, so ``_build`` must not pay for them.
    """

    def test_no_postings_until_asked(self, products_db):
        index = InvertedIndex(products_db)
        gc.collect()
        alive = [obj for obj in gc.get_objects() if isinstance(obj, Posting)]
        assert alive == []
        assert not index._detailed_built
        assert index.postings("saffron")  # first detailed ask builds them
        assert index._detailed_built

    def test_detailed_build_is_idempotent(self, products_index):
        first = products_index.postings("crimson")
        second = products_index.postings("crimson")
        assert first == second
