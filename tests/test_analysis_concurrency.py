"""Lock-discipline linter: one firing and one clean fixture per rule."""

import textwrap

from repro.analysis.concurrency import lint_concurrency_source


def codes(source, relative="repro/backends/example.py"):
    return [d.code for d in lint_concurrency_source(textwrap.dedent(source), relative)]


COUNTER = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def bump(self) -> None:
            with self._lock:
                self._value = self._value + 1

        def peek(self) -> int:
            return {peek_body}
"""


class TestUnguardedSharedAccess:
    def test_read_outside_lock_flagged(self):
        source = COUNTER.format(peek_body="self._value")
        assert codes(source) == ["CONC001"]

    def test_read_under_lock_clean(self):
        source = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0

            def bump(self) -> None:
                with self._lock:
                    self._value = self._value + 1

            def peek(self) -> int:
                with self._lock:
                    return self._value
        """
        assert codes(source) == []

    def test_guarded_by_annotation_covers_in_place_mutation(self):
        # self._items[k] = v is a Subscript store, invisible to the
        # store-based inference; the annotation is the declared contract.
        source = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}  # guarded-by: _lock

            def put(self, key, value) -> None:
                with self._lock:
                    self._items[key] = value

            def get(self, key):
                return self._items.get(key)
        """
        assert codes(source) == ["CONC001"]

    def test_guarded_by_annotation_above_line(self):
        source = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                # guarded-by: _lock
                self._items = {}

            def get(self, key):
                return self._items.get(key)
        """
        assert codes(source) == ["CONC001"]

    def test_init_repr_and_locked_methods_exempt(self):
        source = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0

            def bump(self) -> None:
                with self._lock:
                    self._value = self._value + 1

            def peek_locked(self) -> int:
                return self._value

            def __repr__(self) -> str:
                return f"Counter({self._value})"
        """
        assert codes(source) == []

    def test_non_thread_shared_class_ignored(self):
        source = """
        class Plain:
            def __init__(self):
                self._value = 0

            def peek(self) -> int:
                return self._value
        """
        assert codes(source) == []


class TestAcquireWithoutRelease:
    def test_bare_acquire_flagged(self):
        source = """
        def hold(lock) -> None:
            lock.acquire()
            print("held")
        """
        assert codes(source) == ["CONC002"]

    def test_assigned_acquire_flagged(self):
        source = """
        def hold(lock) -> bool:
            got = lock.acquire(timeout=1.0)
            return got
        """
        assert codes(source) == ["CONC002"]

    def test_acquire_with_try_finally_release_clean(self):
        source = """
        def hold(lock) -> None:
            lock.acquire()
            try:
                print("held")
            finally:
                lock.release()
        """
        assert codes(source) == []


class TestWaitOutsideLoop:
    GATE = """
        import threading

        class Gate:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._open = False

            def open(self) -> None:
                with self._cond:
                    self._open = True
                    self._cond.notify_all()

            def wait_open(self) -> None:
                with self._cond:
                    {wait_body}
    """

    def test_wait_without_loop_flagged(self):
        source = self.GATE.format(wait_body="self._cond.wait()")
        assert codes(source) == ["CONC003"]

    def test_wait_inside_while_clean(self):
        source = self.GATE.format(
            wait_body="while not self._open:\n                        self._cond.wait()"
        )
        assert codes(source) == []

    def test_condition_wraps_named_lock(self):
        # Condition(self._lock) marks _lock acquirable too: a write under
        # 'with self._lock:' then a read under 'with self._cond:' is clean.
        source = """
        import threading

        class Gate:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._open = False

            def open(self) -> None:
                with self._lock:
                    self._open = True

            def peek(self) -> bool:
                with self._cond:
                    return self._open
        """
        assert codes(source) == []


class TestLockedMethodCalledUnlocked:
    STORE = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []  # guarded-by: _lock

            def _drain_locked(self) -> list:
                drained = list(self._items)
                self._items = []
                return drained

            def drain(self) -> list:
                {drain_body}
    """

    def test_unlocked_call_flagged(self):
        source = self.STORE.format(drain_body="return self._drain_locked()")
        assert codes(source) == ["CONC004"]

    def test_call_under_lock_clean(self):
        source = self.STORE.format(
            drain_body="with self._lock:\n                    return self._drain_locked()"
        )
        assert codes(source) == []

    def test_locked_to_locked_call_clean(self):
        source = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []  # guarded-by: _lock

            def _count_locked(self) -> int:
                return len(self._items)

            def _summary_locked(self) -> str:
                return f"{self._count_locked()} items"
        """
        assert codes(source) == []


class TestProtocolMessages:
    """CONC006: Message subclasses must be frozen, transport-safe dataclasses."""

    def test_real_protocol_module_clean(self):
        import inspect

        import repro.parallel.protocol as protocol

        source = inspect.getsource(protocol)
        assert [
            d.code
            for d in lint_concurrency_source(source, "repro/parallel/protocol.py")
            if d.code == "CONC006"
        ] == []

    def test_unfrozen_message_flagged(self):
        source = """
        from dataclasses import dataclass

        class Message:
            __slots__ = ()

        @dataclass
        class Unfrozen(Message):
            shard_id: int
        """
        assert codes(source) == ["CONC006"]

    def test_undecorated_message_flagged(self):
        source = """
        class Message:
            __slots__ = ()

        class Plain(Message):
            shard_id: int = 0
        """
        assert codes(source) == ["CONC006"]

    def test_rich_field_annotations_flagged(self):
        source = """
        from dataclasses import dataclass

        class Message:
            __slots__ = ()

        @dataclass(frozen=True)
        class Bad(Message):
            payload: dict
            rows: list[int]
            mapping: dict[str, int]
        """
        assert codes(source) == ["CONC006"] * 3

    def test_transport_safe_grammar_clean(self):
        source = """
        from dataclasses import dataclass
        from typing import ClassVar

        class Message:
            __slots__ = ()

        @dataclass(frozen=True)
        class Inner(Message):
            value: int

        @dataclass(frozen=True)
        class Outer(Message):
            KIND: ClassVar[str] = "outer"
            shard_id: int
            ratio: float
            label: str | None
            raw: bytes
            flags: tuple[bool, ...]
            pairs: tuple[tuple[int, int], ...]
            nested: Inner | None = None
        """
        assert codes(source) == []

    def test_transitive_subclass_checked(self):
        source = """
        from dataclasses import dataclass

        class Message:
            __slots__ = ()

        @dataclass(frozen=True)
        class Base(Message):
            shard_id: int

        @dataclass(frozen=True)
        class Derived(Base):
            extras: set
        """
        assert codes(source) == ["CONC006"]

    def test_unrelated_class_ignored(self):
        source = """
        class Message:
            __slots__ = ()

        class NotAMessage:
            payload: dict = {}
        """
        assert codes(source) == []
