"""Inline suppressions, family selection, and the repo-wide clean check."""

import textwrap

import pytest

from repro.analysis import lint_files, normalize_select
from repro.analysis.concurrency import lint_concurrency_source
from repro.analysis.diagnostics import CODE_FAMILIES, Severity, code_family
from repro.analysis.suppressions import apply_suppressions, parse_suppressions


def lint_with_suppressions(source, families=CODE_FAMILIES):
    source = textwrap.dedent(source)
    relative = "repro/backends/example.py"
    found = lint_concurrency_source(source, relative)
    return apply_suppressions(found, source, relative, families)


class TestParsing:
    def test_single_and_multi_code_comments(self):
        source = (
            "x = 1  # repro: noqa CONC001\n"
            "y = 2\n"
            "z = 3  # repro: noqa RES001, LINT002\n"
        )
        assert parse_suppressions(source) == {
            1: {"CONC001"},
            3: {"RES001", "LINT002"},
        }

    def test_plain_comments_ignored(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}


class TestApplication:
    FIXTURE = """
    def hold(lock) -> None:
        lock.acquire(){suffix}
        print("held")
    """

    def test_matching_suppression_silences_finding(self):
        report = lint_with_suppressions(
            self.FIXTURE.format(suffix="  # repro: noqa CONC002")
        )
        assert report == []

    def test_unsuppressed_finding_survives(self):
        report = lint_with_suppressions(self.FIXTURE.format(suffix=""))
        assert [d.code for d in report] == ["CONC002"]

    def test_stale_suppression_becomes_lint004_warning(self):
        report = lint_with_suppressions(
            "x = 1  # repro: noqa CONC002\n"
        )
        assert [d.code for d in report] == ["LINT004"]
        assert report[0].severity is Severity.WARNING
        assert "CONC002" in report[0].message

    def test_stale_suppression_ignored_when_family_not_selected(self):
        # A CONC002 suppression cannot be called unused during a run
        # where the concurrency pass never executed.
        report = lint_with_suppressions(
            "x = 1  # repro: noqa CONC002\n", families=("RES",)
        )
        assert report == []


class TestSelect:
    def test_none_selects_every_family(self):
        assert normalize_select(None) == CODE_FAMILIES

    def test_string_is_split_and_uppercased(self):
        assert normalize_select("conc, res") == ("CONC", "RES")

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="BOGUS"):
            normalize_select("CONC,BOGUS")


def test_source_tree_is_conc_res_clean():
    """Acceptance: zero CONC/RES findings (and no stale suppressions)."""
    report = lint_files(select=("LINT", "CONC", "RES"))
    assert list(report) == [], report.render()


def test_real_suppressions_are_all_used():
    # The tree dogfoods the mechanism (the lock-order proxy's delegated
    # acquire); a full-family run must not report any LINT004.
    report = lint_files()
    assert not any(d.code == "LINT004" for d in report), report.render()
    assert all(code_family(d.code) in CODE_FAMILIES for d in report)
