"""Unit tests for the five Phase-3 traversal strategies."""

import pytest

from repro.core.mtn import build_exploration_graph
from repro.core.status import StatusStore
from repro.core.traversal import (
    STRATEGY_NAMES,
    get_strategy,
    seed_base_levels,
)
from repro.index.mapper import Interpretation


def interp(*pairs):
    return Interpretation(tuple(pairs))


QUERIES = {
    "red candle": interp(("red", "Color"), ("candle", "ProductType")),
    "q1": interp(("saffron", "Color"), ("scented", "Item"),
                 ("candle", "ProductType")),
    "q2": interp(("saffron", "Attribute"), ("scented", "Item"),
                 ("candle", "ProductType")),
}


@pytest.fixture(scope="module")
def graphs(products_debugger):
    binder = products_debugger.binder
    return {
        name: build_exploration_graph([binder.prune(interpretation)])
        for name, interpretation in QUERIES.items()
    }


def run(products_debugger, graph, name, **kwargs):
    strategy = get_strategy(name, **kwargs)
    evaluator = products_debugger.make_evaluator(use_cache=strategy.uses_reuse)
    return strategy.run(graph, evaluator, products_debugger.database), evaluator


class TestStrategyRegistry:
    def test_all_names_resolve(self):
        for name in STRATEGY_NAMES:
            assert get_strategy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_strategy("dfs")

    def test_reuse_flags(self):
        assert not get_strategy("bu").uses_reuse
        assert not get_strategy("td").uses_reuse
        assert get_strategy("buwr").uses_reuse
        assert get_strategy("tdwr").uses_reuse
        assert get_strategy("sbh").uses_reuse

    def test_sbh_validates_probability(self):
        with pytest.raises(ValueError):
            get_strategy("sbh", probability_alive=1.5)


class TestAgreement:
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_all_strategies_agree(self, products_debugger, graphs, query_name):
        """Identical classifications and MPANs, whatever the ordering."""
        graph = graphs[query_name]
        signatures = {}
        for name in STRATEGY_NAMES:
            result, _ = run(products_debugger, graph, name)
            signatures[name] = result.classification_signature()
        assert len(set(signatures.values())) == 1, signatures

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_every_mtn_classified(self, products_debugger, graphs, query_name):
        graph = graphs[query_name]
        result, _ = run(products_debugger, graph, "sbh")
        assert sorted(result.alive_mtns + result.dead_mtns) == graph.mtn_indexes

    def test_mpans_only_for_dead_mtns(self, products_debugger, graphs):
        result, _ = run(products_debugger, graphs["q1"], "tdwr")
        assert set(result.mpans) == set(result.dead_mtns)


class TestCosts:
    def test_reuse_never_worse(self, products_debugger, graphs):
        for graph in graphs.values():
            bu, _ = run(products_debugger, graph, "bu")
            buwr, _ = run(products_debugger, graph, "buwr")
            td, _ = run(products_debugger, graph, "td")
            tdwr, _ = run(products_debugger, graph, "tdwr")
            assert buwr.stats.queries_executed <= bu.stats.queries_executed
            assert tdwr.stats.queries_executed <= td.stats.queries_executed

    def test_base_level_needs_no_sql(self, products_debugger, graphs):
        """Keyword-bound and free base nodes are classified without SQL."""
        for graph in graphs.values():
            result, evaluator = run(products_debugger, graph, "buwr")
            assert result.stats.executed_by_level.get(1, 0) == 0

    def test_alive_mtn_costs_td_one_query(self, products_debugger):
        """TD on a graph whose single MTN is alive evaluates only the MTN."""
        binder = products_debugger.binder
        graph = build_exploration_graph(
            [binder.prune(interp(("vanilla", "Item"), ("candle", "ProductType")))]
        )
        alive_mtns = [
            m for m in graph.mtn_indexes
        ]
        result, _ = run(products_debugger, graph, "td")
        # every alive MTN costs exactly one query in TD; dead ones cost more
        assert result.stats.queries_executed >= len(result.alive_mtns)

    def test_elapsed_recorded(self, products_debugger, graphs):
        result, _ = run(products_debugger, graphs["q1"], "sbh")
        assert result.elapsed > 0


class TestSeeding:
    def test_seed_base_levels(self, products_debugger, graphs):
        graph = graphs["q1"]
        store = StatusStore(graph)
        seed_base_levels(graph, store, products_debugger.database)
        for index in graph.level_indexes(1):
            assert store.is_known(index)
        assert store.evaluated_count == 0  # seeds are free

    def test_seed_respects_empty_tables(self, products_db):
        """A free copy of an empty table seeds as dead."""
        from repro.core.debugger import NonAnswerDebugger
        from repro.datasets.products import product_schema
        from repro.relational.database import Database

        database = Database(product_schema())
        database.load(
            {
                "ProductType": [(1, "candle")],
                "Color": [(1, "red", "crimson")],
                # Item left empty on purpose.
            }
        )
        debugger = NonAnswerDebugger(database, max_joins=2)
        report = debugger.debug("red candle")
        # The only connecting path goes through the empty Item table.
        assert report.mtn_count > 0
        assert not report.answers()
        assert report.traversal.stats.queries_executed == 0  # all inferred


class TestResultApi:
    def test_result_queries(self, products_debugger, graphs):
        result, _ = run(products_debugger, graphs["q1"], "sbh")
        answers = result.answer_queries()
        non_answers = result.non_answer_queries()
        assert len(answers) == len(result.alive_mtns)
        assert len(non_answers) == len(result.dead_mtns)
        for mtn_index in result.dead_mtns:
            for mpan in result.mpan_queries(mtn_index):
                assert mpan.tree.is_subtree_of(
                    result.graph.node(mtn_index).tree
                )

    def test_mpan_counts(self, products_debugger, graphs):
        result, _ = run(products_debugger, graphs["q1"], "sbh")
        assert result.mpan_pair_count >= result.unique_mpan_count
