"""Unit tests for relations, attributes, foreign keys, and the schema graph."""

import pytest

from repro.relational.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    Relation,
    SchemaError,
    SchemaGraph,
    star_schema,
)

INT = AttributeType.INTEGER
TEXT = AttributeType.TEXT


def make_graph():
    relations = [
        Relation("R", (Attribute("id", INT), Attribute("name", TEXT))),
        Relation("S", (Attribute("id", INT), Attribute("r_id", INT),
                       Attribute("label", TEXT))),
    ]
    fks = [ForeignKey("s_r", "S", "r_id", "R", "id")]
    return SchemaGraph.build(relations, fks)


class TestAttribute:
    def test_text_defaults_searchable(self):
        assert Attribute("name", TEXT).searchable is True

    def test_integer_defaults_not_searchable(self):
        assert Attribute("id", INT).searchable is False

    def test_integer_cannot_be_searchable(self):
        with pytest.raises(SchemaError):
            Attribute("id", INT, searchable=True)

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("bad name", TEXT)

    def test_sql_type_names(self):
        assert INT.sql_name == "INTEGER"
        assert TEXT.sql_name == "TEXT"
        assert AttributeType.REAL.sql_name == "REAL"


class TestRelation:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", (Attribute("a", TEXT), Attribute("a", TEXT)))

    def test_build_from_mapping(self):
        relation = Relation.build("R", {"id": "integer", "name": "text"})
        assert relation.attribute_names == ("id", "name")
        assert relation.attribute("id").type is INT

    def test_text_attributes(self):
        relation = Relation("R", (Attribute("id", INT), Attribute("name", TEXT)))
        assert [a.name for a in relation.text_attributes] == ["name"]

    def test_index_of(self):
        relation = Relation("R", (Attribute("id", INT), Attribute("name", TEXT)))
        assert relation.index_of("name") == 1
        with pytest.raises(SchemaError):
            relation.index_of("missing")

    def test_unknown_attribute(self):
        relation = Relation("R", (Attribute("id", INT),))
        with pytest.raises(SchemaError):
            relation.attribute("nope")
        assert not relation.has_attribute("nope")
        assert relation.has_attribute("id")


class TestForeignKey:
    def test_endpoints_and_other(self):
        fk = ForeignKey("s_r", "S", "r_id", "R", "id")
        assert fk.endpoints() == ("S", "R")
        assert fk.other("S") == "R"
        assert fk.other("R") == "S"
        with pytest.raises(SchemaError):
            fk.other("T")

    def test_column_of(self):
        fk = ForeignKey("s_r", "S", "r_id", "R", "id")
        assert fk.column_of("S") == "r_id"
        assert fk.column_of("R") == "id"

    def test_touches(self):
        fk = ForeignKey("s_r", "S", "r_id", "R", "id")
        assert fk.touches("S") and fk.touches("R") and not fk.touches("T")


class TestSchemaGraph:
    def test_freeze_assigns_stable_ids(self):
        graph = make_graph()
        assert graph.relation_id("R") == 0
        assert graph.relation_id("S") == 1
        assert graph.edge_id("s_r") == 0

    def test_duplicate_relation_rejected(self):
        graph = SchemaGraph()
        graph.add_relation(Relation("R", (Attribute("id", INT),)))
        with pytest.raises(SchemaError):
            graph.add_relation(Relation("R", (Attribute("id", INT),)))

    def test_mutation_after_freeze_rejected(self):
        graph = make_graph()
        with pytest.raises(SchemaError):
            graph.add_relation(Relation("T", (Attribute("id", INT),)))

    def test_edge_on_searchable_column_rejected(self):
        relations = [
            Relation("R", (Attribute("name", TEXT),)),
            Relation("S", (Attribute("r_name", TEXT),)),
        ]
        fks = [ForeignKey("bad", "S", "r_name", "R", "name")]
        with pytest.raises(SchemaError):
            SchemaGraph.build(relations, fks)

    def test_edges_of(self):
        graph = make_graph()
        assert [fk.name for fk in graph.edges_of("R")] == ["s_r"]
        assert [fk.name for fk in graph.edges_of("S")] == ["s_r"]

    def test_unknown_lookups(self):
        graph = make_graph()
        with pytest.raises(SchemaError):
            graph.relation("nope")
        with pytest.raises(SchemaError):
            graph.foreign_key("nope")
        with pytest.raises(SchemaError):
            graph.edges_of("nope")

    def test_unfrozen_query_rejected(self):
        graph = SchemaGraph()
        graph.add_relation(Relation("R", (Attribute("id", INT),)))
        with pytest.raises(SchemaError):
            graph.edges_of("R")

    def test_connected(self):
        graph = make_graph()
        assert graph.connected()

    def test_disconnected(self):
        relations = [
            Relation("R", (Attribute("id", INT),)),
            Relation("S", (Attribute("id", INT),)),
        ]
        graph = SchemaGraph.build(relations, [])
        assert not graph.connected()

    def test_searchable_relations(self):
        graph = make_graph()
        assert graph.searchable_relations() == ("R", "S")

    def test_star_schema_helper(self):
        center = Relation("Hub", (Attribute("id", INT), Attribute("name", TEXT)))
        point = Relation("Leaf", (Attribute("id", INT), Attribute("name", TEXT)))
        graph = star_schema(center, [point], [("Link", "Hub", "Leaf")])
        assert set(graph.relations) == {"Hub", "Leaf", "Link"}
        assert len(graph.foreign_keys) == 2
        assert graph.connected()
