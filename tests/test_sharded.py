"""Sharded lattice exploration: shard plan, protocol, executor, failures."""

from __future__ import annotations

import io
import os
import pickle

import pytest

from repro.core.status import InconsistentStatusError, StatusStore
from repro.core.traversal import (
    SHARDABLE_STRATEGIES,
    extract_shards,
    get_strategy,
    run_shard_traversal,
)
from repro.obs import ProbeBudget, ProbeTracer
from repro.parallel import ShardedLatticeExecutor, carve_budget_caps
from repro.parallel.protocol import (
    MESSAGE_TYPES,
    Heartbeat,
    ProtocolError,
    ShardClaim,
    ShardError,
    ShardResult,
    ShardTask,
    WorkerExit,
    decode_message,
    encode_message,
    frame_message,
    read_frame,
    validate_payload,
    write_frame,
)
from repro.parallel.sharded import CRASH_ENV, STALL_ENV, STALL_SECONDS_ENV
from repro.relational.evaluator import InstrumentedEvaluator

QUERY = "saffron scented candle"


def build_graph(debugger, query=QUERY):
    mapping = debugger.map_keywords(query)
    return debugger.build_graph(debugger.prune(mapping))


def sample_messages():
    """One well-formed instance of every protocol message type."""
    return [
        ShardTask(0, "bu", (1, 2), max_queries=5),
        ShardClaim(0, 4242),
        Heartbeat(4242, None),
        Heartbeat(4242, 0),
        ShardResult(
            shard_id=0,
            process_id=4242,
            alive_mask=0b101,
            dead_mask=0b010,
            evaluated_mask=0b111,
            exhausted=False,
            queries_executed=3,
            cache_hits=1,
            cache_misses=3,
            l1_hits=1,
            l2_hits=0,
            cache_evictions=0,
            wall_time=0.25,
            simulated_time=0.0,
            executed_by_level=((1, 2), (2, 1)),
            spans=('{"kind": "span"}',),
        ),
        ShardError(1, 4242, "RuntimeError", "backend down", "Traceback..."),
        WorkerExit(4242, 2),
    ]


class TestShardExtraction:
    def test_every_mtn_in_exactly_one_shard(self, products_debugger):
        graph = build_graph(products_debugger)
        shards = extract_shards(graph, 3)
        seen = [m for shard in shards for m in shard.mtn_indexes]
        assert sorted(seen) == sorted(graph.mtn_indexes)

    def test_cone_union_covers_graph(self, products_debugger):
        graph = build_graph(products_debugger)
        union = 0
        for shard in extract_shards(graph, 2):
            union |= shard.domain
        assert union == (1 << len(graph)) - 1

    def test_domain_is_union_of_mtn_cones(self, products_debugger):
        graph = build_graph(products_debugger)
        for shard in extract_shards(graph, 4):
            expected = 0
            for mtn_index in shard.mtn_indexes:
                expected |= graph.desc_plus(mtn_index)
            assert shard.domain == expected

    def test_deterministic(self, products_debugger):
        graph = build_graph(products_debugger)
        assert extract_shards(graph, 3) == extract_shards(graph, 3)

    def test_shard_count_capped_by_mtns(self, products_debugger):
        graph = build_graph(products_debugger)
        shards = extract_shards(graph, 100)
        assert len(shards) == len(graph.mtn_indexes)
        assert all(shard.mtn_count == 1 for shard in shards)

    def test_invalid_count_rejected(self, products_debugger):
        graph = build_graph(products_debugger)
        with pytest.raises(ValueError):
            extract_shards(graph, 0)


class TestBudgetCarving:
    def test_unlimited_budget_carves_to_unlimited(self):
        caps = carve_budget_caps(ProbeBudget(), 3)
        assert caps == [(None, None, None)] * 3

    def test_query_caps_sum_to_parent(self):
        budget = ProbeBudget(max_queries=10)
        caps = carve_budget_caps(budget, 3)
        assert sum(cap[0] for cap in caps) == 10
        # Remainder lands on the low shard ids: 4, 3, 3.
        assert [cap[0] for cap in caps] == [4, 3, 3]

    def test_time_axes_split_evenly(self):
        budget = ProbeBudget(max_wall_seconds=2.0, max_simulated_seconds=4.0)
        caps = carve_budget_caps(budget, 4)
        assert all(cap[1] == pytest.approx(1.0) for cap in caps)
        assert all(cap[2] == pytest.approx(0.5) for cap in caps)

    def test_none_budget(self):
        assert carve_budget_caps(None, 2) == [(None, None, None)] * 2


class TestProtocol:
    @pytest.mark.parametrize(
        "message", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_encode_decode_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    @pytest.mark.parametrize(
        "message", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_frame_roundtrip(self, message):
        stream = io.BytesIO()
        write_frame(stream, message)
        stream.seek(0)
        assert read_frame(stream) == message
        assert read_frame(stream) is None  # clean EOF

    def test_multiple_frames_stream(self):
        stream = io.BytesIO()
        for message in sample_messages():
            write_frame(stream, message)
        stream.seek(0)
        decoded = []
        while (message := read_frame(stream)) is not None:
            decoded.append(message)
        assert decoded == sample_messages()

    def test_truncated_frame_rejected(self):
        data = frame_message(Heartbeat(1, None))
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(io.BytesIO(data[:-1]))

    def test_restricted_unpickler_rejects_foreign_classes(self):
        payload = pickle.dumps(os.system)  # a global outside the protocol
        with pytest.raises(ProtocolError, match="forbidden global"):
            decode_message(payload)

    def test_non_message_payload_rejected(self):
        with pytest.raises(ProtocolError, match="non-message"):
            decode_message(pickle.dumps((1, 2)))

    def test_validate_payload_rejects_rich_types(self):
        with pytest.raises(ProtocolError, match="not transport-safe"):
            validate_payload({"a": 1})
        # A frozen dataclass does not type-check construction, so a list
        # can sneak into a field; the runtime validator catches it.
        with pytest.raises(ProtocolError, match="not transport-safe"):
            validate_payload(ShardClaim([0], 1))

    def test_every_message_type_is_frozen_and_transport_safe(self):
        # The runtime twin of the CONC006 static lint: instances built
        # from transport-safe field values validate and pickle cleanly,
        # and the dataclasses really are frozen.
        from dataclasses import FrozenInstanceError, fields

        by_type = {type(message) for message in sample_messages()}
        assert by_type == set(MESSAGE_TYPES)
        for message in sample_messages():
            validate_payload(message)
            first_field = fields(message)[0].name
            with pytest.raises(FrozenInstanceError):
                setattr(message, first_field, 99)


class TestShardTraversal:
    @pytest.mark.parametrize("name", SHARDABLE_STRATEGIES)
    def test_shard_sweeps_cover_serial_classifications(
        self, products_debugger, name
    ):
        graph = build_graph(products_debugger)
        serial = products_debugger.debug(QUERY, strategy=name)
        merged = StatusStore(graph)
        for shard in extract_shards(graph, 2):
            evaluator = InstrumentedEvaluator(
                products_debugger.backend,
                use_cache=get_strategy(name).uses_reuse,
            )
            outcome = run_shard_traversal(
                graph, products_debugger.database, name, shard, evaluator
            )
            merged.apply_delta(outcome.store.export_delta())
            assert not outcome.exhausted
        alive = {
            i for i in graph.mtn_indexes
            if merged.status(i).name == "ALIVE"
        }
        assert alive == set(serial.traversal.alive_mtns)

    def test_non_shardable_strategy_rejected(self, products_debugger):
        graph = build_graph(products_debugger)
        shard = extract_shards(graph, 1)[0]
        evaluator = InstrumentedEvaluator(products_debugger.backend)
        with pytest.raises(ValueError, match="not shardable"):
            run_shard_traversal(
                graph, products_debugger.database, "sbh", shard, evaluator
            )


class TestDeltaMerge:
    def test_conflicting_delta_rejected(self, products_debugger):
        graph = build_graph(products_debugger)
        index = graph.mtn_indexes[0]
        one = StatusStore(graph)
        one.record(index, alive=True)
        two = StatusStore(graph)
        two.record(index, alive=False)
        merged = StatusStore(graph)
        merged.apply_delta(one.export_delta())
        with pytest.raises(InconsistentStatusError):
            merged.apply_delta(two.export_delta())


def run_sharded(debugger, name, *, use_processes, budget=None, **kwargs):
    executor = ShardedLatticeExecutor(
        processes=kwargs.pop("processes", 2), shards=kwargs.pop("shards", None)
    )
    graph = build_graph(debugger)
    return executor.run(
        graph,
        debugger.database,
        name,
        backend=debugger.backend_name,
        backend_options=debugger.backend_factory_options,
        cost_model=debugger.cost_model,
        budget=budget,
        coordinator_backend=debugger.backend,
        use_processes=use_processes,
        **kwargs,
    )


class TestShardedExecutor:
    @pytest.mark.parametrize("name", SHARDABLE_STRATEGIES)
    def test_serial_fallback_matches_strategy(self, products_debugger, name):
        serial = products_debugger.debug(QUERY, strategy=name)
        sharded = run_sharded(products_debugger, name, use_processes=False)
        assert (
            sharded.classification_signature()
            == serial.traversal.classification_signature()
        )
        assert not sharded.shard_failures

    @pytest.mark.parametrize("name", ("bu", "tdwr"))
    def test_process_run_matches_strategy(self, products_debugger, name):
        serial = products_debugger.debug(QUERY, strategy=name)
        sharded = run_sharded(products_debugger, name, use_processes=True)
        assert (
            sharded.classification_signature()
            == serial.traversal.classification_signature()
        )
        assert not sharded.shard_failures

    def test_sbh_rejected(self, products_debugger):
        with pytest.raises(ValueError, match="not shardable"):
            run_sharded(products_debugger, "sbh", use_processes=False)

    def test_budgeted_run_deterministic_and_charged(self, products_debugger):
        parallel_budget = ProbeBudget(max_queries=5)
        parallel = run_sharded(
            products_debugger,
            "bu",
            use_processes=True,
            budget=parallel_budget,
            shards=3,
        )
        fallback_budget = ProbeBudget(max_queries=5)
        fallback = run_sharded(
            products_debugger,
            "bu",
            use_processes=False,
            budget=fallback_budget,
            shards=3,
        )
        # Same carved shard plan => byte-identical regardless of scheduling.
        assert (
            parallel.classification_signature()
            == fallback.classification_signature()
        )
        assert (
            parallel.stats.queries_executed == fallback.stats.queries_executed
        )
        assert parallel.stats.queries_executed <= 5
        assert parallel.exhausted and fallback.exhausted
        # The combined shard spend is reflected into the parent budget.
        assert parallel_budget.queries_used == parallel.stats.queries_executed
        # Every classification made under budget matches the unbudgeted run.
        full = products_debugger.debug(QUERY, strategy="bu").traversal
        full_alive, full_dead = set(full.alive_mtns), set(full.dead_mtns)
        assert set(parallel.alive_mtns) <= full_alive
        assert set(parallel.dead_mtns) <= full_dead

    def test_spans_replayed_with_process_and_shard(self, products_debugger):
        tracer = ProbeTracer()
        graph = build_graph(products_debugger)
        executor = ShardedLatticeExecutor(processes=2)
        executor.run(
            graph,
            products_debugger.database,
            "td",
            backend=products_debugger.backend_name,
            backend_options=products_debugger.backend_factory_options,
            cost_model=products_debugger.cost_model,
            tracer=tracer,
            coordinator_backend=products_debugger.backend,
        )
        assert tracer.spans, "worker spans must be replayed on the coordinator"
        assert all(span.shard_id is not None for span in tracer.spans)
        assert all(span.process_id is not None for span in tracer.spans)
        assert all(span.strategy == "td" for span in tracer.spans)
        by_shard = tracer.aggregate("shard_id")
        assert sum(row["probes"] for row in by_shard) == len(tracer.spans)
        names = [e.name for e in tracer.events]
        assert "traversal_start" in names
        assert "shard_plan" in names
        assert "traversal_end" in names


class TestWorkerFailures:
    def test_crashed_worker_shard_retried_serially(
        self, products_debugger, monkeypatch
    ):
        monkeypatch.setenv(CRASH_ENV, "0")
        serial = products_debugger.debug(QUERY, strategy="bu")
        sharded = run_sharded(products_debugger, "bu", use_processes=True)
        assert (
            sharded.classification_signature()
            == serial.traversal.classification_signature()
        )
        failures = [f for f in sharded.shard_failures if f.shard_id == 0]
        assert failures, "the killed shard must surface a structured failure"
        failure = failures[0]
        assert failure.kind == "crash"
        assert failure.retried and failure.recovered
        assert "exited" in failure.message

    def test_stalled_worker_shard_times_out_and_recovers(
        self, products_debugger, monkeypatch
    ):
        monkeypatch.setenv(STALL_ENV, "0")
        monkeypatch.setenv(STALL_SECONDS_ENV, "30")
        serial = products_debugger.debug(QUERY, strategy="td")
        executor = ShardedLatticeExecutor(
            processes=2, shards=2, shard_timeout=1.0
        )
        graph = build_graph(products_debugger)
        sharded = executor.run(
            graph,
            products_debugger.database,
            "td",
            backend=products_debugger.backend_name,
            backend_options=products_debugger.backend_factory_options,
            cost_model=products_debugger.cost_model,
            coordinator_backend=products_debugger.backend,
        )
        assert (
            sharded.classification_signature()
            == serial.traversal.classification_signature()
        )
        failures = [f for f in sharded.shard_failures if f.shard_id == 0]
        assert failures and failures[0].kind == "timeout"
        assert failures[0].retried and failures[0].recovered

    def test_failure_render_mentions_shard(self):
        from repro.core.traversal import ShardFailure

        failure = ShardFailure(3, "crash", "worker died", retried=True)
        text = failure.render()
        assert "shard 3" in text and "crash" in text


class TestDebuggerIntegration:
    def test_debug_with_processes_matches_serial(self, products_debugger):
        serial = products_debugger.debug(QUERY, strategy="buwr")
        sharded = products_debugger.debug(QUERY, strategy="buwr", processes=2)
        assert (
            sharded.traversal.classification_signature()
            == serial.traversal.classification_signature()
        )
        assert not sharded.traversal.shard_failures

    def test_sbh_with_processes_falls_back_to_coordinator(
        self, products_debugger
    ):
        serial = products_debugger.debug(QUERY, strategy="sbh")
        report = products_debugger.debug(QUERY, strategy="sbh", processes=2)
        assert (
            report.traversal.classification_signature()
            == serial.traversal.classification_signature()
        )
        assert report.traversal.shard_failures == []
