"""Tests for non-answer diagnosis (minimal dead sub-queries + suggestions)."""

import pytest

from repro.core.diagnosis import (
    Cause,
    diagnose,
    minimal_dead_nodes,
    render_diagnoses,
)
from repro.core.traversal import STRATEGY_NAMES

QUERY = "saffron scented candle"


@pytest.fixture(scope="module")
def report(products_debugger):
    return products_debugger.debug(QUERY)


@pytest.fixture(scope="module")
def diagnoses(report):
    return diagnose(report)


def by_relations(diagnoses, relations):
    for diagnosis in diagnoses:
        bound = sorted(i.relation for i, _ in diagnosis.non_answer.bindings)
        if bound == sorted(relations):
            yield diagnosis


class TestMinimalDead:
    def test_minimal_dead_have_alive_subqueries(self, report, products_debugger):
        engine = products_debugger.backend
        result = report.traversal
        for mtn_index in result.dead_mtns:
            for index in minimal_dead_nodes(result, mtn_index):
                node = report.graph.node(index)
                assert not engine.is_alive(node.query)
                for child_tree in node.tree.child_subtrees():
                    assert engine.is_alive(node.query.subquery(child_tree))

    def test_q1_breaks_at_the_color_join(self, diagnoses):
        """q1's frontier cause is the C^saffron ⋈ I^scented join (Example 1)."""
        (q1,) = by_relations(diagnoses, ["Color", "Item", "ProductType"])
        assert [d.describe() for d in q1.minimal_dead] == [
            "Color[1]{saffron} ⋈ Item[2]{scented}"
        ]

    def test_every_dead_mtn_diagnosed(self, report, diagnoses):
        assert len(diagnoses) == len(report.non_answers())

    def test_diagnosis_costs_no_sql(self, products_debugger):
        fresh = products_debugger.debug(QUERY)
        executed = fresh.traversal.stats.queries_executed
        diagnose(fresh)
        assert fresh.traversal.stats.queries_executed == executed


class TestCauses:
    def test_q1_and_q2_are_dead_keyword_pairs(self, diagnoses):
        """Both failure shapes of Example 1; footnote 1 of the paper notes
        the fix direction (synonym vs merchandising) is data-dependent, so
        the suggestion must offer both."""
        (q1,) = by_relations(diagnoses, ["Color", "Item", "ProductType"])
        assert q1.cause is Cause.DEAD_KEYWORD_PAIR
        assert "synonym" in q1.suggestion
        q2 = next(
            d
            for d in by_relations(diagnoses, ["Attribute", "Item", "ProductType"])
            if d.non_answer.tree.size == 3
        )
        assert q2.cause is Cause.DEAD_KEYWORD_PAIR
        assert "co-occur" in q2.suggestion

    def test_empty_join_detected(self, products_db):
        """A keyword-free dead join: red items exist, attributes exist, but
        suppose no red item links to any attribute row."""
        from repro.core.debugger import NonAnswerDebugger
        from repro.datasets.products import product_schema
        from repro.relational.database import Database

        database = Database(product_schema())
        database.load(
            {
                "ProductType": [(1, "candle")],
                "Color": [(1, "red", "crimson")],
                "Attribute": [(1, "scent", "vanilla")],
                # The only red candle has no attribute row.
                "Item": [(1, "plain item", 1, 1, None, 1.0, "nothing here")],
            }
        )
        debugger = NonAnswerDebugger(database, max_joins=3)
        report = debugger.debug("red scent")
        results = diagnose(report)
        assert results
        assert any(d.cause is Cause.EMPTY_JOIN for d in results)

    def test_empty_table_detected(self, products_db):
        from repro.core.debugger import NonAnswerDebugger
        from repro.datasets.products import product_schema
        from repro.relational.database import Database

        database = Database(product_schema())
        database.load(
            {
                "ProductType": [(1, "candle")],
                "Color": [(1, "red", "crimson")],
                # Item empty: every connecting path is dead.
            }
        )
        debugger = NonAnswerDebugger(database, max_joins=2)
        report = debugger.debug("red candle")
        results = diagnose(report)
        assert results
        assert all(d.cause is Cause.EMPTY_TABLE for d in results)
        assert "Item" in results[0].suggestion

    def test_same_diagnoses_from_every_strategy(self, products_debugger):
        rendered = set()
        for name in STRATEGY_NAMES:
            report = products_debugger.debug(QUERY, strategy=name)
            rendered.add(
                tuple(
                    sorted(
                        (d.non_answer.describe(), d.cause.value,
                         tuple(sorted(m.describe() for m in d.minimal_dead)))
                        for d in diagnose(report)
                    )
                )
            )
        assert len(rendered) == 1


class TestRendering:
    def test_render_mentions_frontier(self, report):
        text = render_diagnoses(report)
        assert "breaks at:" in text
        assert "works up to:" in text
        assert "suggestion:" in text

    def test_render_empty(self, products_debugger):
        report = products_debugger.debug("vanilla")
        assert render_diagnoses(report) == "no non-answers to diagnose"
