"""Unit tests for the status store and classification rules R1/R2."""

import pytest

from repro.core.mtn import build_exploration_graph
from repro.core.status import InconsistentStatusError, Status, StatusStore
from repro.index.mapper import Interpretation


@pytest.fixture(scope="module")
def graph(products_debugger):
    interpretation = Interpretation(
        (("saffron", "Color"), ("scented", "Item"), ("candle", "ProductType"))
    )
    pruned = products_debugger.binder.prune(interpretation)
    return build_exploration_graph([pruned])


@pytest.fixture
def store(graph):
    return StatusStore(graph)


class TestRules:
    def test_initially_possibly_alive(self, graph, store):
        for node in graph.nodes:
            assert store.status(node.index) is Status.POSSIBLY_ALIVE
        assert store.unknown_mask.bit_count() == len(graph)

    def test_r1_alive_propagates_down(self, graph, store):
        mtn = graph.mtn_indexes[0]
        store.mark_alive(mtn, evaluated=True)
        for index in graph.bits(graph.desc_mask[mtn]):
            assert store.status(index) is Status.ALIVE

    def test_r2_dead_propagates_up(self, graph, store):
        base = graph.level_indexes(1)[0]
        store.mark_dead(base, evaluated=True)
        for index in graph.bits(graph.asc_mask[base]):
            assert store.status(index) is Status.DEAD

    def test_conflicting_classification_raises(self, graph, store):
        mtn = graph.mtn_indexes[0]
        child = graph.node(mtn).children[0]
        store.mark_dead(child, evaluated=True)  # MTN now dead via R2
        with pytest.raises(InconsistentStatusError):
            store.mark_alive(mtn, evaluated=True)

    def test_conflicting_dead_after_alive_raises(self, graph, store):
        mtn = graph.mtn_indexes[0]
        store.mark_alive(mtn, evaluated=True)
        child = graph.node(mtn).children[0]
        with pytest.raises(InconsistentStatusError):
            store.mark_dead(child, evaluated=True)

    def test_evaluated_mask_tracks_explicit_only(self, graph, store):
        mtn = graph.mtn_indexes[0]
        store.mark_alive(mtn, evaluated=True)
        assert store.evaluated_count == 1

    def test_record_dispatches(self, graph, store):
        store.record(graph.mtn_indexes[0], alive=True)
        assert store.status(graph.mtn_indexes[0]) is Status.ALIVE


class TestDomainRestriction:
    def test_domain_limits_closure(self, graph):
        mtn = graph.mtn_indexes[0]
        store = StatusStore(graph, domain=graph.desc_plus(mtn))
        # Mark a shared descendant dead: ancestors outside the domain must
        # remain untouched.
        shared = None
        for index in graph.bits(graph.desc_mask[mtn]):
            if graph.asc_mask[index] & ~graph.desc_plus(mtn):
                shared = index
                break
        if shared is None:
            pytest.skip("no shared descendant in this graph")
        store.mark_dead(shared, evaluated=True)
        outside = graph.bits(graph.asc_mask[shared] & ~graph.desc_plus(mtn))
        for index in outside:
            assert store.status(index) is Status.POSSIBLY_ALIVE


class TestMpans:
    def test_mpans_definition(self, graph, products_debugger):
        """Compute MPANs by brute force and compare."""
        evaluator = products_debugger.make_evaluator(use_cache=True)
        store = StatusStore(graph)
        for node in graph.nodes:  # classify everything explicitly
            if not store.is_known(node.index):
                store.record(node.index, evaluator.is_alive(node.query))
        for mtn_index in graph.mtn_indexes:
            if store.status(mtn_index) is not Status.DEAD:
                continue
            mpans = set(store.mpans_of(mtn_index))
            desc = graph.bits(graph.desc_mask[mtn_index])
            expected = {
                index
                for index in desc
                if store.status(index) is Status.ALIVE
                and not any(
                    store.status(anc) is Status.ALIVE
                    for anc in graph.bits(
                        graph.asc_mask[index] & graph.desc_mask[mtn_index]
                    )
                )
            }
            assert mpans == expected
            for index in mpans:
                assert not graph.node(index).is_mtn or True
                assert graph.node(index).tree.is_subtree_of(
                    graph.node(mtn_index).tree
                )
